"""Two-dimensional flattened butterfly interconnect (Figure 3).

Every router is fully connected to all routers in its row and in its
column, so any packet needs at most two network hops.  Routers use a
three-stage non-speculative pipeline and link latency grows with the
physical span of the link (up to two tiles per cycle, Table 1).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.config.system import SystemConfig
from repro.sim.kernel import Simulator
from repro.noc.buffer import InputPort
from repro.noc.network import Network
from repro.noc.router import Router
from repro.noc.topology import GridGeometry, tiled_grid_geometry

Coordinate = Tuple[int, int]


class FlattenedButterflyNetwork(Network):
    """2-D flattened butterfly with dimension-order (X then Y) routing."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        node_coords: Dict[int, Coordinate],
        name: str = "fbfly",
    ) -> None:
        super().__init__(sim, config, name, node_coords.keys())
        self.node_coords = dict(node_coords)
        self.geometry: GridGeometry = tiled_grid_geometry(config)
        self._router_at: Dict[Coordinate, Router] = {}
        self._express_port: Dict[Tuple[Coordinate, Coordinate], int] = {}
        self._eject_port: Dict[Tuple[Coordinate, int], int] = {}

        self._build_routers()
        self._build_express_links()
        self._attach_interfaces()
        self._build_routing_tables()

    # ------------------------------------------------------------------ #
    def _new_input_port(self, label: str) -> InputPort:
        return InputPort(
            num_vcs=self.noc.fbfly_vcs_per_port,
            vc_depth_flits=self.noc.fbfly_vc_depth_flits,
            name=label,
        )

    def _build_routers(self) -> None:
        for coord in self.geometry.all_coords():
            router = Router(
                self.sim,
                f"{self.name}.r{coord[0]}_{coord[1]}",
                pipeline_latency=self.noc.fbfly_router_pipeline,
            )
            self._router_at[coord] = router
            self.routers.append(router)

    def link_latency_for_span(self, span_tiles: int) -> int:
        """Cycles needed to traverse a link spanning ``span_tiles`` tiles."""
        if span_tiles <= 0:
            return 1
        return max(1, math.ceil(span_tiles / self.noc.fbfly_tiles_per_cycle))

    def _build_express_links(self) -> None:
        tile_mm = self.geometry.tile_width_mm
        for coord, router in self._router_at.items():
            col, row = coord
            peers = [(c, row) for c in range(self.geometry.cols) if c != col]
            peers += [(col, r) for r in range(self.geometry.rows) if r != row]
            for peer_coord in peers:
                peer = self._router_at[peer_coord]
                span = self.geometry.manhattan_tiles(coord, peer_coord)
                in_port = peer.add_input_port(
                    self._new_input_port(f"{peer.name}.in_from{col}_{row}")
                )
                out_port = router.add_output_port(
                    f"to{peer_coord[0]}_{peer_coord[1]}",
                    peer,
                    in_port,
                    link_latency=self.link_latency_for_span(span),
                    link_length_mm=span * tile_mm,
                )
                self._express_port[(coord, peer_coord)] = out_port

    def _attach_interfaces(self) -> None:
        for node_id, coord in self.node_coords.items():
            router = self._router_at[coord]
            interface = self.interfaces[node_id]
            in_port = router.add_input_port(
                self._new_input_port(f"{router.name}.in_local{node_id}"), is_local=True
            )
            interface.attach_router(router, in_port)
            out_port = router.add_output_port(
                f"eject{node_id}", interface, 0, link_latency=0, link_length_mm=0.0
            )
            self._eject_port[(coord, node_id)] = out_port

    def _build_routing_tables(self) -> None:
        for coord, router in self._router_at.items():
            for node_id, dst_coord in self.node_coords.items():
                router.set_route(node_id, self._next_port(coord, dst_coord, node_id))

    def _next_port(self, coord: Coordinate, dst_coord: Coordinate, node_id: int) -> int:
        """Dimension-order routing: jump to the destination column, then row."""
        if coord == dst_coord:
            return self._eject_port[(coord, node_id)]
        if dst_coord[0] != coord[0]:
            hop = (dst_coord[0], coord[1])
        else:
            hop = (coord[0], dst_coord[1])
        return self._express_port[(coord, hop)]

    # ------------------------------------------------------------------ #
    def router_at(self, coord: Coordinate) -> Router:
        """The router at grid coordinate ``coord`` (used by tests)."""
        return self._router_at[coord]
