"""Vectorized cycle-batched mesh transport (``REPRO_TRANSPORT=vector``).

The scalar transport executes one ``Router._tick`` per woken router per
cycle, and each tick re-examines every occupied input VC in python.  This
module batches that work: a :class:`VectorTransportEngine` mirrors every
router's per-VC switching state in preallocated numpy arrays
(:class:`repro.sim.soa.TransportArrays`) and, once per drained cycle (via
``Simulator.register_cycle_hook``), classifies *all* woken routers' heads —
route, output-port busy test, downstream admission test — in a handful of
vectorized passes.  Each router's tick then consumes its precomputed plan
instead of rescanning its VCs.

Plans are slices, not objects: the hook leaves the cycle's candidate
verdicts in three flat parallel lists (``_entry_gids`` / ``_entry_over`` /
``_entry_out``, in global scan order) and scatters each woken router's
``(lo, hi)`` range, aggregated busy-expiry minimum, and a cycle stamp into
per-rid plan *lists* — plain python lists, because each slot is read once
by scalar tick code where list indexing is ~10x cheaper than numpy scalar
extraction.  Because state gids are assigned contiguously per router, the
ranges fall out of two ``searchsorted`` calls.  A tick checks
``plan_stamp[rid]`` against the current cycle; three tick shapes consume
without any scan:

* **all-parked** (empty range): nothing can move; sleep until the minimum
  busy expiry, exactly as the scalar scan would conclude.
* **lone candidate**: uncontended arbitration and forward.
* **arrival-only** (empty range plus late list): only VCs that went active
  or unblocked mid-cycle can move; scan just those, scalar-style.

The third shape exists because both packet-delivery producers
(``_forward`` and the injection tick of :class:`VectorNetworkInterface`)
pre-announce the delivery cycle to the engine, so a router woken solely by
an arrival still has a (stamped, empty) plan covering its parked VCs.

Bit-identity contract
---------------------
``REPRO_TRANSPORT=vector`` must produce bit-identical event orders and
stats trees to the scalar path (no ``MODEL_VERSION`` bump; enforced by
``scripts/check_transport_equivalence.py`` in CI).  The design guarantees
it by construction:

* **Events stay put.**  The engine never adds, removes, or moves kernel
  events; it only changes how a tick's *body* computes.  Every wake a
  router schedules is the one the scalar path would schedule.
* **The fallback is the reference.**  A tick with no valid plan — an
  unpredicted mid-cycle wake, a re-tick after the plan was consumed, a
  sparse cycle the hook declined to plan, or a plan complicated by both
  entries and late events — simply runs the inherited scalar
  ``Router._tick`` and re-syncs the mirrors.  Any situation the batch
  cannot prove safe (or profit from) degrades to scalar, never to
  "almost right".
* **Hook-time verdicts stay valid until the tick.**  Between the batch
  (start of cycle) and a router's tick, its input heads cannot change
  (only its own forwards pop them), its output ``busy_until`` cannot
  change (only its own forwards set them), and each downstream VC has
  exactly one upstream feeder (point-to-point links) so tracked
  reservations cannot *grow*.  Reservations can shrink (a downstream pop),
  which can only turn a "would block" verdict into "may forward" — so
  block verdicts are re-checked live at consume time, and the two
  mid-cycle events that add movable heads (a VC activation, a credit
  return) join the plan's *late list*, evaluated scalar-style in gid
  (= scan) order at consume.

Selection mirrors the kernel idiom (``REPRO_KERNEL``): the mesh-family
network builders call :func:`resolve_transport` and wire the engine when it
returns ``"vector"``; missing numpy or a fabric without vector support
falls back to scalar with a one-line warning.
"""

from __future__ import annotations

import os
import warnings
from bisect import insort
from typing import Dict, List, Optional

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.soa import FAR_FUTURE, HAVE_NUMPY, TransportArrays, np
from repro.noc.interface import NetworkInterface
from repro.noc.router import Router, _VcState

_NO_ARGS: tuple = ()

#: Below this many woken routers the hook skips planning for the cycle
#: (ticks fall back to the reference scalar pass): the fixed cost of the
#: vectorized passes outruns the per-tick savings on near-idle cycles.
PLAN_MIN_WOKEN = 4

#: Canonical environment variable selecting the transport implementation.
TRANSPORT_ENV_VAR = "REPRO_TRANSPORT"


def transport_mode() -> str:
    """The transport requested by ``REPRO_TRANSPORT`` (default scalar).

    Raises ``ValueError`` on unknown values, mirroring ``REPRO_KERNEL``'s
    validation; availability (numpy, fabric support) is resolved separately
    by :func:`resolve_transport`.
    """
    requested = os.environ.get(TRANSPORT_ENV_VAR, "").strip().lower()
    if requested in ("", "scalar"):
        return "scalar"
    if requested == "vector":
        return "vector"
    raise ValueError(
        f"{TRANSPORT_ENV_VAR}={requested!r} is not a known transport "
        "(expected 'scalar' or 'vector')"
    )


def resolve_transport() -> str:
    """Transport a mesh-family network should actually build.

    ``"vector"`` only when requested *and* numpy is importable; a vector
    request without numpy warns once and falls back to scalar, keeping
    numpy an optional extra.
    """
    mode = transport_mode()
    if mode == "vector" and not HAVE_NUMPY:
        warnings.warn(
            f"{TRANSPORT_ENV_VAR}=vector requires numpy; "
            "falling back to the scalar transport",
            RuntimeWarning,
            stacklevel=2,
        )
        return "scalar"
    return mode


class _VectorVcState(_VcState):
    """Per-VC state that write-throughs credit unblocks to the SoA mirror."""

    __slots__ = ("gid",)

    def _credit_return(self) -> None:
        self.blocked = False
        router = self._router
        engine = router._engine
        engine.blocked[self.gid] = False
        # A credit returning mid-cycle upgrades this head's hook-time
        # "blocked" verdict, so join the plan's late list for a fresh
        # scalar-style eval at consume time.  The plan's aggregated
        # busy-expiry minimum stays exact: the blocked head's hook-time
        # contribution was its own output port's ``busy_until``, which is
        # precisely what the fresh eval contributes again if that port is
        # still serializing (a min is idempotent), and was filtered out at
        # the hook if it wasn't.
        rid = router._rid
        if engine._plan_stamp[rid] == router.sim.cycle:
            late = engine._late
            lst = late.get(rid)
            if lst is None:
                late[rid] = [self.gid]
            else:
                lst.append(self.gid)
        if router._next_wake != router.sim.cycle:
            router.wake(0)


class VectorRouter(Router):
    """Scalar-compatible router facade over :class:`VectorTransportEngine`.

    Identical construction API and stats/activity surface as
    :class:`Router`; the overrides only (a) write state transitions through
    to the engine's arrays and (b) consume the engine's per-cycle plan in
    ``_tick`` when one is available, running the inherited scalar tick
    otherwise.
    """

    def __init__(self, sim: Simulator, name: str, **kwargs) -> None:
        super().__init__(sim, name, **kwargs)
        self._engine: Optional[VectorTransportEngine] = None
        self._rid = -1
        self._soa_next_wake = None  # bound to arrays.next_wake at finalize

    # -- write-through overrides --------------------------------------- #
    def wake(self, delay: int = 0) -> None:
        # Component.wake with one extra store: the engine's next_wake
        # mirror, which the batch compares against the current cycle.
        if delay < 0:
            raise SimulationError(f"cannot wake with negative delay {delay}")
        sim = self.sim
        now = sim.cycle
        target = now + delay
        pending = self._next_wake
        if now <= pending <= target:
            return
        self._next_wake = target
        self._soa_next_wake[self._rid] = target
        if target < sim._win_end:
            sim._buckets[target & sim._mask].append((self._run_tick, _NO_ARGS))
            sim._bucket_count += 1
        else:
            sim.schedule_at(self._run_tick, target)

    def receive_packet(self, packet, in_port: int, vc_index: int) -> None:
        # Router.receive_packet with eager states (finalize created every
        # _VcState up front) plus activation write-through: a VC going
        # active after the cycle's batch ran joins the plan's late list and
        # is classified scalar-style at consume time, in scan order.  (The
        # route_valid mirror needs no write here: the pop that drained the
        # VC already cleared it, and it starts cleared.)
        buffer = self.input_ports[in_port].vcs[vc_index]
        buffer.push(packet)
        self.buffer_flit_writes += packet.num_flits
        state = self._vc_state_rows[in_port][vc_index]
        if not state.active:
            state.active = True
            insort(self._active_vcs, state)
            engine = self._engine
            gid = state.gid
            engine.active[gid] = True
            rid = self._rid
            if engine._plan_stamp[rid] == self.sim.cycle:
                late = engine._late
                lst = late.get(rid)
                if lst is None:
                    late[rid] = [gid]
                else:
                    lst.append(gid)
        if self._next_wake != self.sim.cycle:
            self.wake(0)

    def _forward(self, winner: _VectorVcState, out_port, now: int) -> None:
        # The pop inside Router._forward clears head_route, so grab the
        # downstream VC first; afterwards mirror the reservation, the
        # output port's busy window, and a drained VC's deactivation.
        downstream_vc = winner.buffer.head_route[4]
        Router._forward(self, winner, out_port, now)
        engine = self._engine
        engine.vc_reserved[downstream_vc._soa_gid] = downstream_vc._reserved_flits
        engine.port_busy[out_port._soa_gid] = out_port.busy_until
        if not winner.active:
            engine.active[winner.gid] = False
        # Pre-announce the delivery so the downstream router's arrival
        # wake finds a stamped plan covering its parked VCs.
        rid_d = out_port._soa_sink_rid
        if rid_d >= 0:
            arrivals = engine._arrivals
            cyc = now + self.pipeline_latency + out_port.link_latency
            lst = arrivals.get(cyc)
            if lst is None:
                arrivals[cyc] = [rid_d]
            else:
                lst.append(rid_d)

    # -- plan consumption ----------------------------------------------- #
    def _tick(self) -> None:
        engine = self._engine
        now = self.sim.cycle
        rid = self._rid
        plan_stamp = engine._plan_stamp
        if plan_stamp[rid] == now:
            plan_stamp[rid] = -1
            late = engine._late.pop(rid, None) if engine._late else None
            lo = engine._plan_lo[rid]
            hi = engine._plan_hi[rid]
            if late is None:
                span = hi - lo
                if span == 0:
                    # Every head is parked (credit-blocked or behind a
                    # serializing output): sleep until the earliest busy
                    # expiry, exactly the scalar scan's outcome.
                    min_busy = engine._plan_min[rid]
                    if min_busy > now:
                        self.wake(min_busy - now)
                    return
                if span == 1 and not engine._entry_over[lo]:
                    # Lone candidate: uncontended arbitration, forward,
                    # re-wake — the dominant congested-tick shape.
                    state = engine.states[engine._entry_gids[lo]]
                    state.packet = state.vc._queue[0]
                    out_index = engine._entry_out[lo]
                    self._arbiters[out_index]._last_winner = state.key
                    self._forward(state, self.output_ports[out_index], now)
                    self.wake(1)
                    return
                self._consume(lo, hi, engine._plan_min[rid], now)
                return
            if lo == hi:
                self._consume_late(late, engine._plan_min[rid], now)
                return
            # Entries and late events in one tick is rare enough that the
            # reference pass beats merging them; fall through.
        # No plan: run the reference scalar pass, then re-sync the blocked
        # mirrors it may have set without write-through.
        Router._tick(self)
        blocked = engine.blocked
        blocked_port = engine.blocked_port
        for state in self._active_vcs:
            if state.blocked:
                gid = state.gid
                blocked[gid] = True
                blocked_port[gid] = state.blocked_port._soa_gid

    def _consume(self, lo: int, hi: int, min_busy: int, now: int) -> None:
        """Replay one arbitration round from the batch's verdicts.

        The plan is the ``[lo, hi)`` slice of the engine's parallel entry
        lists: per-state verdicts in scan (gid) order for heads that were
        neither skipped-blocked nor output-busy, plus the aggregated
        busy-expiry minimum.  The walk reproduces ``Router._tick``'s lazy
        candidate grouping, listener registrations, arbitration, forwards
        and wake schedule exactly — see the module docstring for why each
        verdict is still valid here.
        """
        engine = self._engine
        states = engine.states
        gids = engine._entry_gids
        overs = engine._entry_over
        outs = engine._entry_out
        next_busy_free = min_busy
        first_out = -1
        first_cands = None
        cands_by_out = None
        for i in range(lo, hi):
            gid = gids[i]
            state = states[gid]
            if overs[i]:
                # Hook-time admission failure.  Reservations can only have
                # shrunk since (single upstream feeder, and that is us), so
                # re-test live before committing to block.
                cached = state.vc.head_route
                packet = cached[0]
                downstream_vc = cached[4]
                reserved = downstream_vc._reserved_flits
                if (
                    reserved + packet.num_flits > downstream_vc.capacity_flits
                    and reserved
                ):
                    state.blocked = True
                    state.blocked_port = cached[2]
                    downstream_vc.wait_for_space(state.on_credit)
                    engine.blocked[gid] = True
                    engine.blocked_port[gid] = cached[2]._soa_gid
                    continue
                state.packet = packet
            else:
                state.packet = state.vc._queue[0]
            out_index = outs[i]
            if cands_by_out is not None:
                candidates = cands_by_out.get(out_index)
                if candidates is None:
                    cands_by_out[out_index] = [state]
                else:
                    candidates.append(state)
            elif first_out < 0:
                first_out = out_index
                first_cands = [state]
            elif out_index == first_out:
                first_cands.append(state)
            else:
                cands_by_out = {first_out: first_cands, out_index: [state]}
        forwarded = False
        if cands_by_out is None:
            if first_out >= 0:
                if len(first_cands) == 1:
                    winner = first_cands[0]
                    self._arbiters[first_out]._last_winner = winner.key
                else:
                    winner = self._arbiters[first_out].choose(first_cands)
                if winner is not None:
                    self._forward(winner, self.output_ports[first_out], now)
                    forwarded = True
        else:
            for out_index, candidates in cands_by_out.items():
                winner = self._arbiters[out_index].choose(candidates)
                if winner is not None:
                    self._forward(winner, self.output_ports[out_index], now)
                    forwarded = True
        if forwarded:
            self.wake(1)
        elif next_busy_free > now:
            self.wake(next_busy_free - now)

    def _consume_late(self, late: List[int], min_busy: int, now: int) -> None:
        """Arbitration round where only late-arrived heads can move.

        The plan's entry range is empty, so every VC that was active at the
        hook is parked (blocked or output-busy) and stays parked — its
        contribution is already folded into ``min_busy``.  The VCs that
        went active or credit-unblocked since (the late list) are examined
        exactly as ``Router._tick``'s scan would examine them now, in gid
        (= scan) order; the parked VCs' skips are free.
        """
        engine = self._engine
        states = engine.states
        if len(late) > 1:
            late.sort()
        next_busy_free = min_busy
        first_out = -1
        first_cands = None
        cands_by_out = None
        for gid in late:
            state = states[gid]
            vc = state.vc
            packet = vc._queue[0]
            cached = vc.head_route
            if cached is None or cached[0] is not packet:
                cached = self._head_route(vc, packet)
            busy_until = cached[2].busy_until
            if busy_until > now:
                if next_busy_free == 0 or busy_until < next_busy_free:
                    next_busy_free = busy_until
                continue
            downstream_vc = cached[4]
            reserved = downstream_vc._reserved_flits
            if reserved + packet.num_flits > downstream_vc.capacity_flits and reserved:
                state.blocked = True
                state.blocked_port = cached[2]
                downstream_vc.wait_for_space(state.on_credit)
                engine.blocked[gid] = True
                engine.blocked_port[gid] = cached[2]._soa_gid
                continue
            out_index = cached[1]
            state.packet = packet
            if cands_by_out is not None:
                candidates = cands_by_out.get(out_index)
                if candidates is None:
                    cands_by_out[out_index] = [state]
                else:
                    candidates.append(state)
            elif first_out < 0:
                first_out = out_index
                first_cands = [state]
            elif out_index == first_out:
                first_cands.append(state)
            else:
                cands_by_out = {first_out: first_cands, out_index: [state]}
        forwarded = False
        if cands_by_out is None:
            if first_out >= 0:
                if len(first_cands) == 1:
                    winner = first_cands[0]
                    self._arbiters[first_out]._last_winner = winner.key
                else:
                    winner = self._arbiters[first_out].choose(first_cands)
                if winner is not None:
                    self._forward(winner, self.output_ports[first_out], now)
                    forwarded = True
        else:
            for out_index, candidates in cands_by_out.items():
                winner = self._arbiters[out_index].choose(candidates)
                if winner is not None:
                    self._forward(winner, self.output_ports[out_index], now)
                    forwarded = True
        if forwarded:
            self.wake(1)
        elif next_busy_free > now:
            self.wake(next_busy_free - now)


class VectorNetworkInterface(NetworkInterface):
    """NetworkInterface whose injections pre-announce the delivery cycle.

    The engine swaps this class in at :meth:`VectorTransportEngine.finalize`
    for every plain interface attached to one of its routers.  The tick
    body is the scalar injection loop verbatim; the only addition is the
    arrival record, so the attached router's delivery-cycle tick can
    consume a plan instead of falling back to the scalar scan.
    """

    _vector_engine = None
    _vector_rid = -1

    def _tick(self) -> None:
        if self._router is None:
            raise RuntimeError(f"{self.name}: interface not attached to a router")
        progressed = False
        injected = False
        schedule_delivery = self.sim.schedule_delivery
        for queue, vc_index, vc in self._inject_vcs:
            if not queue:
                continue
            packet = queue[0]
            flits = packet.num_flits
            # Inlined can_reserve/reserve, as in NetworkInterface._tick.
            reserved = vc._reserved_flits
            if reserved + flits <= vc.capacity_flits or not reserved:
                vc._reserved_flits = reserved + flits
                queue.popleft()
                schedule_delivery(
                    self._router, packet, self._router_port, vc_index, self.injection_latency
                )
                injected = True
                if queue:
                    progressed = True
            else:
                vc.wait_for_space(self._credit_wake)
        if injected:
            arrivals = self._vector_engine._arrivals
            cyc = self.sim.cycle + self.injection_latency
            lst = arrivals.get(cyc)
            if lst is None:
                arrivals[cyc] = [self._vector_rid]
            else:
                lst.append(self._vector_rid)
        if progressed:
            self.wake(1)


class VectorTransportEngine:
    """Batches all woken routers' arbitration classification per cycle.

    One engine per network.  :meth:`finalize` assigns the dense id spaces
    (see :mod:`repro.sim.soa`), creates every ``_VectorVcState`` eagerly,
    instruments the VCs' pop write-through slots, and registers
    :meth:`on_cycle` with the kernel.  From then on the engine computes a
    per-router *plan* at the start of each simulated cycle; routers consume
    their plan in ``VectorRouter._tick``.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.routers: List[VectorRouter] = []
        self.states: List[_VectorVcState] = []
        self.arrays: Optional[TransportArrays] = None
        #: rid -> gids activated/unblocked after the cycle's batch ran.
        self._late: Dict[int, List[int]] = {}
        #: delivery cycle -> rids receiving a packet that cycle, recorded
        #: by the delivery producers so the hook can plan arrival wakes.
        self._arrivals: Dict[int, List[int]] = {}
        # The cycle's entry verdicts as flat parallel lists (gid order);
        # routers index them through their plan's [lo, hi) range.
        self._entry_gids: List[int] = []
        self._entry_over: List[bool] = []
        self._entry_out: List[int] = []
        # Published per-router plans: plain python lists indexed by rid
        # (allocated in finalize), read once per tick where list indexing
        # beats numpy scalar extraction by an order of magnitude.
        self._plan_stamp: List[int] = []
        self._plan_lo: List[int] = []
        self._plan_hi: List[int] = []
        self._plan_min: List[int] = []
        # Hot-array aliases, bound in finalize().
        self.active = None
        self.blocked = None
        self.route_valid = None
        self.vc_reserved = None
        self.port_busy = None
        self.blocked_port = None

    # ------------------------------------------------------------------ #
    def finalize(self, routers: List[VectorRouter], interfaces=()) -> None:
        """Assign id spaces, allocate mirrors, and hook into the kernel.

        Must run after network construction completes and before any
        traffic flows (the builders call it at the end of ``__init__``,
        passing the network's interfaces so injection ticks can
        pre-announce arrivals).
        """
        if self.arrays is not None:
            raise RuntimeError("VectorTransportEngine.finalize called twice")
        states = self.states
        for rid, router in enumerate(routers):
            router._engine = self
            router._rid = rid
            self.routers.append(router)
            local_ports = router._local_input_ports
            for in_port, port in enumerate(router.input_ports):
                row = router._vc_state_rows[in_port]
                is_local = in_port in local_ports
                for vc_index, vc in enumerate(port.vcs):
                    state = _VectorVcState(router, in_port, vc_index, vc, is_local)
                    state.gid = len(states)
                    row[vc_index] = state
                    states.append(state)
        num_states = len(states)
        ports: list = []
        for router in routers:
            for port in router.output_ports:
                port._soa_gid = len(ports)
                ports.append(port)
        # VC gids: states' own VCs first (vc gid == owning state gid), then
        # ejection-side VCs, which park route invalidations in the scrap
        # slot ``num_states``.
        vcs: list = []
        seen_vcs = set()
        for state in states:
            vc = state.vc
            vc._soa_gid = len(vcs)
            vc._soa_state_gid = state.gid
            vcs.append(vc)
            seen_vcs.add(id(vc))
        for router in routers:
            for port in router.output_ports:
                downstream_port = port.downstream.input_ports[port.downstream_port]
                for vc in downstream_port.vcs:
                    if id(vc) not in seen_vcs:
                        seen_vcs.add(id(vc))
                        vc._soa_gid = len(vcs)
                        vc._soa_state_gid = num_states
                        vcs.append(vc)
        arrays = TransportArrays(len(routers), num_states, len(ports), len(vcs))
        self.arrays = arrays
        state_router = arrays.state_router
        for gid, state in enumerate(states):
            state_router[gid] = state._router._rid
        for gid, vc in enumerate(vcs):
            arrays.vc_cap[gid] = vc.capacity_flits
            arrays.vc_reserved[gid] = vc._reserved_flits
            vc._soa_reserved = arrays.vc_reserved
            vc._soa_route_valid = arrays.route_valid
        for gid, port in enumerate(ports):
            arrays.port_busy[gid] = port.busy_until
        for rid, router in enumerate(routers):
            arrays.next_wake[rid] = router._next_wake
            router._soa_next_wake = arrays.next_wake
        # Static delivery targets: each output port knows the rid its
        # packets wake (or -1 for ejection interfaces), and each plain
        # interface becomes a pre-announcing one.
        for router in routers:
            for port in router.output_ports:
                sink = port.downstream
                port._soa_sink_rid = (
                    sink._rid if getattr(sink, "_engine", None) is self else -1
                )
        for interface in interfaces:
            if (
                type(interface) is NetworkInterface
                and getattr(interface._router, "_engine", None) is self
            ):
                interface.__class__ = VectorNetworkInterface
                interface._vector_engine = self
                interface._vector_rid = interface._router._rid
        self.active = arrays.active
        self.blocked = arrays.blocked
        self.route_valid = arrays.route_valid
        self.vc_reserved = arrays.vc_reserved
        self.port_busy = arrays.port_busy
        self.blocked_port = arrays.blocked_port
        num_routers = len(routers)
        self._plan_stamp = [-1] * num_routers
        self._plan_lo = [0] * num_routers
        self._plan_hi = [0] * num_routers
        self._plan_min = [0] * num_routers
        self.sim.register_cycle_hook(self.on_cycle)

    # ------------------------------------------------------------------ #
    def on_cycle(self, t: int) -> None:
        """Classify every woken router's heads for cycle ``t`` in bulk."""
        arrivals = self._arrivals.pop(t, None)
        if self._late:
            self._late.clear()
        arrays = self.arrays
        woken = arrays.next_wake == t
        if arrivals is not None:
            woken[arrivals] = True
        woken_rids = np.nonzero(woken)[0]
        if woken_rids.size < PLAN_MIN_WOKEN:
            # Near-idle cycle: stale stamps route every tick to the scalar
            # reference pass, which is cheaper than planning this few.
            return
        state_router = arrays.state_router
        mask = arrays.active & woken[state_router]
        idx = np.nonzero(mask)[0]
        entry_rids = None
        min_list = None
        if idx.size:
            is_blocked = arrays.blocked[idx]
            free_idx = idx[~is_blocked]
            blocked_idx = idx[is_blocked]
            if free_idx.size:
                valid = arrays.route_valid[free_idx]
                if not valid.all():
                    self._resolve_routes(free_idx[~valid])
                busy = arrays.port_busy[arrays.head_port[free_idx]]
                is_busy = busy > t
                ok_idx = free_idx[~is_busy]
                if ok_idx.size:
                    down = arrays.head_down_vc[ok_idx]
                    reserved = arrays.vc_reserved[down]
                    over = (
                        (reserved + arrays.head_flits[ok_idx]) > arrays.vc_cap[down]
                    ) & (reserved > 0)
                    entry_rids = state_router[ok_idx]
                    self._entry_gids = ok_idx.tolist()
                    self._entry_over = over.tolist()
                    self._entry_out = arrays.head_out[ok_idx].tolist()
            else:
                is_busy = None
            # Busy-expiry contributions: blocked heads' cached ports plus
            # free heads whose output is currently serializing.
            parts_idx = []
            parts_val = []
            if blocked_idx.size:
                blocked_busy = arrays.port_busy[arrays.blocked_port[blocked_idx]]
                m = blocked_busy > t
                if m.any():
                    parts_idx.append(blocked_idx[m])
                    parts_val.append(blocked_busy[m])
            if free_idx.size and is_busy.any():
                parts_idx.append(free_idx[is_busy])
                parts_val.append(busy[is_busy])
            if parts_idx:
                if len(parts_idx) == 1:
                    contrib_idx = parts_idx[0]
                    contrib_busy = parts_val[0]
                else:
                    contrib_idx = np.concatenate(parts_idx)
                    contrib_busy = np.concatenate(parts_val)
                scratch = arrays.busy_scratch
                scratch[woken_rids] = FAR_FUTURE
                np.minimum.at(scratch, state_router[contrib_idx], contrib_busy)
                min_list = scratch[woken_rids].tolist()
        # Publish: one pass over the woken rids, storing into preallocated
        # python lists (read back by scalar tick code).
        woken_list = woken_rids.tolist()
        plan_stamp = self._plan_stamp
        plan_lo = self._plan_lo
        plan_hi = self._plan_hi
        plan_min = self._plan_min
        if entry_rids is not None:
            lo_list = np.searchsorted(entry_rids, woken_rids, side="left").tolist()
            hi_list = np.searchsorted(entry_rids, woken_rids, side="right").tolist()
            if min_list is not None:
                for i, rid in enumerate(woken_list):
                    plan_stamp[rid] = t
                    plan_lo[rid] = lo_list[i]
                    plan_hi[rid] = hi_list[i]
                    m = min_list[i]
                    plan_min[rid] = 0 if m == FAR_FUTURE else m
            else:
                for i, rid in enumerate(woken_list):
                    plan_stamp[rid] = t
                    plan_lo[rid] = lo_list[i]
                    plan_hi[rid] = hi_list[i]
                    plan_min[rid] = 0
        elif min_list is not None:
            for i, rid in enumerate(woken_list):
                plan_stamp[rid] = t
                plan_lo[rid] = 0
                plan_hi[rid] = 0
                m = min_list[i]
                plan_min[rid] = 0 if m == FAR_FUTURE else m
        else:
            for rid in woken_list:
                plan_stamp[rid] = t
                plan_lo[rid] = 0
                plan_hi[rid] = 0
                plan_min[rid] = 0

    def _resolve_routes(self, gids) -> None:
        """Fill the head_* mirrors for states whose route cache is stale.

        Runs python-side (route tables are static dict lookups); also
        refreshes ``vc.head_route`` via the router's shared cache helper,
        so the consume path can trust the tuple without re-deriving it.
        """
        arrays = self.arrays
        states = self.states
        head_out = arrays.head_out
        head_port = arrays.head_port
        head_down_vc = arrays.head_down_vc
        head_flits = arrays.head_flits
        route_valid = arrays.route_valid
        for gid in gids.tolist():
            state = states[gid]
            vc = state.vc
            packet = vc._queue[0]
            cached = vc.head_route
            if cached is None or cached[0] is not packet:
                cached = state._router._head_route(vc, packet)
            head_out[gid] = cached[1]
            head_port[gid] = cached[2]._soa_gid
            head_down_vc[gid] = cached[4]._soa_gid
            head_flits[gid] = packet.num_flits
            route_valid[gid] = True
