"""Network interfaces: injection and ejection points for endpoints."""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.noc.buffer import InputPort, unbounded_input_port
from repro.noc.message import Message, MessageClass, Packet
from repro.noc.router import PacketSink, Router


class NetworkInterface(Component, PacketSink):
    """Connects one endpoint (tile / LLC tile / memory controller) to a router.

    Injection: messages are queued per message class and pushed into the
    attached router's input port as soon as the corresponding VC can accept
    them.  Ejection: the last router on a path forwards the packet to this
    interface, which delivers the message to the endpoint after the packet's
    serialization delay (one flit per cycle).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node_id: int,
        link_width_bits: int,
        on_delivery: Callable[[Packet], None],
        injection_latency: int = 1,
    ) -> None:
        super().__init__(sim, name)
        self.node_id = node_id
        self.link_width_bits = link_width_bits
        self.injection_latency = injection_latency
        self._on_delivery = on_delivery
        self._inject_queues: Dict[MessageClass, deque] = {cls: deque() for cls in MessageClass}
        self.input_ports = [unbounded_input_port(name=f"{name}.eject")]
        self._router: Optional[Router] = None
        self._router_port: Optional[int] = None
        # Per-class (vc_index, vc) resolution on the attached router input
        # port, precomputed at attach time for the injection hot loop.
        self._inject_vcs: list = []
        # Stable bound wake callback for VC credit listeners (deduplicated
        # by VirtualChannelBuffer.wait_for_space across blocked ticks).
        self._credit_wake = self.wake
        # Statistics / activity
        self.messages_injected = 0
        self.messages_delivered = 0
        self.flits_injected = 0

    # ------------------------------------------------------------------ #
    def attach_router(self, router: Router, router_in_port: int) -> None:
        """Declare the router input port this interface injects into."""
        self._router = router
        self._router_port = router_in_port
        in_port = router.input_ports[router_in_port]
        self._inject_vcs = [
            (
                self._inject_queues[msg_class],
                in_port.vc_index_for(msg_class),
                in_port.vc_for(msg_class),
            )
            for msg_class in (MessageClass.RESPONSE, MessageClass.SNOOP, MessageClass.REQUEST)
        ]

    # ------------------------------------------------------------------ #
    # Injection
    # ------------------------------------------------------------------ #
    def inject(self, message: Message) -> Packet:
        """Queue ``message`` for injection; returns the wrapping packet."""
        packet = Packet(message, self.link_width_bits, injected_cycle=self.sim.cycle)
        self._inject_queues[message.msg_class].append(packet)
        self.messages_injected += 1
        self.flits_injected += packet.num_flits
        # wake(0) with the same-cycle suppression test hoisted (several
        # messages commonly inject within one cycle).
        if self._next_wake != self.sim.cycle:
            self.wake(0)
        return packet

    def _tick(self) -> None:
        """Inject up to one queued packet per message class.

        Event-driven counterpart of the old poll-every-cycle loop: a class
        whose head packet fits reserves downstream space and re-wakes next
        cycle only if more packets queue behind it; a class blocked on a
        full VC registers this interface's wake callback with that VC and
        sleeps until its next ``pop`` returns credit.
        """
        if self._router is None:
            raise RuntimeError(f"{self.name}: interface not attached to a router")
        progressed = False
        schedule_delivery = self.sim.schedule_delivery
        for queue, vc_index, vc in self._inject_vcs:
            if not queue:
                continue
            packet = queue[0]
            flits = packet.num_flits
            # Inlined can_reserve/reserve (hot loop); must stay equivalent
            # to VirtualChannelBuffer.can_reserve's admission test.
            reserved = vc._reserved_flits
            if reserved + flits <= vc.capacity_flits or not reserved:
                vc._reserved_flits = reserved + flits
                queue.popleft()
                schedule_delivery(
                    self._router, packet, self._router_port, vc_index, self.injection_latency
                )
                if queue:
                    progressed = True
            else:
                vc.wait_for_space(self._credit_wake)
        if progressed:
            self.wake(1)

    @property
    def injection_backlog(self) -> int:
        """Packets waiting to enter the network."""
        return sum(len(q) for q in self._inject_queues.values())

    # ------------------------------------------------------------------ #
    # Ejection
    # ------------------------------------------------------------------ #
    def receive_packet(self, packet: Packet, in_port: int, vc_index: int) -> None:
        vc = self.input_ports[in_port].vcs[vc_index]
        vc.push(packet)
        vc.pop()  # the ejection port drains immediately; capacity is unbounded
        serialization = max(0, packet.num_flits - 1)
        self.sim.schedule_call(self._deliver, (packet,), serialization)

    def _deliver(self, packet: Packet) -> None:
        self.messages_delivered += 1
        self._on_delivery(packet)
