"""Virtual-channel buffers with reservation-based flow control.

Instead of simulating credit signalling cycle by cycle, upstream routers
*reserve* space in the downstream virtual channel at arbitration time and
the reservation is converted into occupancy when the packet arrives.  This
conserves buffer bounds exactly while keeping the simulator fast; the
credit round-trip time is folded into the buffer depth, matching the
paper's choice of "5 flits per VC ... the minimum necessary to cover the
round-trip credit time".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.noc.message import MessageClass, Packet


class VirtualChannelBuffer:
    """One virtual channel: a FIFO of packets with flit-granular capacity."""

    __slots__ = (
        "name",
        "capacity_flits",
        "_reserved_flits",
        "_occupied_flits",
        "_queue",
        "_space_waiters",
        "head_route",
        "_soa_reserved",
        "_soa_gid",
        "_soa_route_valid",
        "_soa_state_gid",
    )

    def __init__(self, capacity_flits: int, name: str = "vc") -> None:
        if capacity_flits < 1:
            raise ValueError("capacity_flits must be >= 1")
        self.name = name
        self.capacity_flits = capacity_flits
        self._reserved_flits = 0
        self._occupied_flits = 0
        self._queue: deque = deque()
        #: One-shot credit listeners: callables invoked (and cleared) when a
        #: reservation is released, i.e. when space can actually free up.
        #: A dict (insertion-ordered) rather than a list: registration is
        #: O(1) with duplicates deduplicated by key, and notification walks
        #: the keys in registration order.
        self._space_waiters: Dict[Callable[[], None], None] = {}
        #: Routing decision cached for the current head packet, managed by
        #: the owning router: ``(packet, out_index, out_port,
        #: downstream_vc_index, downstream_vc)`` — see ``Router._head_route``.
        self.head_route: Optional[tuple] = None
        #: Struct-of-arrays write-through slots, assigned only when this VC
        #: belongs to a vector-transport network (``repro.noc.vector``):
        #: ``_soa_reserved[_soa_gid]`` mirrors ``_reserved_flits`` and
        #: ``_soa_route_valid[_soa_state_gid]`` is the owning state's
        #: route-cache validity flag, both kept current by :meth:`pop`.
        #: ``None`` in scalar mode, where pop pays one attribute test.
        self._soa_reserved = None
        self._soa_gid = 0
        self._soa_route_valid = None
        self._soa_state_gid = 0

    # ------------------------------------------------------------------ #
    def can_reserve(self, flits: int) -> bool:
        """Whether a packet of ``flits`` flits may be admitted.

        A packet larger than the whole VC may be admitted only into an empty
        VC; this models a long packet stretching back over the upstream link
        (wormhole spill) without deadlocking small tree buffers.
        """
        if flits <= 0:
            raise ValueError("flits must be positive")
        if self._reserved_flits + flits <= self.capacity_flits:
            return True
        return self._reserved_flits == 0

    def reserve(self, flits: int) -> None:
        """Reserve space for an in-flight packet."""
        if not self.can_reserve(flits):
            raise RuntimeError(f"{self.name}: reservation overflow ({flits} flits)")
        self._reserved_flits += flits

    def push(self, packet: Packet) -> None:
        """Deposit an arriving packet (its space must have been reserved)."""
        self._occupied_flits += packet.num_flits
        self._queue.append(packet)

    def peek(self) -> Optional[Packet]:
        """Head-of-line packet, if any."""
        return self._queue[0] if self._queue else None

    def pop(self) -> Packet:
        """Remove the head packet, release its reservation, notify waiters.

        Releasing a reservation is the only way this VC can gain space, so
        ``pop`` is the single credit-return point: every waiter registered
        via :meth:`wait_for_space` is woken exactly here (and the waiter
        list cleared), which lets a blocked upstream component sleep instead
        of polling for credit every cycle.
        """
        if not self._queue:
            raise RuntimeError(f"{self.name}: pop from empty VC")
        packet = self._queue.popleft()
        self._occupied_flits -= packet.num_flits
        self._reserved_flits -= packet.num_flits
        if self._reserved_flits < 0 or self._occupied_flits < 0:
            raise RuntimeError(f"{self.name}: negative occupancy (flow-control bug)")
        self.head_route = None
        reserved_mirror = self._soa_reserved
        if reserved_mirror is not None:
            reserved_mirror[self._soa_gid] = self._reserved_flits
            self._soa_route_valid[self._soa_state_gid] = False
        waiters = self._space_waiters
        if waiters:
            self._space_waiters = {}
            for waiter in waiters:
                waiter()
        return packet

    def wait_for_space(self, waiter: Callable[[], None]) -> None:
        """Register a one-shot credit listener (deduplicated, O(1)).

        ``waiter`` is invoked the next time a reservation is released via
        :meth:`pop`, in registration order.  Upstream components that find
        this VC full register their (bound, reused) wake callback instead of
        re-polling; registering an already-registered waiter is a no-op, so
        a component blocked over many cycles costs no queue growth and no
        kernel events at all.
        """
        self._space_waiters[waiter] = None

    # ------------------------------------------------------------------ #
    @property
    def occupancy_flits(self) -> int:
        return self._occupied_flits

    @property
    def reserved_flits(self) -> int:
        return self._reserved_flits

    @property
    def empty(self) -> bool:
        return not self._queue

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"VirtualChannelBuffer({self.name}, {self._occupied_flits}/"
            f"{self.capacity_flits} flits, {len(self._queue)} pkts)"
        )


class InputPort:
    """A router input port: one VC per message class (possibly shared).

    ``vc_map`` maps a :class:`MessageClass` to a VC index; ports with fewer
    VCs than message classes (e.g. the two-VC tree ports of NOC-Out) share
    a VC between classes that can never conflict on that port.
    """

    def __init__(
        self,
        num_vcs: int,
        vc_depth_flits: int,
        name: str = "port",
        vc_map: Optional[Dict[MessageClass, int]] = None,
    ) -> None:
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        self.name = name
        self.num_vcs = num_vcs
        self.vc_depth_flits = vc_depth_flits
        self.vcs: List[VirtualChannelBuffer] = [
            VirtualChannelBuffer(vc_depth_flits, name=f"{name}.vc{i}") for i in range(num_vcs)
        ]
        if vc_map is None:
            vc_map = {cls: min(int(cls), num_vcs - 1) for cls in MessageClass}
        self._vc_map = dict(vc_map)
        for cls, idx in self._vc_map.items():
            if not 0 <= idx < num_vcs:
                raise ValueError(f"vc_map[{cls}] = {idx} out of range")

    def vc_index_for(self, msg_class: MessageClass) -> int:
        """Virtual channel index assigned to ``msg_class``."""
        return self._vc_map[msg_class]

    def vc_for(self, msg_class: MessageClass) -> VirtualChannelBuffer:
        """Virtual channel buffer assigned to ``msg_class``."""
        return self.vcs[self.vc_index_for(msg_class)]

    @property
    def empty(self) -> bool:
        return all(vc.empty for vc in self.vcs)

    @property
    def occupancy_flits(self) -> int:
        return sum(vc.occupancy_flits for vc in self.vcs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"InputPort({self.name}, vcs={self.num_vcs})"


def unbounded_input_port(num_vcs: int = len(MessageClass), name: str = "eject") -> InputPort:
    """An ejection-side port that never back-pressures the network."""
    return InputPort(num_vcs=num_vcs, vc_depth_flits=10**9, name=name)
