"""Network-on-chip substrate.

This package provides the building blocks shared by every evaluated
interconnect: messages and packets with flit accounting, virtual-channel
buffers, arbiters, a generic table-routed virtual-cut-through router,
network interfaces, and the three baseline fabrics (mesh, flattened
butterfly, ideal wire-only network).  The NOC-Out specific networks
(reduction/dispersion trees and the LLC flattened butterfly) live in
:mod:`repro.core`.
"""

from repro.noc.message import Message, MessageClass, Packet, control_message_bits, data_message_bits
from repro.noc.buffer import VirtualChannelBuffer, InputPort
from repro.noc.arbiter import RoundRobinArbiter, StaticPriorityArbiter
from repro.noc.router import Router, OutputPort
from repro.noc.interface import NetworkInterface
from repro.noc.network import Network
from repro.noc.mesh import MeshNetwork
from repro.noc.flattened_butterfly import FlattenedButterflyNetwork
from repro.noc.ideal import IdealNetwork

__all__ = [
    "Message",
    "MessageClass",
    "Packet",
    "control_message_bits",
    "data_message_bits",
    "VirtualChannelBuffer",
    "InputPort",
    "RoundRobinArbiter",
    "StaticPriorityArbiter",
    "Router",
    "OutputPort",
    "NetworkInterface",
    "Network",
    "MeshNetwork",
    "FlattenedButterflyNetwork",
    "IdealNetwork",
]
