"""Generic table-routed virtual-cut-through router.

A single router class covers every switching element in the paper: mesh
routers, flattened-butterfly routers, NOC-Out LLC routers, and (with two
ports and static-priority arbitration) the reduction/dispersion tree nodes.
The topology-specific network classes build routers, wire their ports and
fill their routing tables.

Timing model
------------
When a packet at the head of an input VC wins arbitration for a free output
port at cycle ``T`` it is removed from the input buffer, space is reserved
in the downstream VC, and the packet is delivered to the downstream input
buffer at ``T + pipeline_latency + link_latency``.  The output port is held
busy for ``num_flits`` cycles, which models serialization / bandwidth; a
final serialization charge is applied once at the ejection interface
(virtual cut-through behaviour).

Wake protocol
-------------
Routers are fully event-driven: an arbitration round runs only when an
event could let a packet move.  A router is woken by (1) a packet arriving
on one of its input VCs, (2) its own forward one cycle earlier (the next
head or an arbitration loser may now move), (3) a busy output port's
``busy_until`` expiring, or (4) a credit listener firing when a downstream
VC it found full releases a reservation (``VirtualChannelBuffer.pop``).  A
router whose heads are all credit-blocked therefore schedules **zero**
kernel events until credit returns; see ``docs/performance.md``.

Vectorized transport
--------------------
``repro.noc.vector.VectorRouter`` subclasses this router and batches the
tick body across all woken routers per cycle (``REPRO_TRANSPORT=vector``).
The subclass relies on this module's exact semantics: ``_tick``'s scan
order over ``_active_vcs``, the inlined admission test, the lazy candidate
grouping, the uncontended-arbiter bypass, and ``_forward``'s inlined
reservation are all mirrored verbatim there — a change to any of them must
be reflected in ``vector.py`` (CI's transport-equivalence gate will catch a
divergence).  Stats, tenancy attribution and the power model read the same
counters either way, because the subclass never bypasses this class's
bookkeeping.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.noc.arbiter import ArbitrationCandidate, Arbiter, RoundRobinArbiter
from repro.noc.buffer import InputPort
from repro.noc.message import MessageClass, Packet


class OutputPort:
    """An output port: a link to a downstream component's input port."""

    def __init__(
        self,
        name: str,
        downstream: "PacketSink",
        downstream_port: int,
        link_latency: int,
        link_length_mm: float = 0.0,
    ) -> None:
        self.name = name
        self.downstream = downstream
        self.downstream_port = downstream_port
        self.link_latency = link_latency
        self.link_length_mm = link_length_mm
        self.busy_until = 0
        self.flits_sent = 0
        self.packets_sent = 0

    def downstream_input(self) -> InputPort:
        return self.downstream.input_ports[self.downstream_port]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"OutputPort({self.name} -> {self.downstream!r}.{self.downstream_port})"


class PacketSink:
    """Protocol implemented by anything that can receive packets.

    Routers and network interfaces both expose ``input_ports`` and
    ``receive_packet``; this base class only documents the contract.
    """

    input_ports: List[InputPort]

    def receive_packet(self, packet: Packet, in_port: int, vc_index: int) -> None:
        raise NotImplementedError


class _VcState:
    """Per-(input port, VC) switching state owned by one router.

    Created once per VC on first activation and reused for the router's
    lifetime.  ``blocked`` implements credit-blocked head skipping: when a
    tick finds a head that cannot reserve downstream space, the state is
    marked blocked and ``on_credit`` (a stable bound method) is registered
    with the downstream VC; the VC is then skipped by every arbitration
    round until the downstream ``pop`` fires the listener.  Reservations
    only ever shrink on ``pop``, so skipping is exactly equivalent to
    re-checking ``can_reserve`` each round — just without the work.
    """

    __slots__ = (
        "key", "in_port", "vc_index", "vc", "buffer", "packet", "is_local",
        "active", "blocked", "blocked_port", "on_credit", "_router",
    )

    def __init__(
        self, router: "Router", in_port: int, vc_index: int, vc, is_local: bool
    ) -> None:
        self.key = (in_port, vc_index)
        self.in_port = in_port
        self.vc_index = vc_index
        self.vc = vc
        #: Alias of ``vc`` under the arbitration-candidate attribute name:
        #: the state object doubles as its own candidate (it carries every
        #: attribute arbiters read), so a ready head costs zero allocations
        #: per round.  ``packet`` is refreshed each time the state is
        #: offered to an arbiter.
        self.buffer = vc
        self.packet = None
        self.is_local = is_local
        self.active = False
        self.blocked = False
        #: Output port of the blocked head, cached when ``blocked`` is set so
        #: the skip path reads ``busy_until`` without chasing ``head_route``.
        #: Only meaningful while ``blocked`` is True.
        self.blocked_port = None
        self._router = router
        # Stable bound callback so VirtualChannelBuffer.wait_for_space can
        # deduplicate registrations without allocating per registration.
        self.on_credit = self._credit_return

    def __lt__(self, other: "_VcState") -> bool:
        return self.key < other.key

    def _credit_return(self) -> None:
        self.blocked = False
        router = self._router
        if router._next_wake != router.sim.cycle:
            router.wake(0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_VcState({self.key}, active={self.active}, blocked={self.blocked})"


class Router(Component, PacketSink):
    """A virtual-channel router with a per-destination routing table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        pipeline_latency: int = 2,
        arbiter_factory: Callable[[], Arbiter] = RoundRobinArbiter,
    ) -> None:
        super().__init__(sim, name)
        if pipeline_latency < 0:
            raise ValueError("pipeline_latency must be non-negative")
        self.pipeline_latency = pipeline_latency
        self.input_ports: List[InputPort] = []
        self.output_ports: List[OutputPort] = []
        self.route_table: Dict[int, int] = {}
        self._arbiter_factory = arbiter_factory
        self._arbiters: List[Arbiter] = []
        self._local_input_ports: set = set()
        # Occupied input VCs as _VcState objects, kept sorted by
        # (in_port, vc_index) so ticks scan only buffers that actually hold
        # packets (scan order — and therefore arbitration candidate order —
        # matches a full sweep).  States are created lazily, one per VC, and
        # indexed by [in_port][vc_index] rows (cheaper than a tuple-keyed
        # dict on the receive/forward path).
        self._vc_state_rows: List[List[Optional[_VcState]]] = []
        self._active_vcs: List[_VcState] = []
        # Activity counters consumed by the energy model.
        self.flits_switched = 0
        self.packets_switched = 0
        self.buffer_flit_writes = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input_port(self, port: InputPort, is_local: bool = False) -> int:
        """Attach an input port; returns its index."""
        self.input_ports.append(port)
        index = len(self.input_ports) - 1
        self._vc_state_rows.append([None] * port.num_vcs)
        if is_local:
            self._local_input_ports.add(index)
        return index

    def add_output_port(
        self,
        name: str,
        downstream: PacketSink,
        downstream_port: int,
        link_latency: int,
        link_length_mm: float = 0.0,
    ) -> int:
        """Attach an output port; returns its index."""
        if self.pipeline_latency + link_latency < 1:
            raise ValueError("per-hop latency (pipeline + link) must be >= 1 cycle")
        port = OutputPort(name, downstream, downstream_port, link_latency, link_length_mm)
        self.output_ports.append(port)
        self._arbiters.append(self._arbiter_factory())
        return len(self.output_ports) - 1

    def set_route(self, dst_node: int, out_port: int) -> None:
        """Route packets destined to ``dst_node`` through ``out_port``."""
        if not 0 <= out_port < len(self.output_ports):
            raise ValueError(f"{self.name}: invalid output port {out_port}")
        self.route_table[dst_node] = out_port

    def route(self, packet: Packet) -> int:
        """Output port index for ``packet`` (table lookup)."""
        try:
            return self.route_table[packet.dst]
        except KeyError:
            raise KeyError(f"{self.name}: no route to node {packet.dst}") from None

    @property
    def radix(self) -> int:
        """Number of ports (max of inputs and outputs), used by area/energy."""
        return max(len(self.input_ports), len(self.output_ports))

    # ------------------------------------------------------------------ #
    # Packet reception
    # ------------------------------------------------------------------ #
    def receive_packet(self, packet: Packet, in_port: int, vc_index: int) -> None:
        buffer = self.input_ports[in_port].vcs[vc_index]
        buffer.push(packet)
        self.buffer_flit_writes += packet.num_flits
        row = self._vc_state_rows[in_port]
        state = row[vc_index]
        if state is None:
            state = row[vc_index] = _VcState(
                self, in_port, vc_index, buffer, in_port in self._local_input_ports
            )
        if not state.active:
            state.active = True
            insort(self._active_vcs, state)
        # wake(0) with the same-cycle suppression test hoisted: several
        # packets commonly arrive within one cycle, and only the first needs
        # to schedule the arbitration round.
        if self._next_wake != self.sim.cycle:
            self.wake(0)

    # ------------------------------------------------------------------ #
    # Per-cycle switching
    # ------------------------------------------------------------------ #
    def _head_route(self, vc, packet):
        """Cached routing decision for the head packet of input VC ``vc``.

        Returns ``(out_index, out_port, downstream_vc_index, downstream_vc)``,
        recomputed only when the head packet changes (the cache is cleared
        by ``VirtualChannelBuffer.pop``).  The table lookup itself is cheap,
        but the downstream-port/VC resolution behind it is three attribute
        chases plus two dict lookups per head per tick, which adds up when a
        blocked head is re-examined across many arbitration rounds.
        """
        cached = vc.head_route
        if cached is not None and cached[0] is packet:
            return cached
        try:
            out_index = self.route_table[packet.dst]
        except KeyError:
            raise KeyError(f"{self.name}: no route to node {packet.dst}") from None
        out_port = self.output_ports[out_index]
        downstream_port = out_port.downstream.input_ports[out_port.downstream_port]
        downstream_vc_index = downstream_port.vc_index_for(packet.msg_class)
        cached = (
            packet,
            out_index,
            out_port,
            downstream_vc_index,
            downstream_port.vcs[downstream_vc_index],
        )
        vc.head_route = cached
        return cached

    def _tick(self) -> None:
        """One arbitration round, scheduling the *next* round event-driven.

        Unlike the original poll-every-cycle loop (which re-ticked whenever
        anything was buffered), a blocked router goes back to sleep and is
        re-awoken only by an event that can actually unblock it:

        * a head blocked on a busy output port wakes when ``busy_until``
          expires (earliest such expiry among blocked heads);
        * a head blocked on downstream credit marks its ``_VcState`` blocked
          and registers the state's credit listener with the downstream VC;
          the VC is *skipped* by subsequent rounds (reservations only shrink
          on ``pop``, so re-checking is provably futile) until the listener
          fires and clears the flag;
        * forwarding a packet wakes the router one cycle later, when the
          freshly exposed head (and any arbitration losers) may move.

        A fully credit-blocked router therefore schedules zero kernel
        events until credit returns.  Because the kernel drains a cycle's
        bucket as one batch, all wakes a router accumulates within a cycle
        (arrivals, credit returns) collapse into at most one extra
        arbitration round, run after the rest of the cycle's events.

        The loop body inlines ``VirtualChannelBuffer.peek``/``can_reserve``
        (this is the hottest code in any congested simulation); the inlined
        admission test must stay equivalent to ``can_reserve``.
        """
        now = self.sim.cycle
        next_busy_free = 0
        # Most rounds produce candidates for zero or one output port, so the
        # per-output dict is allocated lazily: the first contested output's
        # candidates accumulate in ``first_cands`` and the dict materialises
        # only when a second output shows up.  First-seen output order (and
        # hence arbitration order) is identical to the dict-only version.
        first_out = -1
        first_cands = None
        cands_by_out = None
        for state in self._active_vcs:
            if state.blocked:
                # Credit-blocked head: the downstream VC cannot have gained
                # space (only its pop can free any, and that fires
                # ``on_credit``), so skip the route/credit work — but keep
                # the busy-expiry contribution the full check would have
                # made, so the wake schedule (and hence event order) is
                # identical to re-examining the head.  ``blocked_port`` was
                # cached when the head blocked and stays valid: the head can
                # only change via a pop of this VC, which a blocked head
                # cannot win.
                busy_until = state.blocked_port.busy_until
                if busy_until > now and (
                    next_busy_free == 0 or busy_until < next_busy_free
                ):
                    next_busy_free = busy_until
                continue
            vc = state.vc
            queue = vc._queue
            if not queue:
                # Defensive only: _forward removes a VC from the active list
                # eagerly when it drains, so simulation never reaches this.
                continue
            packet = queue[0]
            cached = vc.head_route
            if cached is None or cached[0] is not packet:
                cached = self._head_route(vc, packet)
            busy_until = cached[2].busy_until
            if busy_until > now:
                if next_busy_free == 0 or busy_until < next_busy_free:
                    next_busy_free = busy_until
                continue
            downstream_vc = cached[4]
            flits = packet.num_flits
            reserved = downstream_vc._reserved_flits
            if reserved + flits > downstream_vc.capacity_flits and reserved:
                state.blocked = True
                state.blocked_port = cached[2]
                downstream_vc.wait_for_space(state.on_credit)
                continue
            out_index = cached[1]
            state.packet = packet
            if cands_by_out is not None:
                candidates = cands_by_out.get(out_index)
                if candidates is None:
                    cands_by_out[out_index] = [state]
                else:
                    candidates.append(state)
            elif first_out < 0:
                first_out = out_index
                first_cands = [state]
            elif out_index == first_out:
                first_cands.append(state)
            else:
                cands_by_out = {first_out: first_cands, out_index: [state]}
        forwarded = False
        if cands_by_out is None:
            if first_out >= 0:
                if len(first_cands) == 1:
                    # RoundRobinArbiter.choose's uncontended path, distilled:
                    # the lone candidate wins and becomes the rotation point.
                    winner = first_cands[0]
                    self._arbiters[first_out]._last_winner = winner.key
                else:
                    winner = self._arbiters[first_out].choose(first_cands)
                if winner is not None:
                    self._forward(winner, self.output_ports[first_out], now)
                    forwarded = True
        else:
            for out_index, candidates in cands_by_out.items():
                winner = self._arbiters[out_index].choose(candidates)
                if winner is not None:
                    self._forward(winner, self.output_ports[out_index], now)
                    forwarded = True
        if forwarded:
            self.wake(1)
        elif next_busy_free > now:
            self.wake(next_busy_free - now)

    def _forward(self, winner: _VcState, out_port: OutputPort, now: int) -> None:
        vc = winner.buffer
        packet = winner.packet
        # head_route is fresh: _tick validated it for this head this round,
        # and nothing pops this VC between candidate collection and here.
        cached = vc.head_route
        downstream_vc_index = cached[3]
        downstream_vc = cached[4]
        vc.pop()
        if not vc._queue:
            winner.active = False
            self._active_vcs.remove(winner)
        # Inlined VirtualChannelBuffer.reserve: _tick ran the admission test
        # for this head this round, and no other reservation can reach this
        # downstream VC in between (one forward per output port per round,
        # and distinct output ports feed distinct downstream input ports).
        downstream_vc._reserved_flits += packet.num_flits

        packet.hops += 1
        num_flits = packet.num_flits
        self.flits_switched += num_flits
        self.packets_switched += 1
        out_port.flits_sent += num_flits
        out_port.packets_sent += 1
        out_port.busy_until = now + num_flits

        self.sim.schedule_delivery(
            out_port.downstream,
            packet,
            out_port.downstream_port,
            downstream_vc_index,
            self.pipeline_latency + out_port.link_latency,
        )

    def _has_buffered_packets(self) -> bool:
        return any(not port.empty for port in self.input_ports)

    # ------------------------------------------------------------------ #
    @property
    def buffered_packets(self) -> int:
        return sum(len(vc) for port in self.input_ports for vc in port.vcs)
