"""Generic table-routed virtual-cut-through router.

A single router class covers every switching element in the paper: mesh
routers, flattened-butterfly routers, NOC-Out LLC routers, and (with two
ports and static-priority arbitration) the reduction/dispersion tree nodes.
The topology-specific network classes build routers, wire their ports and
fill their routing tables.

Timing model
------------
When a packet at the head of an input VC wins arbitration for a free output
port at cycle ``T`` it is removed from the input buffer, space is reserved
in the downstream VC, and the packet is delivered to the downstream input
buffer at ``T + pipeline_latency + link_latency``.  The output port is held
busy for ``num_flits`` cycles, which models serialization / bandwidth; a
final serialization charge is applied once at the ejection interface
(virtual cut-through behaviour).

Wake protocol
-------------
Routers are fully event-driven: an arbitration round runs only when an
event could let a packet move.  A router is woken by (1) a packet arriving
on one of its input VCs, (2) its own forward one cycle earlier (the next
head or an arbitration loser may now move), (3) a busy output port's
``busy_until`` expiring, or (4) a credit listener firing when a downstream
VC it found full releases a reservation (``VirtualChannelBuffer.pop``).  A
router whose heads are all credit-blocked therefore schedules **zero**
kernel events until credit returns; see ``docs/performance.md``.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.noc.arbiter import ArbitrationCandidate, Arbiter, RoundRobinArbiter
from repro.noc.buffer import InputPort
from repro.noc.message import MessageClass, Packet


class OutputPort:
    """An output port: a link to a downstream component's input port."""

    def __init__(
        self,
        name: str,
        downstream: "PacketSink",
        downstream_port: int,
        link_latency: int,
        link_length_mm: float = 0.0,
    ) -> None:
        self.name = name
        self.downstream = downstream
        self.downstream_port = downstream_port
        self.link_latency = link_latency
        self.link_length_mm = link_length_mm
        self.busy_until = 0
        self.flits_sent = 0
        self.packets_sent = 0

    def downstream_input(self) -> InputPort:
        return self.downstream.input_ports[self.downstream_port]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"OutputPort({self.name} -> {self.downstream!r}.{self.downstream_port})"


class PacketSink:
    """Protocol implemented by anything that can receive packets.

    Routers and network interfaces both expose ``input_ports`` and
    ``receive_packet``; this base class only documents the contract.
    """

    input_ports: List[InputPort]

    def receive_packet(self, packet: Packet, in_port: int, vc_index: int) -> None:
        raise NotImplementedError


class Router(Component, PacketSink):
    """A virtual-channel router with a per-destination routing table."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        pipeline_latency: int = 2,
        arbiter_factory: Callable[[], Arbiter] = RoundRobinArbiter,
    ) -> None:
        super().__init__(sim, name)
        if pipeline_latency < 0:
            raise ValueError("pipeline_latency must be non-negative")
        self.pipeline_latency = pipeline_latency
        self.input_ports: List[InputPort] = []
        self.output_ports: List[OutputPort] = []
        self.route_table: Dict[int, int] = {}
        self._arbiter_factory = arbiter_factory
        self._arbiters: List[Arbiter] = []
        self._local_input_ports: set = set()
        # One stable bound method reused as the credit listener, so
        # VirtualChannelBuffer.wait_for_space can deduplicate registrations
        # across ticks without allocating a fresh callable each time.
        self._credit_wake = self.wake
        # Occupied input VCs, kept sorted by (in_port, vc_index) so ticks
        # scan only buffers that actually hold packets (scan order — and
        # therefore arbitration candidate order — matches a full sweep).
        self._active_vcs: List[tuple] = []
        self._active_keys: set = set()
        # Activity counters consumed by the energy model.
        self.flits_switched = 0
        self.packets_switched = 0
        self.buffer_flit_writes = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input_port(self, port: InputPort, is_local: bool = False) -> int:
        """Attach an input port; returns its index."""
        self.input_ports.append(port)
        index = len(self.input_ports) - 1
        if is_local:
            self._local_input_ports.add(index)
        return index

    def add_output_port(
        self,
        name: str,
        downstream: PacketSink,
        downstream_port: int,
        link_latency: int,
        link_length_mm: float = 0.0,
    ) -> int:
        """Attach an output port; returns its index."""
        if self.pipeline_latency + link_latency < 1:
            raise ValueError("per-hop latency (pipeline + link) must be >= 1 cycle")
        port = OutputPort(name, downstream, downstream_port, link_latency, link_length_mm)
        self.output_ports.append(port)
        self._arbiters.append(self._arbiter_factory())
        return len(self.output_ports) - 1

    def set_route(self, dst_node: int, out_port: int) -> None:
        """Route packets destined to ``dst_node`` through ``out_port``."""
        if not 0 <= out_port < len(self.output_ports):
            raise ValueError(f"{self.name}: invalid output port {out_port}")
        self.route_table[dst_node] = out_port

    def route(self, packet: Packet) -> int:
        """Output port index for ``packet`` (table lookup)."""
        try:
            return self.route_table[packet.dst]
        except KeyError:
            raise KeyError(f"{self.name}: no route to node {packet.dst}") from None

    @property
    def radix(self) -> int:
        """Number of ports (max of inputs and outputs), used by area/energy."""
        return max(len(self.input_ports), len(self.output_ports))

    # ------------------------------------------------------------------ #
    # Packet reception
    # ------------------------------------------------------------------ #
    def receive_packet(self, packet: Packet, in_port: int, vc_index: int) -> None:
        buffer = self.input_ports[in_port].vcs[vc_index]
        buffer.push(packet)
        self.buffer_flit_writes += packet.num_flits
        key = (in_port, vc_index)
        if key not in self._active_keys:
            self._active_keys.add(key)
            insort(
                self._active_vcs,
                (in_port, vc_index, buffer, in_port in self._local_input_ports),
            )
        self.wake(0)

    # ------------------------------------------------------------------ #
    # Per-cycle switching
    # ------------------------------------------------------------------ #
    def _head_route(self, vc, packet):
        """Cached routing decision for the head packet of input VC ``vc``.

        Returns ``(out_index, out_port, downstream_vc_index, downstream_vc)``,
        recomputed only when the head packet changes (the cache is cleared
        by ``VirtualChannelBuffer.pop``).  The table lookup itself is cheap,
        but the downstream-port/VC resolution behind it is three attribute
        chases plus two dict lookups per head per tick, which adds up when a
        blocked head is re-examined across many arbitration rounds.
        """
        cached = vc.head_route
        if cached is not None and cached[0] is packet:
            return cached
        try:
            out_index = self.route_table[packet.dst]
        except KeyError:
            raise KeyError(f"{self.name}: no route to node {packet.dst}") from None
        out_port = self.output_ports[out_index]
        downstream_port = out_port.downstream.input_ports[out_port.downstream_port]
        downstream_vc_index = downstream_port.vc_index_for(packet.msg_class)
        cached = (
            packet,
            out_index,
            out_port,
            downstream_vc_index,
            downstream_port.vcs[downstream_vc_index],
        )
        vc.head_route = cached
        return cached

    def _tick(self) -> None:
        """One arbitration round, scheduling the *next* round event-driven.

        Unlike the original poll-every-cycle loop (which re-ticked whenever
        anything was buffered), a blocked router goes back to sleep and is
        re-awoken only by an event that can actually unblock it:

        * a head blocked on a busy output port wakes when ``busy_until``
          expires (earliest such expiry among blocked heads);
        * a head blocked on downstream credit registers the router's wake
          callback with the downstream VC, which fires on its next ``pop``;
        * forwarding a packet wakes the router one cycle later, when the
          freshly exposed head (and any arbitration losers) may move.

        A fully credit-blocked router therefore schedules zero kernel
        events until credit returns.
        """
        now = self.sim.cycle
        candidates_by_output: Dict[int, List[ArbitrationCandidate]] = {}
        next_busy_free = 0
        forwarded = False
        for in_index, vc_index, vc, is_local in self._active_vcs:
            packet = vc.peek()
            if packet is None:
                # Defensive only: _forward removes a VC from the active list
                # eagerly when it drains, so simulation never reaches this.
                continue
            cached = vc.head_route
            if cached is None or cached[0] is not packet:
                cached = self._head_route(vc, packet)
            out_index = cached[1]
            busy_until = cached[2].busy_until
            if busy_until > now:
                if next_busy_free == 0 or busy_until < next_busy_free:
                    next_busy_free = busy_until
                continue
            downstream_vc = cached[4]
            if not downstream_vc.can_reserve(packet.num_flits):
                downstream_vc.wait_for_space(self._credit_wake)
                continue
            candidates_by_output.setdefault(out_index, []).append(
                ArbitrationCandidate(in_index, vc_index, vc, packet, is_local)
            )
        for out_index, candidates in candidates_by_output.items():
            winner = self._arbiters[out_index].choose(candidates)
            if winner is not None:
                self._forward(winner, self.output_ports[out_index], now)
                forwarded = True
        if forwarded:
            self.wake(1)
        elif next_busy_free > now:
            self.wake(next_busy_free - now)

    def _collect_candidates(self, out_index: int) -> List[ArbitrationCandidate]:
        """Candidates competing for one output port (used by unit tests)."""
        candidates: List[ArbitrationCandidate] = []
        for in_index, in_port in enumerate(self.input_ports):
            for vc_index, vc in enumerate(in_port.vcs):
                packet = vc.peek()
                if packet is None:
                    continue
                if self.route(packet) != out_index:
                    continue
                downstream_vc = self.output_ports[out_index].downstream_input().vc_for(
                    packet.msg_class
                )
                if not downstream_vc.can_reserve(packet.num_flits):
                    continue
                candidates.append(
                    ArbitrationCandidate(
                        in_port=in_index,
                        vc_index=vc_index,
                        buffer=vc,
                        packet=packet,
                        is_local=in_index in self._local_input_ports,
                    )
                )
        return candidates

    def _forward(self, winner: ArbitrationCandidate, out_port: OutputPort, now: int) -> None:
        vc = winner.buffer
        packet = winner.packet
        _pkt, _out_index, _out_port, downstream_vc_index, downstream_vc = self._head_route(
            vc, packet
        )
        vc.pop()
        if vc.empty:
            self._active_keys.discard((winner.in_port, winner.vc_index))
            self._active_vcs.remove((winner.in_port, winner.vc_index, vc, winner.is_local))
        downstream_vc.reserve(packet.num_flits)

        packet.hops += 1
        num_flits = packet.num_flits
        self.flits_switched += num_flits
        self.packets_switched += 1
        out_port.flits_sent += num_flits
        out_port.packets_sent += 1
        out_port.busy_until = now + num_flits

        self.sim.schedule_delivery(
            out_port.downstream,
            packet,
            out_port.downstream_port,
            downstream_vc_index,
            self.pipeline_latency + out_port.link_latency,
        )

    def _has_buffered_packets(self) -> bool:
        return any(not port.empty for port in self.input_ports)

    # ------------------------------------------------------------------ #
    @property
    def buffered_packets(self) -> int:
        return sum(len(vc) for port in self.input_ports for vc in port.vcs)
