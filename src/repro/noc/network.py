"""Base class shared by every interconnect model."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.config.system import SystemConfig
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.stats import DEFAULT_RESERVOIR, Histogram
from repro.noc.interface import NetworkInterface
from repro.noc.message import Message, MessageClass, Packet
from repro.noc.router import Router

DeliveryCallback = Callable[[Message], None]


class Network(Component):
    """Common machinery for all interconnects.

    A network knows the set of node identifiers that can send/receive
    messages.  Endpoints register a delivery callback per node; the network
    owns one :class:`NetworkInterface` per node plus whatever routers the
    topology requires.  ``send`` is the single entry point used by the cache
    hierarchy.
    """

    #: Latency charged when source and destination share a network node
    #: (e.g. a core accessing the LLC slice in its own tile).
    LOCAL_DELIVERY_LATENCY = 1

    #: Transport backend actually built: ``"scalar"`` unless a mesh-family
    #: subclass wired the vectorized engine (``REPRO_TRANSPORT=vector``,
    #: see :mod:`repro.noc.vector`).  Both backends are bit-identical.
    transport = "scalar"

    def __init__(self, sim: Simulator, config: SystemConfig, name: str, node_ids: Iterable[int]) -> None:
        super().__init__(sim, name)
        self.system = config
        self.noc = config.noc
        self.tech = config.technology
        self.node_ids: List[int] = sorted(node_ids)
        self.routers: List[Router] = []
        self.interfaces: Dict[int, NetworkInterface] = {}
        self._delivery_callbacks: Dict[int, DeliveryCallback] = {}

        stats = self.stats
        self.messages_sent = stats.counter("messages_sent")
        self.messages_delivered = stats.counter("messages_delivered")
        self.local_deliveries = stats.counter("local_deliveries")
        self.flit_hops = stats.counter("flit_hops")
        self.latency_by_class = {
            cls: stats.histogram(f"latency_{cls.name.lower()}", keep_samples=False)
            for cls in MessageClass
        }
        self.hop_histogram = stats.histogram("hops", keep_samples=False)
        #: node -> tenant label; when set, every delivery is attributed to
        #: a tenant (by source node, else destination) and its latency
        #: recorded in a per-tenant reservoir histogram.
        self._tenant_of: Optional[Dict[int, str]] = None
        self._tenant_latency: Dict[str, Histogram] = {}

        for node_id in self.node_ids:
            self.interfaces[node_id] = self._create_interface(node_id)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _create_interface(self, node_id: int) -> NetworkInterface:
        return NetworkInterface(
            self.sim,
            f"{self.name}.ni{node_id}",
            node_id,
            self.noc.link_width_bits,
            on_delivery=self._on_delivery,
        )

    def register_endpoint(self, node_id: int, deliver: DeliveryCallback) -> None:
        """Register the callback invoked when a message reaches ``node_id``."""
        if node_id not in self.interfaces:
            raise KeyError(f"{self.name}: unknown node {node_id}")
        self._delivery_callbacks[node_id] = deliver

    def set_tenants(
        self, tenant_of: Mapping[int, str], reservoir: int = DEFAULT_RESERVOIR
    ) -> None:
        """Enable per-tenant delivery-latency attribution.

        ``tenant_of`` maps node ids (typically the cores each tenant owns)
        to tenant labels.  Deliveries are attributed source-first (a
        response heading back to a core counts for that core's tenant via
        its destination); unattributed traffic (e.g. LLC -> memory
        controller) is not recorded.  Histograms are reservoir-bounded so
        long runs cannot grow memory without bound.
        """
        self._tenant_of = dict(tenant_of)
        tenants = self.stats.group("tenants")
        self._tenant_latency = {}
        for label in dict.fromkeys(self._tenant_of.values()):
            self._tenant_latency[label] = tenants.histogram(
                f"latency[{label}]", keep_samples=True, reservoir=reservoir
            )

    def tenant_latency_histograms(self) -> Dict[str, Histogram]:
        """Per-tenant delivery-latency histograms (empty when untenanted)."""
        return dict(self._tenant_latency)

    def _record_tenant_latency(self, message: Message, latency: int) -> None:
        tenant_of = self._tenant_of
        label = tenant_of.get(message.src)
        if label is None:
            label = tenant_of.get(message.dst)
        if label is not None:
            self._tenant_latency[label].add(latency)

    # ------------------------------------------------------------------ #
    # Message transport
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Inject ``message`` into the network."""
        if message.dst not in self.interfaces:
            raise KeyError(f"{self.name}: unknown destination node {message.dst}")
        if message.src not in self.interfaces:
            raise KeyError(f"{self.name}: unknown source node {message.src}")
        message.created_cycle = self.sim.cycle
        self.messages_sent.add()
        if message.src == message.dst:
            self.local_deliveries.add()
            self.sim.schedule_call(
                self._deliver_local, (message,), self.LOCAL_DELIVERY_LATENCY
            )
            return
        self._inject(message)

    def _inject(self, message: Message) -> None:
        """Topology-specific injection; default goes through the source NI."""
        self.interfaces[message.src].inject(message)

    def _deliver_local(self, message: Message) -> None:
        self.messages_delivered.add()
        latency = self.sim.cycle - message.created_cycle
        self.latency_by_class[message.msg_class].add(latency)
        self.hop_histogram.add(0)
        if self._tenant_of is not None:
            self._record_tenant_latency(message, latency)
        self._dispatch(message)

    def _on_delivery(self, packet: Packet) -> None:
        message = packet.message
        self.messages_delivered.add()
        latency = self.sim.cycle - message.created_cycle
        self.latency_by_class[message.msg_class].add(latency)
        self.hop_histogram.add(packet.hops)
        self.flit_hops.add(packet.num_flits * packet.hops)
        if self._tenant_of is not None:
            self._record_tenant_latency(message, latency)
        self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        try:
            callback = self._delivery_callbacks[message.dst]
        except KeyError:
            raise RuntimeError(
                f"{self.name}: no endpoint registered for node {message.dst}"
            ) from None
        callback(message)

    # ------------------------------------------------------------------ #
    # Introspection for analysis / energy models
    # ------------------------------------------------------------------ #
    def mean_latency(self, msg_class: Optional[MessageClass] = None) -> float:
        """Mean delivery latency in cycles (optionally for one class)."""
        if msg_class is not None:
            return self.latency_by_class[msg_class].mean
        total = sum(h.total for h in self.latency_by_class.values())
        count = sum(h.count for h in self.latency_by_class.values())
        return total / count if count else 0.0

    def mean_hops(self) -> float:
        return self.hop_histogram.mean

    def activity(self) -> Dict[str, float]:
        """Aggregate switching/link activity used by the energy model."""
        link_flit_mm = 0.0
        buffer_flit_writes = 0
        crossbar_flit_ports = 0.0
        flits_switched = 0
        for router in self.routers:
            flits_switched += router.flits_switched
            buffer_flit_writes += router.buffer_flit_writes
            crossbar_flit_ports += router.flits_switched * router.radix
            for port in router.output_ports:
                link_flit_mm += port.flits_sent * port.link_length_mm
        flits_injected = sum(ni.flits_injected for ni in self.interfaces.values())
        return {
            "flits_injected": float(flits_injected),
            "flits_switched": float(flits_switched),
            "buffer_flit_writes": float(buffer_flit_writes),
            "crossbar_flit_ports": float(crossbar_flit_ports),
            "link_flit_mm": link_flit_mm,
            "flit_width_bits": float(self.noc.link_width_bits),
        }

    def drained(self) -> bool:
        """Whether no packets remain buffered anywhere in the network."""
        backlog = any(ni.injection_backlog for ni in self.interfaces.values())
        buffered = any(router.buffered_packets for router in self.routers)
        return not backlog and not buffered

    def _tick(self) -> None:  # pragma: no cover - networks do not tick themselves
        pass
