"""Tiled mesh interconnect (the paper's baseline, Figure 2).

Each grid coordinate has one 5-port router (N/S/E/W plus local); a hop
costs a two-stage router pipeline plus a single-cycle link, i.e. three
cycles at zero load, exactly as in Table 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config.system import SystemConfig
from repro.sim.kernel import Simulator
from repro.noc.buffer import InputPort
from repro.noc.network import Network
from repro.noc.router import Router
from repro.noc.topology import GridGeometry, tiled_grid_geometry
from repro.noc.vector import VectorRouter, VectorTransportEngine, resolve_transport

Coordinate = Tuple[int, int]

_DIRECTIONS = {
    "E": (1, 0),
    "W": (-1, 0),
    "S": (0, 1),
    "N": (0, -1),
}


class MeshNetwork(Network):
    """2-D mesh with XY dimension-order routing."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        node_coords: Dict[int, Coordinate],
        name: str = "mesh",
        geometry: Optional[GridGeometry] = None,
    ) -> None:
        super().__init__(sim, config, name, node_coords.keys())
        self.node_coords = dict(node_coords)
        # Concentrated variants pass their own (smaller, coarser) router
        # grid; the plain mesh derives one router per core tile.
        self.geometry: GridGeometry = geometry or tiled_grid_geometry(config)
        self._router_at: Dict[Coordinate, Router] = {}
        self._direction_port: Dict[Tuple[Coordinate, str], int] = {}
        self._eject_port: Dict[Tuple[Coordinate, int], int] = {}

        # Transport backend (REPRO_TRANSPORT): the vector engine batches
        # per-cycle arbitration across routers with bit-identical results;
        # see repro.noc.vector.  Scalar is the default and the reference.
        self.transport = resolve_transport()
        self._transport_engine = None
        self._router_cls = Router
        if self.transport == "vector":
            self._router_cls = VectorRouter
            self._transport_engine = VectorTransportEngine(sim)

        self._build_routers()
        self._build_mesh_links()
        self._attach_interfaces()
        self._build_routing_tables()
        if self._transport_engine is not None:
            self._transport_engine.finalize(self.routers, self.interfaces.values())

    # ------------------------------------------------------------------ #
    def _new_input_port(self, label: str) -> InputPort:
        return InputPort(
            num_vcs=self.noc.mesh_vcs_per_port,
            vc_depth_flits=self.noc.mesh_vc_depth_flits,
            name=label,
        )

    def _build_routers(self) -> None:
        for coord in self.geometry.all_coords():
            router = self._router_cls(
                self.sim,
                f"{self.name}.r{coord[0]}_{coord[1]}",
                pipeline_latency=self.noc.mesh_router_pipeline,
            )
            self._router_at[coord] = router
            self.routers.append(router)

    def _build_mesh_links(self) -> None:
        tile_mm = self.geometry.tile_width_mm
        for coord, router in self._router_at.items():
            for direction, (dx, dy) in _DIRECTIONS.items():
                neighbor_coord = (coord[0] + dx, coord[1] + dy)
                if neighbor_coord not in self._router_at:
                    continue
                neighbor = self._router_at[neighbor_coord]
                in_port = neighbor.add_input_port(
                    self._new_input_port(f"{neighbor.name}.in_{_opposite(direction)}")
                )
                out_port = router.add_output_port(
                    f"{direction}",
                    neighbor,
                    in_port,
                    link_latency=self.noc.mesh_link_latency,
                    link_length_mm=tile_mm,
                )
                self._direction_port[(coord, direction)] = out_port

    def _attach_interfaces(self) -> None:
        for node_id, coord in self.node_coords.items():
            router = self._router_at[coord]
            interface = self.interfaces[node_id]
            in_port = router.add_input_port(
                self._new_input_port(f"{router.name}.in_local{node_id}"), is_local=True
            )
            interface.attach_router(router, in_port)
            out_port = router.add_output_port(
                f"eject{node_id}", interface, 0, link_latency=0, link_length_mm=0.0
            )
            self._eject_port[(coord, node_id)] = out_port

    def _build_routing_tables(self) -> None:
        for coord, router in self._router_at.items():
            for node_id, dst_coord in self.node_coords.items():
                router.set_route(node_id, self._next_port(coord, dst_coord, node_id))

    def _next_port(self, coord: Coordinate, dst_coord: Coordinate, node_id: int) -> int:
        """XY routing: correct the column first, then the row."""
        if coord == dst_coord:
            return self._eject_port[(coord, node_id)]
        if dst_coord[0] > coord[0]:
            return self._direction_port[(coord, "E")]
        if dst_coord[0] < coord[0]:
            return self._direction_port[(coord, "W")]
        if dst_coord[1] > coord[1]:
            return self._direction_port[(coord, "S")]
        return self._direction_port[(coord, "N")]

    # ------------------------------------------------------------------ #
    def router_at(self, coord: Coordinate) -> Router:
        """The router at grid coordinate ``coord`` (used by tests)."""
        return self._router_at[coord]


def _opposite(direction: str) -> str:
    return {"E": "W", "W": "E", "N": "S", "S": "N"}[direction]
