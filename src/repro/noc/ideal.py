"""Idealized interconnect that exposes only wire delay (Figure 1).

Packets travel between tiles at the repeated-wire speed of the technology
(125 ps/mm), with zero routing, arbitration, switching or buffering delay
and no contention.  This is the "Ideal" curve of Figure 1.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config.system import SystemConfig
from repro.sim.kernel import Simulator
from repro.noc.message import Message, Packet
from repro.noc.network import Network
from repro.noc.topology import GridGeometry, tiled_grid_geometry

Coordinate = Tuple[int, int]


class IdealNetwork(Network):
    """Contention-free, wire-delay-only interconnect."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        node_coords: Dict[int, Coordinate],
        name: str = "ideal",
    ) -> None:
        super().__init__(sim, config, name, node_coords.keys())
        self.node_coords = dict(node_coords)
        self.geometry: GridGeometry = tiled_grid_geometry(config)

    def _inject(self, message: Message) -> None:
        packet = Packet(message, self.noc.link_width_bits, injected_cycle=self.sim.cycle)
        src_coord = self.node_coords[message.src]
        dst_coord = self.node_coords[message.dst]
        distance_mm = self.geometry.manhattan_mm(src_coord, dst_coord)
        wire_cycles = self.tech.wire_cycles(distance_mm)
        serialization = max(0, packet.num_flits - 1)
        packet.hops = self.geometry.manhattan_tiles(src_coord, dst_coord)
        self.interfaces[message.src].flits_injected += packet.num_flits
        self.sim.schedule(lambda p=packet: self._on_delivery(p), wire_cycles + serialization + 1)

    def drained(self) -> bool:
        """The ideal network buffers nothing."""
        return True
