"""Topology descriptors and grid geometry.

The area and energy models (Figures 8 and 9) need a *static* description of
each interconnect: how many routers of which radix, how many virtual
channels and buffer slots, and how many millimetres of repeated link.  The
``describe_*`` functions build those descriptions without instantiating a
simulator, so the area study is instantaneous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.config.system import SystemConfig


@dataclass(frozen=True)
class RouterSpec:
    """A group of identical routers."""

    count: int
    ports: int
    vcs_per_port: int
    vc_depth_flits: float
    flit_width_bits: int
    uses_sram_buffers: bool = False
    label: str = "router"

    @property
    def buffer_bits_per_router(self) -> float:
        return self.ports * self.vcs_per_port * self.vc_depth_flits * self.flit_width_bits

    @property
    def total_buffer_bits(self) -> float:
        return self.count * self.buffer_bits_per_router


@dataclass(frozen=True)
class LinkSpec:
    """A group of identical unidirectional links."""

    count: int
    length_mm: float
    width_bits: int
    label: str = "link"

    @property
    def total_wire_mm(self) -> float:
        return self.count * self.length_mm

    @property
    def total_bit_mm(self) -> float:
        return self.total_wire_mm * self.width_bits


@dataclass
class TopologyDescriptor:
    """Static inventory of a network: routers plus links."""

    name: str
    routers: List[RouterSpec] = field(default_factory=list)
    links: List[LinkSpec] = field(default_factory=list)

    @property
    def total_buffer_bits(self) -> float:
        return sum(spec.total_buffer_bits for spec in self.routers)

    @property
    def total_link_bit_mm(self) -> float:
        return sum(spec.total_bit_mm for spec in self.links)

    @property
    def num_routers(self) -> int:
        return sum(spec.count for spec in self.routers)


class GridGeometry:
    """Physical geometry of a cols x rows tiled chip."""

    def __init__(self, cols: int, rows: int, tile_width_mm: float) -> None:
        if cols < 1 or rows < 1:
            raise ValueError("grid dimensions must be positive")
        if tile_width_mm <= 0:
            raise ValueError("tile width must be positive")
        self.cols = cols
        self.rows = rows
        self.tile_width_mm = tile_width_mm

    def position_mm(self, coord: Tuple[int, int]) -> Tuple[float, float]:
        """Centre of the tile at grid coordinate ``(col, row)``."""
        col, row = coord
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise ValueError(f"coordinate {coord} outside {self.cols}x{self.rows} grid")
        return ((col + 0.5) * self.tile_width_mm, (row + 0.5) * self.tile_width_mm)

    def manhattan_mm(self, a: Tuple[int, int], b: Tuple[int, int]) -> float:
        ax, ay = self.position_mm(a)
        bx, by = self.position_mm(b)
        return abs(ax - bx) + abs(ay - by)

    def manhattan_tiles(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    @property
    def die_width_mm(self) -> float:
        return self.cols * self.tile_width_mm

    @property
    def die_height_mm(self) -> float:
        return self.rows * self.tile_width_mm

    def all_coords(self) -> Iterable[Tuple[int, int]]:
        for row in range(self.rows):
            for col in range(self.cols):
                yield (col, row)


def tiled_grid_geometry(config: SystemConfig) -> GridGeometry:
    """Geometry of the tiled (mesh / flattened-butterfly) organization."""
    cols, rows = config.mesh_dimensions
    return GridGeometry(cols, rows, config.tile_width_mm)


# --------------------------------------------------------------------------- #
# Static descriptors for the area model
# --------------------------------------------------------------------------- #
def describe_mesh(config: SystemConfig) -> TopologyDescriptor:
    """Mesh NoC inventory: 5-port routers plus nearest-neighbour links."""
    noc = config.noc
    geometry = tiled_grid_geometry(config)
    cols, rows = geometry.cols, geometry.rows
    routers = [
        RouterSpec(
            count=cols * rows,
            ports=5,
            vcs_per_port=noc.mesh_vcs_per_port,
            vc_depth_flits=noc.mesh_vc_depth_flits,
            flit_width_bits=noc.link_width_bits,
            uses_sram_buffers=False,
            label="mesh router",
        )
    ]
    horizontal = (cols - 1) * rows
    vertical = cols * (rows - 1)
    links = [
        LinkSpec(
            count=2 * (horizontal + vertical),
            length_mm=geometry.tile_width_mm,
            width_bits=noc.link_width_bits,
            label="mesh link",
        )
    ]
    return TopologyDescriptor("mesh", routers, links)


def describe_flattened_butterfly(config: SystemConfig) -> TopologyDescriptor:
    """2-D flattened butterfly inventory: 15-port routers, long links."""
    noc = config.noc
    geometry = tiled_grid_geometry(config)
    cols, rows = geometry.cols, geometry.rows
    ports = (cols - 1) + (rows - 1) + 1
    routers = [
        RouterSpec(
            count=cols * rows,
            ports=ports,
            vcs_per_port=noc.fbfly_vcs_per_port,
            vc_depth_flits=noc.fbfly_vc_depth_flits,
            flit_width_bits=noc.link_width_bits,
            uses_sram_buffers=True,
            label="flattened butterfly router",
        )
    ]
    links: List[LinkSpec] = []
    # Row links: for each row, one unidirectional link per ordered pair.
    span_counts: Dict[int, int] = {}
    for a in range(cols):
        for b in range(cols):
            if a != b:
                span_counts[abs(a - b)] = span_counts.get(abs(a - b), 0) + 1
    for span, count in sorted(span_counts.items()):
        links.append(
            LinkSpec(
                count=count * rows,
                length_mm=span * geometry.tile_width_mm,
                width_bits=noc.link_width_bits,
                label=f"row link ({span} tiles)",
            )
        )
    span_counts = {}
    for a in range(rows):
        for b in range(rows):
            if a != b:
                span_counts[abs(a - b)] = span_counts.get(abs(a - b), 0) + 1
    for span, count in sorted(span_counts.items()):
        links.append(
            LinkSpec(
                count=count * cols,
                length_mm=span * geometry.tile_width_mm,
                width_bits=noc.link_width_bits,
                label=f"column link ({span} tiles)",
            )
        )
    return TopologyDescriptor("flattened_butterfly", routers, links)


def describe_topology(config: SystemConfig) -> TopologyDescriptor:
    """Descriptor for ``config.noc.topology``, via the fabric registry.

    Thin dispatch through the fabric-plugin registry: the plugin registered
    under the config's topology key owns the static description, so a new
    fabric needs no edits here — see :mod:`repro.fabrics`.
    """
    from repro.scenarios.registry import fabric_for

    return fabric_for(config).describe(config)
