"""Arbitration policies for router output ports.

Two policies are used in the paper's designs:

* conventional routers (mesh, flattened butterfly, LLC network) use
  round-robin arbitration among the competing input VCs;
* the NOC-Out reduction/dispersion tree nodes use *static priority*
  arbitration, preferring network traffic over the local port and
  responses over requests (Section 4.1).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.noc.message import MessageClass, Packet
from repro.noc.buffer import VirtualChannelBuffer


@dataclass(**({"slots": True} if sys.version_info >= (3, 10) else {}))
class ArbitrationCandidate:
    """One input VC competing for an output port this cycle.

    Slotted (on Python >= 3.10): routers allocate one instance per ready
    head per arbitration round, which makes this one of the most frequently
    constructed objects in a congested simulation.
    """

    in_port: int
    vc_index: int
    buffer: VirtualChannelBuffer
    packet: Packet
    is_local: bool = False


class Arbiter:
    """Interface for output-port arbiters.

    ``candidates`` may be any objects carrying the
    :class:`ArbitrationCandidate` attributes (``in_port``, ``vc_index``,
    ``buffer``, ``packet``, ``is_local``); routers pass their per-VC state
    objects directly to avoid allocating a candidate per ready head.

    ``_last_winner`` is the round-robin rotation point.  It lives on the
    base class because ``Router._tick`` short-circuits the uncontended
    single-candidate case without calling :meth:`choose` and records the
    winner here — exactly what :class:`RoundRobinArbiter` would have done
    (stateless policies simply ignore the attribute).
    """

    _last_winner: Optional[tuple] = None

    def choose(self, candidates: Sequence[ArbitrationCandidate]) -> Optional[ArbitrationCandidate]:
        raise NotImplementedError


class RoundRobinArbiter(Arbiter):
    """Fair round-robin over (input port, VC) pairs."""

    def __init__(self) -> None:
        self._last_winner: Optional[tuple] = None

    def choose(self, candidates: Sequence[ArbitrationCandidate]) -> Optional[ArbitrationCandidate]:
        if not candidates:
            return None
        if len(candidates) == 1:
            # Uncontended port (the overwhelmingly common case): the single
            # candidate wins regardless of rotation state — skip the sort.
            winner = candidates[0]
            self._last_winner = (winner.in_port, winner.vc_index)
            return winner
        ordered = sorted(candidates, key=lambda c: (c.in_port, c.vc_index))
        if self._last_winner is None:
            winner = ordered[0]
        else:
            keys: List[tuple] = [(c.in_port, c.vc_index) for c in ordered]
            start = 0
            for i, key in enumerate(keys):
                if key > self._last_winner:
                    start = i
                    break
            winner = ordered[start]
        self._last_winner = (winner.in_port, winner.vc_index)
        return winner


class StaticPriorityArbiter(Arbiter):
    """Fixed-priority arbitration used by NOC-Out tree nodes.

    Priority order (highest first), from Section 4.1 of the paper:
    network responses, local responses, network requests, local requests.
    Snoop requests share the priority level of requests.
    """

    _CLASS_PRIORITY = {
        MessageClass.RESPONSE: 0,
        MessageClass.SNOOP: 1,
        MessageClass.REQUEST: 1,
    }

    def choose(self, candidates: Sequence[ArbitrationCandidate]) -> Optional[ArbitrationCandidate]:
        if not candidates:
            return None

        def priority(candidate: ArbitrationCandidate) -> tuple:
            class_rank = self._CLASS_PRIORITY[candidate.packet.msg_class]
            local_rank = 1 if candidate.is_local else 0
            return (class_rank, local_rank, candidate.in_port, candidate.vc_index)

        return min(candidates, key=priority)
