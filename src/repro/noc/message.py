"""Network messages, packets and flit accounting.

The coherence protocol produces :class:`Message` objects; the network layer
wraps each message in a :class:`Packet` whose flit count depends on the
link (flit) width.  Three message classes provide protocol-level deadlock
freedom exactly as in the paper: data requests, snoop requests, and
responses (data and snoop responses share a class).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Optional


class MessageClass(IntEnum):
    """Virtual-network / message classes used for deadlock avoidance."""

    REQUEST = 0
    SNOOP = 1
    RESPONSE = 2


#: Header size of every network message (address, ids, command), in bits.
HEADER_BITS = 128
#: Payload of a message carrying a full 64-byte cache block, in bits.
CACHE_BLOCK_BITS = 64 * 8


def control_message_bits() -> int:
    """Size of an address-only (control) message."""
    return HEADER_BITS


def data_message_bits(block_size_bytes: int = 64) -> int:
    """Size of a message carrying a cache block of ``block_size_bytes``."""
    return HEADER_BITS + block_size_bytes * 8


_NEXT_MESSAGE_ID = [0]


@dataclass
class Message:
    """A protocol-level message travelling between two network nodes.

    ``src`` and ``dst`` are *network node identifiers* (tiles, LLC tiles or
    memory controllers), assigned by :class:`repro.chip.system_map.SystemMap`.
    """

    src: int
    dst: int
    msg_class: MessageClass
    size_bits: int
    payload: Any = None
    created_cycle: int = 0
    message_id: int = field(default_factory=lambda: _next_message_id())

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError("message size must be positive")

    @property
    def carries_data(self) -> bool:
        """Whether this message carries a full cache block."""
        return self.size_bits > HEADER_BITS


def _next_message_id() -> int:
    _NEXT_MESSAGE_ID[0] += 1
    return _NEXT_MESSAGE_ID[0]


class Packet:
    """A message segmented into flits for a particular link width."""

    __slots__ = ("message", "num_flits", "injected_cycle", "hops", "flit_bits")

    def __init__(self, message: Message, link_width_bits: int, injected_cycle: int = 0) -> None:
        if link_width_bits <= 0:
            raise ValueError("link_width_bits must be positive")
        self.message = message
        self.flit_bits = link_width_bits
        self.num_flits = max(1, math.ceil(message.size_bits / link_width_bits))
        self.injected_cycle = injected_cycle
        self.hops = 0

    @property
    def msg_class(self) -> MessageClass:
        return self.message.msg_class

    @property
    def dst(self) -> int:
        return self.message.dst

    @property
    def src(self) -> int:
        return self.message.src

    def latency(self, delivered_cycle: int) -> int:
        """End-to-end latency measured from message creation."""
        return delivered_cycle - self.message.created_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Packet(id={self.message.message_id}, {self.src}->{self.dst}, "
            f"{self.msg_class.name}, flits={self.num_flits})"
        )


def reset_message_ids() -> None:
    """Reset the global message-id counter (used by tests for determinism)."""
    _NEXT_MESSAGE_ID[0] = 0
