"""Constructors for the six CloudSuite-style workload streams."""

from __future__ import annotations

from typing import Dict, List

from repro.config import presets
from repro.config.workload import WorkloadConfig
from repro.workloads.base import SyntheticWorkloadStream


def make_stream(
    workload: WorkloadConfig,
    core_id: int,
    num_cores: int,
    seed: int = 0,
    address_offset: int = 0,
) -> SyntheticWorkloadStream:
    """Create the synthetic stream for one core of ``workload``.

    ``address_offset`` shifts the whole synthetic address layout; the
    tenancy layer gives each co-located tenant a disjoint offset
    (:data:`repro.tenancy.TENANT_ADDRESS_STRIDE`).
    """
    return SyntheticWorkloadStream(
        workload,
        core_id=core_id,
        num_cores=num_cores,
        seed=seed,
        address_offset=address_offset,
    )


def workload_streams(
    workload: WorkloadConfig, num_cores: int, seed: int = 0
) -> List[SyntheticWorkloadStream]:
    """Streams for every active core of ``workload`` on an ``num_cores`` chip.

    Workloads that only scale to 16 cores (Web Frontend, Web Search) get
    streams for their active cores only; the remaining cores idle, exactly
    as in the paper's methodology (Section 5.3).
    """
    active = workload.scaled_cores(num_cores)
    return [make_stream(workload, core_id, active, seed=seed) for core_id in range(active)]


def all_workload_streams(num_cores: int, seed: int = 0) -> Dict[str, List[SyntheticWorkloadStream]]:
    """Streams for all six workloads keyed by workload name."""
    return {
        name: workload_streams(config, num_cores, seed=seed)
        for name, config in presets.all_workloads().items()
    }
