"""Synthetic scale-out workload generators.

The generators replace the CloudSuite binaries the paper runs under
full-system simulation.  They emit per-core streams of fetch blocks whose
statistical properties (instruction footprint, dataset size, sharing,
ILP/MLP) are controlled by :class:`repro.config.workload.WorkloadConfig`.
"""

from repro.workloads.base import FetchBlock, WorkloadStream, SyntheticWorkloadStream
from repro.workloads.cloudsuite import make_stream, workload_streams
from repro.workloads.traffic import BilateralTrafficGenerator, UniformRandomTrafficGenerator

__all__ = [
    "FetchBlock",
    "WorkloadStream",
    "SyntheticWorkloadStream",
    "make_stream",
    "workload_streams",
    "BilateralTrafficGenerator",
    "UniformRandomTrafficGenerator",
]
