"""Raw synthetic traffic generators for network-only experiments.

These generators exercise the NoC models directly (without cores or
caches): uniform-random traffic for classic NoC characterisation and a
bilateral core-to-cache pattern matching the traffic shape the paper
identifies as dominant in scale-out workloads (Section 3).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.noc.message import Message, MessageClass, control_message_bits, data_message_bits
from repro.noc.network import Network
from repro.sim.component import Component
from repro.sim.kernel import Simulator


class _TrafficGenerator(Component):
    """Common machinery: per-cycle Bernoulli injection from a set of sources."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        sources: Sequence[int],
        injection_rate: float,
        pick_destination: Callable[[int, random.Random], int],
        request_fraction: float = 0.5,
        seed: int = 0,
        register_endpoints: bool = True,
    ) -> None:
        super().__init__(sim, name)
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError(f"{name}: injection_rate must be within [0, 1], got {injection_rate}")
        if not 0.0 <= request_fraction <= 1.0:
            raise ValueError(
                f"{name}: request_fraction must be within [0, 1], got {request_fraction}"
            )
        self.network = network
        self.sources = list(sources)
        duplicates = sorted({n for n in self.sources if self.sources.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"{name}: duplicate source node(s) {duplicates} would inject "
                f"a silently doubled load; pass each source once"
            )
        self.injection_rate = injection_rate
        self.request_fraction = request_fraction
        self._pick_destination = pick_destination
        self.rng = random.Random(seed)
        self.messages_generated = self.stats.counter("messages_generated")
        self._running = False
        if register_endpoints:
            for node in self.sources:
                network.register_endpoint(node, self._sink)
            for node in set(self._all_destinations()) - set(self.sources):
                network.register_endpoint(node, self._sink)

    def _all_destinations(self) -> List[int]:
        return list(self.network.node_ids)

    def _sink(self, message: Message) -> None:
        """Traffic generators simply absorb delivered messages."""

    def start(self) -> None:
        self._running = True
        self.wake(0)

    def stop(self) -> None:
        self._running = False

    def _rate_this_cycle(self) -> float:
        """Injection probability for the current cycle.

        The base implementation returns the constant ``injection_rate``
        without touching any RNG, so existing generators keep their exact
        draw sequence.  Open-loop subclasses (:mod:`repro.tenancy.traffic`)
        override this to modulate load over time.
        """
        return self.injection_rate

    def _tick(self) -> None:
        if not self._running:
            return
        # This runs every cycle for every source, so hoist the per-draw
        # attribute lookups.  The RNG draw *sequence* is part of the model's
        # deterministic contract (MODEL_VERSION policy) and is unchanged.
        rng = self.rng
        rand = rng.random
        rate = self._rate_this_cycle()
        pick = self._pick_destination
        req_fraction = self.request_fraction
        send = self.network.send
        generated = self.messages_generated
        control_bits = control_message_bits()
        data_bits = data_message_bits()
        for source in self.sources:
            if rand() >= rate:
                continue
            destination = pick(source, rng)
            if destination == source:
                continue
            if rand() < req_fraction:
                msg_class, bits = MessageClass.REQUEST, control_bits
            else:
                msg_class, bits = MessageClass.RESPONSE, data_bits
            send(Message(src=source, dst=destination, msg_class=msg_class, size_bits=bits))
            generated.add()
        self.wake(1)


class UniformRandomTrafficGenerator(_TrafficGenerator):
    """Each source sends to a uniformly random other node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sources: Sequence[int],
        injection_rate: float,
        seed: int = 0,
    ) -> None:
        def pick(_source: int, rng: random.Random) -> int:
            return rng.choice(network.node_ids)

        super().__init__(
            sim, "uniform_traffic", network, sources, injection_rate, pick, seed=seed
        )


class BilateralTrafficGenerator(_TrafficGenerator):
    """Cores send only to LLC nodes, mirroring the bilateral access pattern."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        core_nodes: Sequence[int],
        llc_nodes: Sequence[int],
        injection_rate: float,
        seed: int = 0,
    ) -> None:
        llc_nodes = list(llc_nodes)
        if not llc_nodes:
            raise ValueError("bilateral traffic needs at least one LLC node")

        def pick(_source: int, rng: random.Random) -> int:
            return rng.choice(llc_nodes)

        super().__init__(
            sim, "bilateral_traffic", network, core_nodes, injection_rate, pick, seed=seed
        )
