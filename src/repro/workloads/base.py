"""Fetch-block streams: the unit of work consumed by the core model."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.config.workload import WorkloadConfig

#: (address, is_write) pairs attached to a fetch block.
DataAccess = Tuple[int, bool]

#: Address-space bases for the synthetic layout.  The regions are disjoint
#: so instruction and data blocks never alias.
INSTRUCTION_BASE = 0x1_0000_0000
PRIVATE_DATA_BASE = 0x10_0000_0000
SHARED_DATA_BASE = 0x80_0000_0000

#: Size of the per-core "hot" data region (stack, connection metadata) that
#: fits comfortably in the 32 KB L1-D.
HOT_DATA_BYTES = 16 * 1024
#: Size of the hot instruction region (tight loops) that fits in the L1-I.
HOT_INSTRUCTION_BYTES = 16 * 1024
#: Nominal instruction size used to advance the program counter.
INSTRUCTION_BYTES = 4


@dataclass
class FetchBlock:
    """A run of instructions between taken branches, plus its data accesses."""

    iaddr: int
    n_instructions: int
    data_accesses: List[DataAccess] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_instructions < 1:
            raise ValueError("a fetch block must contain at least one instruction")


class WorkloadStream:
    """Interface of per-core workload streams."""

    def next_block(self) -> FetchBlock:
        raise NotImplementedError

    def functional_references(self, count: int):
        """Yield ``(addr, is_instruction, is_write)`` tuples for warm-up."""
        raise NotImplementedError


class SyntheticWorkloadStream(WorkloadStream):
    """Parameterised synthetic stream modelling one core of a scale-out server.

    Instruction addresses walk a multi-megabyte footprint with a mixture of
    sequential fall-through, jumps into a small hot region (tight loops) and
    jumps into cold code; data accesses split between a small per-core hot
    region, a chip-wide shared region (the only source of coherence
    activity), and a vast per-core partition of the dataset with essentially
    no reuse.
    """

    def __init__(
        self,
        config: WorkloadConfig,
        core_id: int,
        num_cores: int,
        seed: int = 0,
        address_offset: int = 0,
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if not 0 <= core_id < num_cores:
            raise ValueError(f"core_id {core_id} out of range for {num_cores} cores")
        if address_offset < 0:
            raise ValueError(f"address_offset must be >= 0, got {address_offset}")
        self.config = config
        self.core_id = core_id
        self.num_cores = num_cores
        self.rng = random.Random((seed * 1_000_003 + core_id * 7919) & 0xFFFFFFFF)

        # All three region bases shift together by ``address_offset``, so
        # co-located tenants (repro.tenancy) live in disjoint address
        # spaces instead of accidentally sharing instruction/shared lines.
        # Offset 0 reproduces the historical layout bit-for-bit.
        self._instruction_base = INSTRUCTION_BASE + address_offset
        self._shared_base = SHARED_DATA_BASE + address_offset
        self._hot_instr_bytes = min(HOT_INSTRUCTION_BYTES, config.instruction_footprint_bytes)
        self._hot_data_bytes = HOT_DATA_BYTES
        self._dataset_per_core = max(
            config.dataset_bytes // num_cores, 16 * self._hot_data_bytes
        )
        self._private_base = (
            PRIVATE_DATA_BASE + address_offset + core_id * self._dataset_per_core
        )
        self._pc = self._instruction_base + self._random_aligned(
            config.instruction_footprint_bytes
        )
        self.blocks_generated = 0

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _random_aligned(self, span: int, alignment: int = INSTRUCTION_BYTES) -> int:
        return (self.rng.randrange(span) // alignment) * alignment

    def _next_instruction_address(self, block_bytes: int) -> int:
        config = self.config
        instruction_base = self._instruction_base
        address = self._pc
        if self.rng.random() < config.jump_probability:
            if self.rng.random() < config.hot_instruction_fraction:
                target = instruction_base + self._random_aligned(self._hot_instr_bytes)
            else:
                target = instruction_base + self._random_aligned(
                    config.instruction_footprint_bytes
                )
            address = target
        self._pc = instruction_base + (
            (address - instruction_base + block_bytes) % config.instruction_footprint_bytes
        )
        return address

    def _next_data_access(self) -> DataAccess:
        config = self.config
        roll = self.rng.random()
        is_write = self.rng.random() < config.write_fraction
        if roll < config.shared_fraction:
            addr = self._shared_base + self.rng.randrange(config.shared_region_bytes)
            return addr, is_write
        if roll < config.shared_fraction + config.data_reuse_fraction:
            addr = self._private_base + self.rng.randrange(self._hot_data_bytes)
            return addr, is_write
        addr = self._private_base + self.rng.randrange(self._dataset_per_core)
        return addr, is_write

    # ------------------------------------------------------------------ #
    # Stream interface
    # ------------------------------------------------------------------ #
    def next_block(self) -> FetchBlock:
        config = self.config
        mean = config.mean_block_instructions
        n_instructions = max(1, int(round(self.rng.expovariate(1.0 / mean))))
        n_instructions = min(n_instructions, int(mean * 4))
        iaddr = self._next_instruction_address(n_instructions * INSTRUCTION_BYTES)

        expected_accesses = config.loads_per_instruction * n_instructions
        n_accesses = int(expected_accesses)
        if self.rng.random() < (expected_accesses - n_accesses):
            n_accesses += 1
        accesses = [self._next_data_access() for _ in range(n_accesses)]
        self.blocks_generated += 1
        return FetchBlock(iaddr=iaddr, n_instructions=n_instructions, data_accesses=accesses)

    def functional_references(self, count: int):
        """Yield warm-up references without advancing simulated time."""
        produced = 0
        while produced < count:
            block = self.next_block()
            yield block.iaddr, True, False
            produced += 1
            for addr, is_write in block.data_accesses:
                yield addr, False, is_write
                produced += 1

    # ------------------------------------------------------------------ #
    @property
    def instruction_region(self) -> Tuple[int, int]:
        """(base, size) of the instruction footprint."""
        return self._instruction_base, self.config.instruction_footprint_bytes

    @property
    def shared_region(self) -> Tuple[int, int]:
        """(base, size) of the tenant-wide shared data region."""
        return self._shared_base, self.config.shared_region_bytes

    @property
    def private_region(self) -> Tuple[int, int]:
        """(base, size) of this core's private dataset partition."""
        return self._private_base, self._dataset_per_core
