"""Paper-vs-measured reporting: baselines, deltas, Markdown reports.

This package is the repo's answer to "how faithful is this reproduction?":

* :mod:`~repro.reporting.baselines` — the paper's published per-figure
  numbers digitized as data (one :class:`Baseline` table per reproduced
  figure/ablation, with units and digitization tolerances);
* :mod:`~repro.reporting.compare` — :func:`compare` pairs a baseline with
  measured values into a :class:`FigureComparison` (per-point
  absolute/relative error, within-tolerance verdicts, pass/fail summary);
* :mod:`~repro.reporting.render` — dependency-free Markdown rendering with
  ASCII bar charts, byte-stable for a given result cache;
* :mod:`~repro.reporting.figures` — name registry over the per-figure
  ``*_report()`` hooks in :mod:`repro.experiments`;
* :mod:`~repro.reporting.tables` — the plain-text :class:`ReportTable`
  (canonical home);
* :mod:`~repro.reporting.cli` — ``python -m repro.reporting``, which
  resolves every figure's sweep through the result cache (zero simulations
  when warm) and writes ``reports/REPRODUCTION.md``.

Typical usage::

    from repro.reporting import build_report

    report = build_report("fig7")
    print(report.comparison.status, report.comparison.max_rel_error)

or, end to end::

    PYTHONPATH=src python -m repro.reporting --figure fig7

Import-order invariant: the figure modules under :mod:`repro.experiments`
import this package at module level (for baselines and
:class:`FigureReport`), so nothing here may import ``repro.experiments``
eagerly — the registry in :mod:`~repro.reporting.figures` and the CLI
import the hooks lazily.
"""

from repro.reporting.baselines import BASELINES, Baseline, baseline, baseline_names
from repro.reporting.compare import (
    FigureComparison,
    FigureReport,
    PointDelta,
    compare,
)
from repro.reporting.figures import build_report, report_names
from repro.reporting.render import (
    ascii_bar_chart,
    delta_table,
    render_figure,
    render_report,
    status_table,
)
from repro.reporting.tables import ReportTable, format_float, markdown_table

__all__ = [
    "BASELINES",
    "Baseline",
    "FigureComparison",
    "FigureReport",
    "PointDelta",
    "ReportTable",
    "ascii_bar_chart",
    "baseline",
    "baseline_names",
    "build_report",
    "compare",
    "delta_table",
    "format_float",
    "markdown_table",
    "render_figure",
    "render_report",
    "report_names",
    "status_table",
]
