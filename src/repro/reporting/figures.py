"""Registry of per-figure report hooks.

Each reproduced figure/ablation module under :mod:`repro.experiments`
exposes a ``*_report()`` hook returning a
:class:`~repro.reporting.compare.FigureReport`; this module maps the
baseline names (``fig1``, ``fig4``, ... see
:mod:`repro.reporting.baselines`) to those hooks so the CLI and
``scripts/make_report.py`` can resolve figures by name.

The hooks are imported lazily: :mod:`repro.experiments` imports this
package at module level (for :class:`FigureReport` and the baselines), so
an eager import in the other direction would cycle.

:func:`build_report` forwards only the keyword arguments a hook actually
accepts — ``fig8`` is analytic and takes no run settings, the ablations
fix their workload — so one call site can drive every figure with the
same ``settings`` / ``jobs`` / ``executor`` / ``workload_names`` /
``core_counts`` knobs.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from repro.reporting.compare import FigureReport


def _fig1():
    from repro.experiments.fig1_scaling import figure1_report

    return figure1_report


def _fig4():
    from repro.experiments.fig4_snoops import figure4_report

    return figure4_report


def _fig7():
    from repro.experiments.fig7_performance import figure7_report

    return figure7_report


def _fig8():
    from repro.experiments.fig8_area import figure8_report

    return figure8_report


def _fig9():
    from repro.experiments.fig9_area_normalized import figure9_report

    return figure9_report


def _power():
    from repro.experiments.power_analysis import power_report

    return power_report


def _ablation_banking():
    from repro.experiments.ablations import llc_banking_report

    return llc_banking_report


def _ablation_arbitration():
    from repro.experiments.ablations import tree_arbitration_report

    return tree_arbitration_report


def _ablation_scaling():
    from repro.experiments.ablations import scaling_report

    return scaling_report


#: Figure name -> loader returning that figure's ``*_report()`` hook.
#: Order matches :data:`repro.reporting.baselines.BASELINES` (report order).
REPORTERS: Dict[str, Callable[[], Callable[..., FigureReport]]] = {
    "fig1": _fig1,
    "fig4": _fig4,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "power": _power,
    "ablation_banking": _ablation_banking,
    "ablation_arbitration": _ablation_arbitration,
    "ablation_scaling": _ablation_scaling,
}


def report_names() -> List[str]:
    """All reportable figure names, in report order."""
    return list(REPORTERS)


def build_report(figure: str, **kwargs) -> FigureReport:
    """Build ``figure``'s :class:`FigureReport`, forwarding applicable kwargs.

    ``kwargs`` may include ``settings``, ``jobs``, ``executor``,
    ``workload_names`` and ``core_counts``; anything the figure's hook does
    not accept is dropped (``None`` values are dropped too, so hook
    defaults stay in charge).
    """
    try:
        hook = REPORTERS[figure]()
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; available: {report_names()}"
        ) from None
    accepted = inspect.signature(hook).parameters
    applicable = {
        key: value
        for key, value in kwargs.items()
        if key in accepted and value is not None
    }
    return hook(**applicable)
