"""Entry point for ``python -m repro.reporting`` (see :mod:`repro.reporting.cli`)."""

import sys

from repro.reporting.cli import main

if __name__ == "__main__":
    sys.exit(main())
