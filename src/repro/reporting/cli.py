"""``python -m repro.reporting`` — generate the paper-vs-measured report.

Resolves each requested figure's ``*_spec()`` sweep through the result
cache: on a warm cache the whole report is pure post-processing (zero new
simulations — the executor's cache-hit counters prove it and are printed
at the end); on a cold cache the missing points are simulated at the
requested scale first.

Usage::

    PYTHONPATH=src python -m repro.reporting                    # all figures
    PYTHONPATH=src python -m repro.reporting --figure fig1      # one figure
    PYTHONPATH=src python -m repro.reporting --scale 0.1 \\
        --workloads "Web Search" --cores 4,8,16                 # smoke scale

The report lands in ``reports/REPRODUCTION.md`` (``--out`` to change) and
its content is byte-stable for a given cache + parameters, so regenerating
without code or cache changes is a no-op diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.engine import SweepExecutor, SweepStats
from repro.experiments.harness import RunSettings
from repro.reporting.compare import FigureReport
from repro.reporting.figures import build_report, report_names
from repro.reporting.render import render_report

#: Default output directory (relative to the working directory).
DEFAULT_OUT_DIR = "reports"
#: Report file name inside the output directory.
REPORT_FILENAME = "REPRODUCTION.md"


class CountingExecutor(SweepExecutor):
    """A :class:`SweepExecutor` that also accumulates stats across sweeps.

    ``last_stats`` is reset by every ``run_iter`` call, which hides the
    total cost of a multi-sweep report; ``total_stats`` keeps the running
    sums (and is what the CLI prints and the zero-re-simulation test
    asserts on).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.total_stats = SweepStats()

    def run_iter(self, points):
        before = self.last_stats
        try:
            yield from super().run_iter(points)
        finally:
            # Accumulate in a finally so an abandoned stream (consumer
            # breaks out of iter_results) still contributes what the base
            # class recorded — it keeps last_stats accurate on abandonment,
            # and total_stats must preserve that guarantee.
            stats = self.last_stats
            if stats is not before:  # run_iter installed a fresh SweepStats
                self.total_stats.cache_hits += stats.cache_hits
                self.total_stats.cache_misses += stats.cache_misses
                self.total_stats.simulations_run += stats.simulations_run


def generate(
    figures: Optional[Sequence[str]] = None,
    out_dir: str = DEFAULT_OUT_DIR,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    workload_names: Optional[Sequence[str]] = None,
    core_counts: Optional[Sequence[int]] = None,
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, object]:
    """Build the reports and write ``REPRODUCTION.md``.

    Returns ``{"path", "text", "reports", "stats"}`` — the written path,
    the report text, the per-figure :class:`FigureReport`\\ s, and the
    executor's accumulated :class:`SweepStats` (``stats`` is ``None`` when
    a caller-supplied executor without ``total_stats`` was used).
    """
    names = list(figures) if figures else report_names()
    unknown = [name for name in names if name not in report_names()]
    if unknown:
        raise KeyError(f"unknown figure(s) {unknown}; available: {report_names()}")
    settings = settings or RunSettings.from_env()
    executor = executor if executor is not None else CountingExecutor(jobs=jobs)

    reports: List[FigureReport] = [
        build_report(
            name,
            settings=settings,
            executor=executor,
            workload_names=list(workload_names) if workload_names else None,
            core_counts=tuple(core_counts) if core_counts else None,
        )
        for name in names
    ]

    parameters: Dict[str, object] = {
        "figures": ", ".join(names),
        "run windows": (
            f"warmup_references={settings.warmup_references}, "
            f"detailed_warmup_cycles={settings.detailed_warmup_cycles}, "
            f"measure_cycles={settings.measure_cycles}, seed={settings.seed}"
        ),
        "workloads": ", ".join(workload_names) if workload_names else "paper default",
    }
    if core_counts:
        parameters["core counts (fig1)"] = ", ".join(str(c) for c in core_counts)

    text = render_report(reports, parameters)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / REPORT_FILENAME
    path.write_text(text)
    return {
        "path": path,
        "text": text,
        "reports": reports,
        "stats": getattr(executor, "total_stats", None),
    }


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting",
        description="Generate the paper-vs-measured reproduction report.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        dest="figures",
        metavar="NAME",
        help=f"figure to report (repeatable; default: all of {report_names()})",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT_DIR, help="output directory (default: reports/)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "experiment scale for any points not in the cache (overrides "
            "REPRO_EXPERIMENT_SCALE; default: honour the environment)"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: REPRO_JOBS)"
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "serve results from the columnar store at DIR (repro.store) "
            "instead of the REPRO_CACHE_DIR cache; equivalent to "
            "REPRO_STORE=columnar REPRO_CACHE_DIR=DIR"
        ),
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset (default: the paper's six)",
    )
    parser.add_argument(
        "--cores",
        default=None,
        help="comma-separated Figure-1 core counts (default: 1,2,...,64)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list reportable figures and exit"
    )
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _parse_args(argv)
    if args.list:
        for name in report_names():
            print(name)
        return 0
    if args.scale is not None:
        if args.scale <= 0:
            print("--scale must be positive", file=sys.stderr)
            return 2
        settings = RunSettings().scaled(args.scale)
    else:
        settings = RunSettings.from_env()

    # Validate user-supplied names up front so typos exit cleanly with the
    # available options, while genuine programming errors deeper in the
    # figure hooks still surface as tracebacks.
    unknown_figures = [
        name for name in (args.figures or ()) if name not in report_names()
    ]
    if unknown_figures:
        print(
            f"unknown figure(s) {unknown_figures}; available: {report_names()}",
            file=sys.stderr,
        )
        return 2
    workloads = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else None
    )
    if workloads:
        from repro.scenarios import workload_names as registered_workloads

        unknown_workloads = [w for w in workloads if w not in registered_workloads()]
        if unknown_workloads:
            print(
                f"unknown workload(s) {unknown_workloads}; "
                f"available: {registered_workloads()}",
                file=sys.stderr,
            )
            return 2

    executor = None
    if args.store is not None:
        from repro.experiments.engine import ResultCache

        executor = CountingExecutor(
            jobs=args.jobs, cache=ResultCache(args.store, backend="columnar")
        )

    outcome = generate(
        figures=args.figures,
        out_dir=args.out,
        settings=settings,
        jobs=args.jobs,
        executor=executor,
        workload_names=workloads,
        core_counts=(
            [int(c) for c in args.cores.split(",") if c.strip()]
            if args.cores
            else None
        ),
    )
    stats = outcome["stats"]
    print(f"wrote {outcome['path']}")
    if stats is not None:
        print(
            f"cache hits: {stats.cache_hits}, misses: {stats.cache_misses}, "
            f"simulations run: {stats.simulations_run}"
        )
    return 0
