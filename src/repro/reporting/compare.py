"""Paper-vs-measured deltas: per-point errors and per-figure summaries.

:func:`compare` pairs a figure's :class:`~repro.reporting.baselines.Baseline`
with a flat ``{point key: measured value}`` mapping and produces a
:class:`FigureComparison` — one :class:`PointDelta` per baseline point
(absolute error, relative error, within-tolerance verdict) plus summary
statistics and an overall status:

``pass``
    Every baseline point was measured and landed inside the tolerance band.
``fail``
    At least one measured point fell outside the band.
``partial``
    All measured points are inside the band, but some baseline points have
    no measurement (e.g. a reduced-scale run covering fewer workloads).
``no-data``
    Nothing was measured (cold cache, or the figure was skipped).

Measured keys with no baseline counterpart are ignored — the report is a
statement about the paper's published numbers, and extra measured points
have nothing to be compared against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from repro.reporting.baselines import Baseline

#: Status constants (also the strings rendered in the report).
STATUS_PASS = "pass"
STATUS_FAIL = "fail"
STATUS_PARTIAL = "partial"
STATUS_NO_DATA = "no-data"


@dataclass(frozen=True)
class PointDelta:
    """One baseline point next to its measurement (if any).

    ``measured is None`` means the point was not measured (missing from the
    measured mapping); its errors and verdict are then ``None`` too.
    """

    key: str
    paper: float
    measured: Optional[float]
    unit: str

    @property
    def abs_error(self) -> Optional[float]:
        """``|measured - paper|`` in the baseline's unit."""
        if self.measured is None:
            return None
        return abs(self.measured - self.paper)

    @property
    def rel_error(self) -> Optional[float]:
        """Absolute error relative to the paper value (``None`` if paper=0)."""
        if self.measured is None or self.paper == 0:
            return None
        return abs(self.measured - self.paper) / abs(self.paper)

    def within(self, rel_tolerance: float, abs_tolerance: float) -> Optional[bool]:
        """Inside the band?  The boundary itself counts as inside.

        The comparisons use a hair of slack (:func:`math.isclose`) so a
        point sitting *exactly* on the tolerance boundary is not pushed
        outside by floating-point representation error (1.10 - 1.0 is a
        touch more than 0.1 in binary).
        """
        if self.measured is None:
            return None

        def at_most(error: float, bound: float) -> bool:
            return error <= bound or math.isclose(error, bound, rel_tol=1e-9)

        error = self.abs_error
        if at_most(error, abs_tolerance):
            return True
        return at_most(error, rel_tolerance * abs(self.paper))


@dataclass
class FigureComparison:
    """Every baseline point of one figure compared against measurements."""

    figure: str
    title: str
    quantity: str
    unit: str
    rel_tolerance: float
    abs_tolerance: float
    source: str
    deltas: List[PointDelta] = field(default_factory=list)
    notes: str = ""

    # -- per-point verdicts --------------------------------------------- #
    def verdict(self, delta: PointDelta) -> Optional[bool]:
        """``delta``'s within-tolerance verdict under this figure's band."""
        return delta.within(self.rel_tolerance, self.abs_tolerance)

    # -- summary statistics --------------------------------------------- #
    @property
    def n_points(self) -> int:
        """Baseline points in the figure."""
        return len(self.deltas)

    @property
    def n_measured(self) -> int:
        """Baseline points that have a measurement."""
        return sum(1 for d in self.deltas if d.measured is not None)

    @property
    def n_within(self) -> int:
        """Measured points inside the tolerance band."""
        return sum(1 for d in self.deltas if self.verdict(d))

    @property
    def max_rel_error(self) -> Optional[float]:
        """Worst relative error across measured points (``None`` if no data)."""
        errors = [d.rel_error for d in self.deltas if d.rel_error is not None]
        return max(errors) if errors else None

    @property
    def mean_rel_error(self) -> Optional[float]:
        """Mean relative error across measured points (``None`` if no data)."""
        errors = [d.rel_error for d in self.deltas if d.rel_error is not None]
        return sum(errors) / len(errors) if errors else None

    @property
    def status(self) -> str:
        """Overall verdict: pass / fail / partial / no-data (see module docs)."""
        if self.n_measured == 0:
            return STATUS_NO_DATA
        if any(self.verdict(d) is False for d in self.deltas):
            return STATUS_FAIL
        if self.n_measured < self.n_points:
            return STATUS_PARTIAL
        return STATUS_PASS


def compare(baseline: Baseline, measured: Mapping[str, float]) -> FigureComparison:
    """Compare ``measured`` values against ``baseline``, point by point.

    ``measured`` maps the baseline's point keys to measured values; missing
    keys become unmeasured :class:`PointDelta`\\ s (the figure then reads as
    ``partial`` at best), and extra keys are ignored.
    """
    deltas = [
        PointDelta(
            key=key,
            paper=paper,
            measured=measured.get(key),
            unit=baseline.unit,
        )
        for key, paper in baseline.values.items()
    ]
    return FigureComparison(
        figure=baseline.figure,
        title=baseline.title,
        quantity=baseline.quantity,
        unit=baseline.unit,
        rel_tolerance=baseline.rel_tolerance,
        abs_tolerance=baseline.abs_tolerance,
        source=baseline.source,
        deltas=deltas,
        notes=baseline.notes,
    )


@dataclass
class FigureReport:
    """One figure's full report: the comparison plus rendered extras.

    ``measured_table`` is the figure's existing console rendition (a
    :class:`~repro.reporting.tables.ReportTable` string) embedded in the
    Markdown report as a fenced block; ``notes`` carries run-specific
    caveats (reduced workload set, skipped points...), separate from the
    baseline's own digitization notes.
    """

    comparison: FigureComparison
    measured_table: str = ""
    notes: str = ""

    @property
    def figure(self) -> str:
        return self.comparison.figure

    @property
    def title(self) -> str:
        return self.comparison.title
