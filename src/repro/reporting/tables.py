"""Plain-text tables shared by the console renderers and the report layer.

This is the canonical home of :class:`ReportTable` (it moved here from
``repro.analysis.report`` when the reporting subsystem was introduced; the
re-export has since been retired).  The tables are deliberately
dependency-free — aligned monospace columns that read equally well on a
terminal and inside a fenced Markdown block.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_float(value: float, digits: int = 3) -> str:
    """Uniform float formatting used across benchmark and report output."""
    return f"{value:.{digits}f}"


class ReportTable:
    """A small aligned-column text table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        """Append one row; cell count must match the column count."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: Cell) -> str:
        if isinstance(cell, float):
            return format_float(cell)
        return str(cell)

    def render(self) -> str:
        """The table as aligned monospace text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def print_table(table: ReportTable) -> None:
    """Print a table with a leading/trailing blank line for readability."""
    print()
    print(table.render())
    print()


def rows_from_dict(mapping: dict) -> Iterable[tuple]:
    """Convenience: (key, value) rows sorted by key."""
    return sorted(mapping.items())


def markdown_table(columns: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render a GitHub-flavoured Markdown table (floats via :func:`format_float`)."""
    def fmt(cell: Cell) -> str:
        if isinstance(cell, float):
            return format_float(cell)
        return str(cell)

    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        cells = [fmt(cell) for cell in row]
        if len(cells) != len(columns):
            raise ValueError(f"expected {len(columns)} cells, got {len(cells)}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
