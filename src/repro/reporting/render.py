"""Render paper-vs-measured comparisons as Markdown with ASCII charts.

Everything here is dependency-free text generation: Markdown tables for
the per-point deltas, fenced monospace blocks for the bar charts and the
figures' existing console tables, and a repo-level status table that the
README embeds.  Output is **byte-stable** for a given set of inputs — no
timestamps, hostnames or float formatting that depends on locale — so two
report generations from the same result cache produce identical files
(CI relies on this, and so does reviewing report diffs).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.reporting.compare import FigureComparison, FigureReport
from repro.reporting.tables import format_float, markdown_table

#: Width of the ASCII bar area, in characters.
BAR_WIDTH = 36


def _fmt(value: Optional[float], digits: int = 3, suffix: str = "") -> str:
    if value is None:
        return "n/a"
    return format_float(value, digits) + suffix


def _fmt_percent(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    return format_float(100.0 * value, 1) + " %"


def ascii_bar_chart(comparison: FigureComparison, width: int = BAR_WIDTH) -> str:
    """Paper-vs-measured horizontal bars, two lines per point.

    Bars share one scale (the largest magnitude across paper and measured
    values), so relative heights read exactly like the published chart::

        Data Serving    paper    |#####                       | 0.600
                        measured |######                      | 0.642
    """
    values = [d.paper for d in comparison.deltas]
    values += [d.measured for d in comparison.deltas if d.measured is not None]
    scale = max((abs(v) for v in values), default=0.0)
    label_width = max((len(d.key) for d in comparison.deltas), default=0)

    def bar(value: Optional[float]) -> str:
        if value is None:
            return "(no data)".ljust(width + 2)
        filled = 0 if scale == 0 else round(abs(value) / scale * width)
        return "|" + ("#" * filled).ljust(width) + "|"

    lines: List[str] = []
    for delta in comparison.deltas:
        label = delta.key.ljust(label_width)
        pad = " " * label_width
        lines.append(f"{label}  paper    {bar(delta.paper)} {_fmt(delta.paper)}")
        measured = (
            f"{pad}  measured {bar(delta.measured)}"
            + (f" {_fmt(delta.measured)}" if delta.measured is not None else "")
        )
        lines.append(measured.rstrip())
    return "\n".join(lines)


def delta_table(comparison: FigureComparison) -> str:
    """The per-point Markdown delta table for one figure."""
    rows = []
    for delta in comparison.deltas:
        verdict = comparison.verdict(delta)
        rows.append(
            (
                delta.key,
                _fmt(delta.paper) + f" {delta.unit}",
                _fmt(delta.measured) + (f" {delta.unit}" if delta.measured is not None else ""),
                _fmt(delta.abs_error),
                _fmt_percent(delta.rel_error),
                "yes" if verdict else ("NO" if verdict is False else "n/a"),
            )
        )
    return markdown_table(
        ("Point", "Paper", "Measured", "Abs. error", "Rel. error", "Within tol."),
        rows,
    )


def _tolerance_phrase(comparison: FigureComparison) -> str:
    parts = []
    if comparison.abs_tolerance:
        parts.append(f"abs <= {_fmt(comparison.abs_tolerance)} {comparison.unit}")
    if comparison.rel_tolerance:
        parts.append(f"rel <= {_fmt_percent(comparison.rel_tolerance)}")
    return " or ".join(parts) if parts else "exact"


def render_figure(report: FigureReport) -> str:
    """One figure's Markdown section: status, deltas, chart, measured table."""
    comparison = report.comparison
    lines = [f"## {comparison.title}", ""]
    lines.append(
        f"**Status: {comparison.status}** — {comparison.n_within}/"
        f"{comparison.n_measured} measured points within tolerance "
        f"({_tolerance_phrase(comparison)}); {comparison.n_points} baseline "
        f"points ({comparison.quantity}, from {comparison.source})."
    )
    if comparison.max_rel_error is not None:
        lines.append(
            f"Relative error: mean {_fmt_percent(comparison.mean_rel_error)}, "
            f"max {_fmt_percent(comparison.max_rel_error)}."
        )
    lines.append("")
    lines.append(delta_table(comparison))
    lines.append("")
    chart = ascii_bar_chart(comparison)
    if chart:
        lines += ["```text", chart, "```", ""]
    if report.measured_table:
        lines += ["```text", report.measured_table.rstrip(), "```", ""]
    for note in (comparison.notes, report.notes):
        if note:
            lines += [f"*{note}*", ""]
    return "\n".join(lines).rstrip() + "\n"


def status_table(reports: Sequence[FigureReport]) -> str:
    """The fig-by-fig summary table (also embedded in the README)."""
    rows = []
    for report in reports:
        c = report.comparison
        rows.append(
            (
                f"`{c.figure}`",
                c.title,
                f"{c.n_within}/{c.n_measured} of {c.n_points}",
                _fmt_percent(c.max_rel_error),
                c.status,
            )
        )
    return markdown_table(
        ("Figure", "What the paper shows", "Within tolerance", "Max rel. error", "Status"),
        rows,
    )


def render_report(
    reports: Sequence[FigureReport],
    parameters: Optional[Mapping[str, object]] = None,
) -> str:
    """The full ``REPRODUCTION.md`` document.

    ``parameters`` records how the underlying sweeps were run (experiment
    scale, worker count, restricted workload set...) so a reader can judge
    how much weight the numbers carry.  Content is deterministic given the
    same cached results and parameters.
    """
    lines = [
        "# Paper-vs-measured reproduction report",
        "",
        "How close this reproduction's *measured* numbers land to the",
        "published values of \"NOC-Out: Microarchitecting a Scale-Out",
        "Processor\" (Lotfi-Kamran, Grot, Falsafi — MICRO 2012), figure by",
        "figure.  Baselines are digitized from the paper",
        "(`src/repro/reporting/baselines.py`); tolerances state how finely",
        "each chart could be read, not how close a behavioural model is",
        "expected to land.  Regenerate with `python scripts/make_report.py`",
        "(or `python -m repro.reporting`) — warm caches make it free.",
        "",
    ]
    if parameters:
        lines.append("Generation parameters:")
        lines.append("")
        for key, value in parameters.items():
            lines.append(f"- **{key}**: {value}")
        lines.append("")
    lines += ["## Status by figure", "", status_table(reports), ""]
    for report in reports:
        lines.append(render_figure(report))
    return "\n".join(lines).rstrip() + "\n"
