"""The paper's published per-figure numbers, digitized as data.

Each reproduced figure/ablation gets one :class:`Baseline`: a table of
``{point key: paper value}`` pairs with the unit, the source inside the
paper, and the *digitization tolerance* — how precisely the number could be
read off the printed chart (bar charts digitize to roughly half a minor
gridline; prose numbers are exact but usually rounded).  A measured point
counts as *within tolerance* when it lands inside either the absolute or
the relative band (see :mod:`repro.reporting.compare`).

Point keys are flat strings; multi-coordinate points join their parts with
``" / "`` (e.g. ``"Web Search / noc_out"``), and :meth:`Baseline.nested`
re-splits them into the nested-dict shapes the figure renderers use.  The
``PAPER_REFERENCE`` constants in the figure modules are derived from these
tables, so a digitization fix here propagates everywhere.

Qualitative claims (the ablations the paper argues in prose rather than in
a chart) are encoded as ratio-1.0 entries with a generous tolerance and a
``qualitative`` source marker; the report renders them like any other row
but flags the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

#: Separator joining multi-coordinate point keys.
KEY_SEPARATOR = " / "


@dataclass(frozen=True)
class Baseline:
    """One figure's digitized paper values plus their tolerance band.

    ``rel_tolerance`` and ``abs_tolerance`` together define the band: a
    measured value passes when ``|measured - paper|`` is at most
    ``abs_tolerance`` *or* at most ``rel_tolerance * |paper|``.  Both are
    digitization tolerances — how finely the published chart could be read
    — not claims about how close a behavioural model should land.
    """

    figure: str
    title: str
    quantity: str
    unit: str
    values: Mapping[str, float]
    rel_tolerance: float = 0.0
    abs_tolerance: float = 0.0
    source: str = ""
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"baseline {self.figure!r} has no values")
        if self.rel_tolerance < 0 or self.abs_tolerance < 0:
            raise ValueError(f"baseline {self.figure!r} tolerances must be >= 0")
        if self.rel_tolerance == 0 and self.abs_tolerance == 0:
            raise ValueError(
                f"baseline {self.figure!r} needs a digitization tolerance"
            )

    def keys(self) -> List[str]:
        """Point keys in declaration (figure) order."""
        return list(self.values)

    def value(self, key: str) -> float:
        """The paper value for ``key`` (KeyError lists what exists)."""
        try:
            return self.values[key]
        except KeyError:
            raise KeyError(
                f"baseline {self.figure!r} has no point {key!r}; "
                f"available: {list(self.values)}"
            ) from None

    def nested(self) -> Dict[str, Dict[str, float]]:
        """Two-level dict view, splitting keys on :data:`KEY_SEPARATOR`.

        Keys without a separator land under themselves with an empty inner
        key — use only on baselines with uniformly two-part keys.
        """
        table: Dict[str, Dict[str, float]] = {}
        for key, value in self.values.items():
            outer, _, inner = key.partition(KEY_SEPARATOR)
            table.setdefault(outer, {})[inner] = value
        return table


#: Figure 1 — per-core performance vs. core count, ideal vs. mesh fabric.
FIG1 = Baseline(
    figure="fig1",
    title="Figure 1: per-core performance scaling, ideal vs. mesh",
    quantity="mesh performance penalty vs. the ideal fabric at 64 cores",
    unit="%",
    values={"mesh penalty vs ideal @ 64 cores": 22.0},
    rel_tolerance=0.15,
    abs_tolerance=3.0,
    source="Figure 1 / Section 2.2",
    notes=(
        "The paper quotes the 64-core endpoint (~22 % lost to the mesh); "
        "the intermediate curve points are not digitized."
    ),
)

#: Figure 4 — percentage of LLC accesses that trigger a snoop message.
FIG4 = Baseline(
    figure="fig4",
    title="Figure 4: snoop-triggering LLC accesses",
    quantity="LLC accesses that trigger a snoop",
    unit="%",
    values={
        "Data Serving": 0.6,
        "MapReduce-C": 1.8,
        "MapReduce-W": 1.5,
        "SAT Solver": 2.6,
        "Web Frontend": 4.2,
        "Web Search": 1.6,
        "Mean": 2.0,
    },
    rel_tolerance=0.25,
    abs_tolerance=0.5,
    source="Figure 4",
)

#: Figure 7 — system performance normalised to the mesh baseline.
FIG7 = Baseline(
    figure="fig7",
    title="Figure 7: system performance normalised to mesh",
    quantity="throughput normalised to the mesh baseline",
    unit="x",
    values={
        "Data Serving / flattened_butterfly": 1.31,
        "Data Serving / noc_out": 1.27,
        "MapReduce-C / flattened_butterfly": 1.17,
        "MapReduce-C / noc_out": 1.17,
        "MapReduce-W / flattened_butterfly": 1.14,
        "MapReduce-W / noc_out": 1.14,
        "SAT Solver / flattened_butterfly": 1.12,
        "SAT Solver / noc_out": 1.12,
        "Web Frontend / flattened_butterfly": 1.19,
        "Web Frontend / noc_out": 1.19,
        "Web Search / flattened_butterfly": 1.07,
        "Web Search / noc_out": 1.10,
        "GMean / flattened_butterfly": 1.17,
        "GMean / noc_out": 1.17,
    },
    rel_tolerance=0.05,
    abs_tolerance=0.05,
    source="Figure 7 / Section 6.2",
)

#: Figure 8 — NoC area totals (the breakdown bars are not digitized).
FIG8 = Baseline(
    figure="fig8",
    title="Figure 8: NoC area",
    quantity="total NoC area",
    unit="mm2",
    values={
        "mesh": 3.5,
        "flattened_butterfly": 23.0,
        "noc_out": 2.5,
    },
    rel_tolerance=0.15,
    abs_tolerance=0.5,
    source="Figure 8 / Section 6.3",
)

#: Figure 9 — performance under NOC-Out's NoC area budget (geometric mean).
FIG9 = Baseline(
    figure="fig9",
    title="Figure 9: performance under a fixed NoC area budget",
    quantity="geometric-mean throughput normalised to the area-budgeted mesh",
    unit="x",
    values={
        "mesh": 1.0,
        "flattened_butterfly": 0.72,
        "noc_out": 1.19,
    },
    rel_tolerance=0.1,
    abs_tolerance=0.05,
    source="Figure 9 / Section 6.3",
)

#: Section 6.4 — NoC power averaged over the six workloads.
POWER = Baseline(
    figure="power",
    title="Section 6.4: NoC power",
    quantity="average NoC power across workloads",
    unit="W",
    values={
        "mesh": 1.8,
        "flattened_butterfly": 1.6,
        "noc_out": 1.3,
    },
    rel_tolerance=0.2,
    abs_tolerance=0.3,
    source="Section 6.4",
)

#: Section 4.3 — LLC banking: four cores per bank is nearly free.
ABLATION_BANKING = Baseline(
    figure="ablation_banking",
    title="Ablation: LLC banking (cores per LLC bank)",
    quantity="throughput at 4 cores/bank relative to 1 core/bank",
    unit="x",
    values={"4 cores/bank vs 1 core/bank": 1.0},
    abs_tolerance=0.03,
    source="qualitative (Section 4.3)",
    notes=(
        "The paper states that four cores per LLC bank performs within a "
        "couple of percent of one core per bank; no chart is given, so the "
        "baseline is the ratio 1.0 with that 'couple of percent' as the band."
    ),
)

#: Section 4.1 — tree arbitration: static priority ~ round robin.
ABLATION_ARBITRATION = Baseline(
    figure="ablation_arbitration",
    title="Ablation: reduction/dispersion-tree arbitration",
    quantity="round-robin throughput relative to static priority",
    unit="x",
    values={"round_robin vs static_priority": 1.0},
    abs_tolerance=0.05,
    source="qualitative (Section 4.1)",
    notes=(
        "Static priority is chosen for its single-cycle arbiters; the paper "
        "argues the policies perform comparably rather than charting them."
    ),
)

#: Section 7.1 — scaling beyond 64 cores: concentration and express links.
ABLATION_SCALING = Baseline(
    figure="ablation_scaling",
    title="Ablation: 128-core tree scaling (concentration, express links)",
    quantity="throughput relative to unmodified ('tall') trees at 128 cores",
    unit="x",
    values={
        "concentration x2 vs tall trees": 1.0,
        "express links vs tall trees": 1.0,
        "concentration + express vs tall trees": 1.0,
    },
    abs_tolerance=0.15,
    source="qualitative (Section 7.1)",
    notes=(
        "The paper proposes concentration and express links to keep tree "
        "depth in check at 128+ cores without charting the variants; the "
        "baseline only asserts the variants stay in the tall trees' band."
    ),
)

#: Every baseline, in the paper's figure order (also the report order).
BASELINES: Dict[str, Baseline] = {
    b.figure: b
    for b in (
        FIG1,
        FIG4,
        FIG7,
        FIG8,
        FIG9,
        POWER,
        ABLATION_BANKING,
        ABLATION_ARBITRATION,
        ABLATION_SCALING,
    )
}


def baseline(figure: str) -> Baseline:
    """The :class:`Baseline` for ``figure`` (KeyError lists what exists)."""
    try:
        return BASELINES[figure]
    except KeyError:
        raise KeyError(
            f"no baseline for figure {figure!r}; available: {list(BASELINES)}"
        ) from None


def baseline_names() -> List[str]:
    """All figures with a digitized baseline, in report order."""
    return list(BASELINES)
