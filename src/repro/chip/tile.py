"""Network endpoints: tiles that receive messages and dispatch them."""

from __future__ import annotations

from typing import Optional

from repro.cache.coherence import CacheRequest, MemoryRequest, Response, ResponseType, SnoopRequest
from repro.cache.directory import DirectoryController
from repro.cache.memory_controller import MemoryController
from repro.cpu.core_node import CoreNode
from repro.noc.message import Message
from repro.tenancy.traffic import TenantProbe

#: Response types consumed by the requesting core (everything else belongs
#: to the home directory).
_CORE_RESPONSES = (ResponseType.DATA, ResponseType.WB_ACK)


class Tile:
    """One network endpoint and the components living behind it.

    In the tiled organizations a tile holds a core *and* an LLC slice with
    its directory; in NOC-Out a tile holds either a core, an LLC tile (two
    banks plus directory), or a memory controller.  Messages delivered by
    the network are dispatched to the right component based on their
    protocol-level payload.
    """

    def __init__(
        self,
        node_id: int,
        core_node: Optional[CoreNode] = None,
        directory: Optional[DirectoryController] = None,
        memory_controller: Optional[MemoryController] = None,
    ) -> None:
        if core_node is None and directory is None and memory_controller is None:
            raise ValueError("a tile must contain at least one component")
        self.node_id = node_id
        self.core_node = core_node
        self.directory = directory
        self.memory_controller = memory_controller

    # ------------------------------------------------------------------ #
    def receive_message(self, message: Message) -> None:
        """Dispatch a delivered network message to the owning component."""
        payload = message.payload
        if isinstance(payload, CacheRequest):
            self._require(self.directory, "directory", payload).handle_request(payload)
        elif isinstance(payload, SnoopRequest):
            self._require(self.core_node, "core", payload).handle_snoop(payload)
        elif isinstance(payload, MemoryRequest):
            self._require(self.memory_controller, "memory controller", payload).handle_memory_request(
                payload
            )
        elif isinstance(payload, Response):
            if payload.resp_type in _CORE_RESPONSES:
                self._require(self.core_node, "core", payload).handle_response(payload)
            else:
                self._require(self.directory, "directory", payload).handle_response(payload)
        elif isinstance(payload, TenantProbe):
            # Open-loop tenant probes ride the fabric but never touch
            # cache state; hand them back to the owning generator.
            payload.sink(message)
        else:
            raise TypeError(f"tile {self.node_id}: unknown payload {type(payload).__name__}")

    def _require(self, component, kind: str, payload):
        if component is None:
            raise RuntimeError(
                f"tile {self.node_id} received a {type(payload).__name__} but has no {kind}"
            )
        return component

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = []
        if self.core_node is not None:
            parts.append("core")
        if self.directory is not None:
            parts.append("llc")
        if self.memory_controller is not None:
            parts.append("mc")
        return f"Tile(node={self.node_id}, {'+'.join(parts)})"
