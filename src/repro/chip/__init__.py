"""Chip assembly: wiring cores, caches, directories, MCs and the NoC."""

from repro.chip.system_map import SystemMap, TiledSystemMap, NocOutSystemMap, build_system_map
from repro.chip.tile import Tile
from repro.chip.chip import Chip, SimulationResults
from repro.chip.builder import build_chip

__all__ = [
    "SystemMap",
    "TiledSystemMap",
    "NocOutSystemMap",
    "build_system_map",
    "Tile",
    "Chip",
    "SimulationResults",
    "build_chip",
]
