"""System maps: node-id assignment, placement, and address interleaving.

A system map answers the questions the rest of the chip needs:

* which network node does core ``c`` live on?
* which network node is the home of address ``a`` (and which internal bank)?
* which memory controller services address ``a``?
* where does every node sit physically (for the network builders)?

Two layouts exist: the tiled layout shared by the mesh, flattened-butterfly
and ideal organizations (core + LLC slice + directory per tile), and the
segregated NOC-Out layout (core tiles plus a central row of LLC tiles).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.address import AddressMapper
from repro.config.cache import CacheConfig
from repro.config.system import SystemConfig


class SystemMap:
    """Interface shared by the tiled and NOC-Out layouts."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.num_cores = config.num_cores
        self.num_memory_controllers = config.num_memory_controllers

    # --- node identity -------------------------------------------------- #
    def core_node(self, core_id: int) -> int:
        raise NotImplementedError

    def llc_node(self, index: int) -> int:
        raise NotImplementedError

    def mc_node(self, index: int) -> int:
        raise NotImplementedError

    @property
    def llc_node_ids(self) -> List[int]:
        raise NotImplementedError

    @property
    def mc_node_ids(self) -> List[int]:
        return [self.mc_node(i) for i in range(self.num_memory_controllers)]

    @property
    def core_node_ids(self) -> List[int]:
        return [self.core_node(c) for c in range(self.num_cores)]

    # --- address mapping -------------------------------------------------- #
    def home_node(self, addr: int) -> int:
        raise NotImplementedError

    def mc_node_for(self, addr: int) -> int:
        raise NotImplementedError

    def llc_bank_configs(self) -> List[CacheConfig]:
        """Bank configurations of one LLC node."""
        raise NotImplementedError

    def active_core_ids(self, count: int) -> List[int]:
        """Which cores run a workload that only scales to ``count`` cores."""
        raise NotImplementedError

    def tenant_nodes(self, workload_map) -> "Dict[str, List[int]]":
        """Network nodes of each tenant's cores under ``workload_map``.

        Validates the map against this chip's core count and returns
        ``{tenant_label: [core node ids]}`` through :meth:`core_node`, so
        it works for any layout (tiled, NOC-Out, plugins) unchanged.
        """
        workload_map.validate_for(self.num_cores)
        labels = workload_map.tenant_labels()
        return {
            labels[index]: [
                self.core_node(core) for core in workload_map.tenant_cores(index)
            ]
            for index in range(len(workload_map.tenants))
        }


class TiledSystemMap(SystemMap):
    """Tiled layout: node ``i`` holds core ``i`` plus LLC slice ``i``.

    ``grid`` overrides the ``(columns, rows)`` placement grid; fabrics
    whose router grid differs from the per-core grid (e.g. the
    concentrated mesh, where several tiles share a coordinate) pass their
    own instead of deriving it from the core count.
    """

    def __init__(
        self, config: SystemConfig, grid: Optional[Tuple[int, int]] = None
    ) -> None:
        super().__init__(config)
        self.cols, self.rows = grid if grid is not None else config.mesh_dimensions
        self.mapper = AddressMapper(
            block_size=config.caches.block_size,
            num_llc_banks=config.num_cores,
            num_memory_channels=config.num_memory_controllers,
        )

    # --- node identity -------------------------------------------------- #
    def core_node(self, core_id: int) -> int:
        self._check_core(core_id)
        return core_id

    def llc_node(self, index: int) -> int:
        self._check_core(index)
        return index

    def mc_node(self, index: int) -> int:
        if not 0 <= index < self.num_memory_controllers:
            raise ValueError(f"memory controller index {index} out of range")
        return self.num_cores + index

    @property
    def llc_node_ids(self) -> List[int]:
        return list(range(self.num_cores))

    # --- address mapping -------------------------------------------------- #
    def home_node(self, addr: int) -> int:
        return self.mapper.home_bank(addr)

    def mc_node_for(self, addr: int) -> int:
        return self.mc_node(self.mapper.memory_channel(addr))

    def llc_bank_configs(self) -> List[CacheConfig]:
        return [self.config.caches.llc_bank_config(self.num_cores)]

    # --- placement -------------------------------------------------- #
    def tile_coord(self, node_id: int) -> Tuple[int, int]:
        """Grid coordinate of a tile node."""
        self._check_core(node_id)
        return (node_id % self.cols, node_id // self.cols)

    def mc_coords(self) -> List[Tuple[int, int]]:
        """Edge positions where the memory controllers attach."""
        candidates = [
            (0, self.rows // 2),
            (self.cols - 1, self.rows // 2),
            (self.cols // 2, 0),
            (self.cols // 2, self.rows - 1),
        ]
        coords = []
        for index in range(self.num_memory_controllers):
            col, row = candidates[index % len(candidates)]
            coords.append((min(col, self.cols - 1), min(row, self.rows - 1)))
        return coords

    def node_coords(self) -> Dict[int, Tuple[int, int]]:
        """Placement of every network node for the network builders."""
        coords = {node: self.tile_coord(node) for node in range(self.num_cores)}
        for index, coord in enumerate(self.mc_coords()):
            coords[self.mc_node(index)] = coord
        return coords

    def active_core_ids(self, count: int) -> List[int]:
        """The ``count`` tiles closest to the centre of the die (Section 5.3)."""
        count = min(count, self.num_cores)
        center = ((self.cols - 1) / 2.0, (self.rows - 1) / 2.0)
        by_distance = sorted(
            range(self.num_cores),
            key=lambda core: (
                abs(self.tile_coord(core)[0] - center[0])
                + abs(self.tile_coord(core)[1] - center[1]),
                core,
            ),
        )
        return sorted(by_distance[:count])

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core id {core_id} out of range")


class NocOutSystemMap(SystemMap):
    """NOC-Out layout: core nodes plus a central row of LLC tiles."""

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        noc = config.noc
        self.columns = noc.llc_tiles
        if config.num_cores % self.columns:
            raise ValueError("core count must divide evenly across LLC columns")
        self.core_rows = config.num_cores // self.columns
        self.banks_per_tile = noc.llc_banks_per_tile
        self.total_banks = noc.llc_banks
        self.mapper = AddressMapper(
            block_size=config.caches.block_size,
            num_llc_banks=self.total_banks,
            num_memory_channels=config.num_memory_controllers,
        )

    # --- node identity -------------------------------------------------- #
    def core_node(self, core_id: int) -> int:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core id {core_id} out of range")
        return core_id

    def llc_node(self, index: int) -> int:
        if not 0 <= index < self.columns:
            raise ValueError(f"LLC tile index {index} out of range")
        return self.num_cores + index

    def mc_node(self, index: int) -> int:
        if not 0 <= index < self.num_memory_controllers:
            raise ValueError(f"memory controller index {index} out of range")
        return self.num_cores + self.columns + index

    @property
    def llc_node_ids(self) -> List[int]:
        return [self.llc_node(i) for i in range(self.columns)]

    # --- address mapping -------------------------------------------------- #
    def home_node(self, addr: int) -> int:
        bank = self.mapper.home_bank(addr)
        return self.llc_node(bank // self.banks_per_tile)

    def mc_node_for(self, addr: int) -> int:
        return self.mc_node(self.mapper.memory_channel(addr))

    def llc_bank_configs(self) -> List[CacheConfig]:
        bank_config = self.config.caches.llc_bank_config(self.total_banks)
        return [bank_config for _ in range(self.banks_per_tile)]

    # --- placement -------------------------------------------------- #
    def core_position(self, core_id: int) -> Tuple[int, int]:
        """(column, core-row) of a core; rows count across both sides of the LLC."""
        return (core_id % self.columns, core_id // self.columns)

    def core_positions(self) -> Dict[int, Tuple[int, int]]:
        return {self.core_node(c): self.core_position(c) for c in range(self.num_cores)}

    def llc_columns(self) -> Dict[int, int]:
        return {self.llc_node(i): i for i in range(self.columns)}

    def mc_columns(self) -> Dict[int, int]:
        """Memory controllers split between the two edge LLC tiles."""
        columns = {}
        for index in range(self.num_memory_controllers):
            column = 0 if index < self.num_memory_controllers // 2 else self.columns - 1
            columns[self.mc_node(index)] = column
        return columns

    def cores_adjacent_to_llc(self, count: int) -> List[int]:
        """The ``count`` cores physically closest to the LLC row (Section 5.3).

        Used to place workloads that do not scale to the full core count.
        """
        by_distance = sorted(
            range(self.num_cores),
            key=lambda core: (
                abs(self.core_position(core)[1] - (self.core_rows - 1) / 2.0),
                self.core_position(core)[0],
            ),
        )
        return sorted(by_distance[:count])

    def active_core_ids(self, count: int) -> List[int]:
        """Core tiles adjacent to the LLC get the workload first (Section 5.3)."""
        return self.cores_adjacent_to_llc(min(count, self.num_cores))


def build_system_map(config: SystemConfig) -> SystemMap:
    """Factory selecting the layout matching the configured topology.

    Thin dispatch through the fabric-plugin registry: the plugin registered
    under the config's topology key owns the layout, so a new fabric needs
    no edits here — see :mod:`repro.fabrics`.
    """
    from repro.scenarios.registry import fabric_for

    return fabric_for(config).build_system_map(config)
