"""Factories assembling networks and chips from a :class:`SystemConfig`."""

from __future__ import annotations

from repro.config.noc import Topology
from repro.config.system import SystemConfig
from repro.core.nocout import NocOutNetwork
from repro.noc.flattened_butterfly import FlattenedButterflyNetwork
from repro.noc.ideal import IdealNetwork
from repro.noc.mesh import MeshNetwork
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.chip.system_map import NocOutSystemMap, SystemMap, TiledSystemMap


def build_network(sim: Simulator, config: SystemConfig, system_map: SystemMap) -> Network:
    """Instantiate the interconnect matching ``config.noc.topology``."""
    topology = config.noc.topology
    if topology == Topology.NOC_OUT:
        if not isinstance(system_map, NocOutSystemMap):
            raise TypeError("NOC-Out requires a NocOutSystemMap")
        return NocOutNetwork(
            sim,
            config,
            core_nodes=system_map.core_positions(),
            llc_nodes=system_map.llc_columns(),
            mc_nodes=system_map.mc_columns(),
        )
    if not isinstance(system_map, TiledSystemMap):
        raise TypeError(f"{topology.value} requires a TiledSystemMap")
    node_coords = system_map.node_coords()
    if topology == Topology.MESH:
        return MeshNetwork(sim, config, node_coords)
    if topology == Topology.FLATTENED_BUTTERFLY:
        return FlattenedButterflyNetwork(sim, config, node_coords)
    if topology == Topology.IDEAL:
        return IdealNetwork(sim, config, node_coords)
    raise ValueError(f"unknown topology {topology}")


def build_chip(config: SystemConfig) -> "repro.chip.chip.Chip":  # noqa: F821
    """Build a complete chip (cores, caches, NoC, memory) for ``config``."""
    from repro.chip.chip import Chip

    return Chip(config)
