"""Factories assembling networks and chips from a :class:`SystemConfig`.

Both factories are thin dispatches through the fabric-plugin registry
(:func:`repro.scenarios.registry.fabric_for`): the plugin registered under
the config's topology key owns network construction, so a new fabric needs
no edits here — see :mod:`repro.fabrics`.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.chip.system_map import SystemMap


def build_network(sim: Simulator, config: SystemConfig, system_map: SystemMap) -> Network:
    """Instantiate the interconnect matching ``config.noc.topology``."""
    from repro.scenarios.registry import fabric_for

    return fabric_for(config).build_network(sim, config, system_map)


def build_chip(config: SystemConfig) -> "repro.chip.chip.Chip":  # noqa: F821
    """Build a complete chip (cores, caches, NoC, memory) for ``config``."""
    from repro.chip.chip import Chip

    return Chip(config)
