"""Factories assembling networks and chips from a :class:`SystemConfig`.

Both factories are thin dispatches through the fabric-plugin registry
(:func:`repro.scenarios.registry.fabric_for`): the plugin registered under
the config's topology key owns network construction, so a new fabric needs
no edits here — see :mod:`repro.fabrics`.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.chip.system_map import SystemMap


def build_network(sim: Simulator, config: SystemConfig, system_map: SystemMap) -> Network:
    """Instantiate the interconnect matching ``config.noc.topology``.

    Transport selection (``REPRO_TRANSPORT``) happens inside the
    mesh-family network constructors; a vector request against a fabric
    without vector support falls back to scalar with a one-line warning
    (results are bit-identical either way).
    """
    import warnings

    from repro.scenarios.registry import fabric_for
    from repro.sim.soa import HAVE_NUMPY
    from repro.noc.vector import transport_mode

    network = fabric_for(config).build_network(sim, config, system_map)
    if (
        HAVE_NUMPY
        and transport_mode() == "vector"
        and getattr(network, "transport", "scalar") != "vector"
    ):
        warnings.warn(
            f"REPRO_TRANSPORT=vector: fabric {config.noc.topology!r} has no "
            "vectorized transport; using the scalar path",
            RuntimeWarning,
            stacklevel=2,
        )
    return network


def build_chip(config: SystemConfig, workload_map=None) -> "repro.chip.chip.Chip":  # noqa: F821
    """Build a complete chip (cores, caches, NoC, memory) for ``config``.

    ``workload_map`` (a :class:`repro.tenancy.WorkloadMap`) overrides the
    config's tenancy placement — a convenience for building one chip under
    several placements without rebuilding the config by hand.
    """
    from repro.chip.chip import Chip

    if workload_map is not None:
        config = config.with_workload_map(workload_map)
    return Chip(config)
