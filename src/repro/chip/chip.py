"""The full chip: cores, private caches, NUCA LLC, directory, NoC and DRAM.

:class:`Chip` is the main entry point of the library: build it from a
:class:`~repro.config.system.SystemConfig` (with a workload attached), call
:meth:`Chip.run_experiment`, and read the returned
:class:`SimulationResults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.directory import DirectoryController
from repro.cache.memory_controller import MemoryController
from repro.config.noc import topology_key
from repro.config.system import SystemConfig
from repro.cpu.core_node import CoreNode
from repro.noc.message import (
    Message,
    MessageClass,
    control_message_bits,
    data_message_bits,
)
from repro.sim.kernel import Simulator
from repro.workloads.cloudsuite import make_stream
from repro.chip.builder import build_network
from repro.chip.system_map import build_system_map
from repro.chip.tile import Tile


@dataclass
class SimulationResults:
    """Measurements collected over one timed simulation window."""

    workload: str
    topology: str
    num_cores: int
    active_cores: int
    cycles: int
    total_instructions: int
    per_core_instructions: Dict[int, int] = field(default_factory=dict)
    network_mean_latency: float = 0.0
    network_request_latency: float = 0.0
    network_response_latency: float = 0.0
    network_mean_hops: float = 0.0
    messages_delivered: int = 0
    llc_accesses: int = 0
    llc_hit_rate: float = 0.0
    snoop_rate: float = 0.0
    snoops_sent: int = 0
    memory_reads: int = 0
    l1i_miss_rate: float = 0.0
    l1d_miss_rate: float = 0.0
    l1i_mpki: float = 0.0
    bank_conflicts: int = 0
    network_activity: Dict[str, float] = field(default_factory=dict)
    #: Tenancy placement name ("" for homogeneous single-workload chips).
    placement: str = ""
    #: Tenant label -> count/mean/p50/p95/p99 of network delivery latency.
    #: Empty tenants carry count/mean only — a missing percentile key means
    #: "not measured", never a fabricated 0.0 tail.
    per_tenant_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form used by the experiment engine's result cache."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResults":
        """Rebuild results from :meth:`to_dict` output (or its JSON round-trip).

        JSON turns the integer keys of ``per_core_instructions`` into
        strings; they are converted back here.  Unknown keys are ignored so
        old cache entries with extra fields still load.
        """
        from dataclasses import fields as dataclass_fields

        known = {f.name for f in dataclass_fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        per_core = kwargs.get("per_core_instructions") or {}
        kwargs["per_core_instructions"] = {
            int(core): int(count) for core, count in per_core.items()
        }
        return cls(**kwargs)

    @property
    def throughput_ipc(self) -> float:
        """System throughput: committed instructions per cycle (paper's metric)."""
        return self.total_instructions / self.cycles if self.cycles else 0.0

    @property
    def per_core_ipc(self) -> float:
        """Average per-core IPC over the active cores (Figure 1's metric)."""
        if not self.active_cores:
            return 0.0
        return self.throughput_ipc / self.active_cores


class Chip:
    """A complete simulated chip for one (configuration, workload) pair."""

    def __init__(self, config: SystemConfig) -> None:
        self.workload_map = config.workload_map
        if config.workload is None and self.workload_map is None:
            raise ValueError("SystemConfig.workload must be set to build a chip")
        self.config = config
        self._tenant_workloads = self._resolve_tenant_workloads()
        # The headline workload: the config's own, else the first tenant's.
        self.workload = (
            config.workload if config.workload is not None else self._tenant_workloads[0]
        )
        self.sim = Simulator(config.seed)
        self.system_map = build_system_map(config)
        self.network = build_network(self.sim, config, self.system_map)

        if self.workload_map is None:
            self.active_core_ids: List[int] = self.system_map.active_core_ids(
                self.workload.scaled_cores(config.num_cores)
            )
        else:
            self.workload_map.validate_for(config.num_cores)
            self.active_core_ids = sorted(
                core for cores in self._tenant_active_cores() for core in cores
            )
        self.core_nodes: Dict[int, CoreNode] = {}
        self.directories: Dict[int, DirectoryController] = {}
        self.memory_controllers: Dict[int, MemoryController] = {}
        self.tiles: Dict[int, Tile] = {}
        self.tenant_traffic: Dict[str, "TenantTraffic"] = {}  # noqa: F821

        self._build_components()
        self._register_endpoints()
        self._build_tenant_overlay()
        self._started = False

    def _resolve_tenant_workloads(self):
        """WorkloadConfig per tenant of the map (empty list when untenanted)."""
        if self.workload_map is None:
            return []
        from repro.scenarios.registry import workload as workload_preset

        return [
            workload_preset(tenant.workload) for tenant in self.workload_map.tenants
        ]

    def _tenant_active_cores(self) -> List[List[int]]:
        """Per tenant: the cores that actually execute (scalability-limited).

        Each tenant's workload scales within *its own* core group, so a
        16-core-max workload co-located on a 64-core chip fills at most 16
        of its assigned cores — the same rule the homogeneous path applies
        chip-wide.
        """
        active: List[List[int]] = []
        for index, workload in enumerate(self._tenant_workloads):
            cores = self.workload_map.tenant_cores(index)
            active.append(cores[: workload.scaled_cores(len(cores))])
        return active

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _make_sender(self, src_node: int):
        network = self.network
        data_bits = data_message_bits(self.config.caches.block_size)
        ctrl_bits = control_message_bits()

        def send(dst_node: int, msg_class: MessageClass, payload, carries_data: bool) -> None:
            size = data_bits if carries_data else ctrl_bits
            network.send(
                Message(src=src_node, dst=dst_node, msg_class=msg_class, size_bits=size, payload=payload)
            )

        return send

    def _build_components(self) -> None:
        config = self.config
        system_map = self.system_map

        # Cores (only the active ones execute a stream).
        if self.workload_map is None:
            active = self.active_core_ids
            for rank, core_id in enumerate(active):
                node_id = system_map.core_node(core_id)
                stream = make_stream(self.workload, rank, len(active), seed=config.seed)
                self._add_core_node(core_id, node_id, self.workload, stream)
        else:
            from repro.tenancy.placement import TENANT_ADDRESS_STRIDE

            for index, cores in enumerate(self._tenant_active_cores()):
                workload = self._tenant_workloads[index]
                for rank, core_id in enumerate(cores):
                    node_id = system_map.core_node(core_id)
                    stream = make_stream(
                        workload,
                        rank,
                        len(cores),
                        seed=config.seed,
                        address_offset=index * TENANT_ADDRESS_STRIDE,
                    )
                    self._add_core_node(core_id, node_id, workload, stream)

        # LLC slices / tiles with their directories.
        for node_id in system_map.llc_node_ids:
            directory = DirectoryController(
                self.sim,
                f"dir{node_id}",
                node_id=node_id,
                bank_configs=system_map.llc_bank_configs(),
                mapper=system_map.mapper,
                send=self._make_sender(node_id),
                core_node_for=system_map.core_node,
                mc_node_for=system_map.mc_node_for,
            )
            self.directories[node_id] = directory

        # Memory controllers.
        for index in range(config.num_memory_controllers):
            node_id = system_map.mc_node(index)
            controller = MemoryController(
                self.sim,
                f"mc{index}",
                node_id=node_id,
                config=config.caches,
                send=self._make_sender(node_id),
            )
            self.memory_controllers[node_id] = controller

    def _add_core_node(self, core_id: int, node_id: int, workload, stream) -> None:
        self.core_nodes[core_id] = CoreNode(
            self.sim,
            f"core{core_id}",
            core_id=core_id,
            node_id=node_id,
            config=self.config,
            workload=workload,
            stream=stream,
            send=self._make_sender(node_id),
            home_node_for=self.system_map.home_node,
        )

    def _build_tenant_overlay(self) -> None:
        """Per-tenant network attribution plus open-loop probe generators."""
        workload_map = self.workload_map
        if workload_map is None:
            return
        from repro.tenancy.arrivals import make_arrival
        from repro.tenancy.matrices import MatrixContext, make_matrix
        from repro.tenancy.traffic import TenantTraffic

        system_map = self.system_map
        labels = workload_map.tenant_labels()
        tenant_active = self._tenant_active_cores()
        tenant_of = {
            system_map.core_node(core): labels[index]
            for index, cores in enumerate(tenant_active)
            for core in cores
        }
        self.network.set_tenants(tenant_of)

        llc_nodes = tuple(system_map.llc_node_ids)
        for index, tenant in enumerate(workload_map.tenants):
            if tenant.rate <= 0.0 or not tenant_active[index]:
                continue
            context = MatrixContext(
                destinations=llc_nodes,
                tenant_index=index,
                num_tenants=len(workload_map.tenants),
            )
            self.tenant_traffic[labels[index]] = TenantTraffic(
                self.sim,
                self.network,
                labels[index],
                sources=[system_map.core_node(core) for core in tenant_active[index]],
                arrival=make_arrival(tenant.arrival, tenant.rate),
                pick_destination=make_matrix(tenant.matrix, context),
                seed=(self.config.seed * 1_000_003 + 7919 * (index + 1)) & 0xFFFFFFFF,
            )

    def _register_endpoints(self) -> None:
        system_map = self.system_map
        core_by_node = {node.node_id: node for node in self.core_nodes.values()}

        for node_id in set(system_map.core_node_ids) | set(system_map.llc_node_ids):
            core_node = core_by_node.get(node_id)
            directory = self.directories.get(node_id)
            if core_node is None and directory is None:
                continue  # inactive core tile in the NOC-Out layout
            tile = Tile(node_id, core_node=core_node, directory=directory)
            self.tiles[node_id] = tile
            self.network.register_endpoint(node_id, tile.receive_message)

        for node_id, controller in self.memory_controllers.items():
            tile = Tile(node_id, memory_controller=controller)
            self.tiles[node_id] = tile
            self.network.register_endpoint(node_id, tile.receive_message)

    # ------------------------------------------------------------------ #
    # Warm-up
    # ------------------------------------------------------------------ #
    def warmup(self, references_per_core: int = 3000) -> None:
        """Functionally warm the caches and directory before timed simulation.

        The full instruction footprint is installed in the LLC (it fits in
        the 8 MB cache, mirroring the paper's warmed checkpoints), and each
        core replays a short reference stream to warm its private L1s and
        the shared-region directory state.
        """
        if not self.core_nodes:
            return
        block = self.config.caches.block_size

        # One footprint per tenant (homogeneous chips share a single
        # region); sorted so the fill order is deterministic.
        instruction_regions = sorted(
            {node.core.stream.instruction_region for node in self.core_nodes.values()}
        )
        for instr_base, instr_size in instruction_regions:
            for addr in range(instr_base, instr_base + instr_size, block):
                home = self.system_map.home_node(addr)
                self.directories[home].warm_fill(addr)

        for core_id, node in self.core_nodes.items():
            stream = node.core.stream
            shared_base, shared_size = stream.shared_region
            for addr, is_instruction, is_write in stream.functional_references(references_per_core):
                if is_instruction:
                    node.warm_instruction(addr)
                    continue
                shared = shared_base <= addr < shared_base + shared_size
                # Private lines that are ever written end up modified in steady
                # state; warming them writable avoids a long upgrade transient.
                node.warm_data(addr, writable=is_write or not shared)
                if shared:
                    home = self.system_map.home_node(addr)
                    self.directories[home].warm_fill(addr, sharer=core_id, writable=is_write)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def start_cores(self) -> None:
        """Begin executing the workload on every active core."""
        if self._started:
            return
        self._started = True
        for offset, node in enumerate(self.core_nodes.values()):
            node.core.start(delay=offset % 4)
        for generator in self.tenant_traffic.values():
            generator.start()

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        self.sim.run(cycles)

    def reset_statistics(self) -> None:
        """Zero all measurement state (called between warm-up and measurement)."""
        for node in self.core_nodes.values():
            node.reset_statistics()
        for directory in self.directories.values():
            directory.reset_statistics()
        for controller in self.memory_controllers.values():
            controller.stats.reset()
            controller.channel.requests = 0
            controller.channel.total_queue_cycles = 0.0
        for generator in self.tenant_traffic.values():
            generator.stats.reset()
        self.network.stats.reset()
        self.reset_network_activity()

    def reset_network_activity(self) -> None:
        """Zero the switching-activity counters used by the energy model."""
        for router in self.network.routers:
            router.flits_switched = 0
            router.packets_switched = 0
            router.buffer_flit_writes = 0
            for port in router.output_ports:
                port.flits_sent = 0
                port.packets_sent = 0
        for interface in self.network.interfaces.values():
            interface.flits_injected = 0
            interface.messages_injected = 0
            interface.messages_delivered = 0

    def run_experiment(
        self,
        warmup_references: int = 3000,
        detailed_warmup_cycles: int = 2000,
        measure_cycles: int = 8000,
    ) -> SimulationResults:
        """Warm up, run a timed warm window, then measure and return results."""
        self.warmup(warmup_references)
        self.start_cores()
        if detailed_warmup_cycles:
            self.sim.run(detailed_warmup_cycles)
        self.reset_statistics()
        self.sim.run(measure_cycles)
        return self.collect_results(measure_cycles)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def collect_results(self, cycles: int) -> SimulationResults:
        per_core_instructions = {
            core_id: int(node.core.instructions_committed.value)
            for core_id, node in self.core_nodes.items()
        }
        total_instructions = sum(per_core_instructions.values())

        llc_accesses = sum(d.llc_accesses.value for d in self.directories.values())
        llc_hits = sum(d.llc_hits.value for d in self.directories.values())
        snoop_triggers = sum(d.snoop_triggering_accesses.value for d in self.directories.values())
        snoops_sent = sum(d.snoops_sent.value for d in self.directories.values())
        bank_conflicts = sum(
            bank.busy_conflicts for d in self.directories.values() for bank in d.banks
        )
        memory_reads = sum(
            int(mc.requests_serviced.value) for mc in self.memory_controllers.values()
        )

        l1i_accesses = sum(n.l1i.accesses for n in self.core_nodes.values())
        l1i_misses = sum(n.l1i.misses for n in self.core_nodes.values())
        l1d_accesses = sum(n.l1d.accesses for n in self.core_nodes.values())
        l1d_misses = sum(n.l1d.misses for n in self.core_nodes.values())

        from repro.noc.message import MessageClass as MC

        placement = ""
        per_tenant_latency: Dict[str, Dict[str, float]] = {}
        workload_label = self.workload.name
        if self.workload_map is not None:
            from repro.analysis.metrics import tail_summary

            placement = self.workload_map.placement
            workload_label = self.workload_map.describe()
            per_tenant_latency = {
                label: tail_summary(histogram)
                for label, histogram in self.network.tenant_latency_histograms().items()
            }

        return SimulationResults(
            workload=workload_label,
            topology=topology_key(self.config.noc.topology),
            num_cores=self.config.num_cores,
            active_cores=len(self.active_core_ids),
            cycles=cycles,
            total_instructions=total_instructions,
            per_core_instructions=per_core_instructions,
            network_mean_latency=self.network.mean_latency(),
            network_request_latency=self.network.mean_latency(MC.REQUEST),
            network_response_latency=self.network.mean_latency(MC.RESPONSE),
            network_mean_hops=self.network.mean_hops(),
            messages_delivered=int(self.network.messages_delivered.value),
            llc_accesses=int(llc_accesses),
            llc_hit_rate=llc_hits / llc_accesses if llc_accesses else 0.0,
            snoop_rate=snoop_triggers / llc_accesses if llc_accesses else 0.0,
            snoops_sent=int(snoops_sent),
            memory_reads=memory_reads,
            l1i_miss_rate=l1i_misses / l1i_accesses if l1i_accesses else 0.0,
            l1d_miss_rate=l1d_misses / l1d_accesses if l1d_accesses else 0.0,
            l1i_mpki=(
                1000.0 * l1i_misses / total_instructions if total_instructions else 0.0
            ),
            bank_conflicts=int(bank_conflicts),
            network_activity=self.network.activity(),
            placement=placement,
            per_tenant_latency=per_tenant_latency,
        )
