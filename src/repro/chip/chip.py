"""The full chip: cores, private caches, NUCA LLC, directory, NoC and DRAM.

:class:`Chip` is the main entry point of the library: build it from a
:class:`~repro.config.system.SystemConfig` (with a workload attached), call
:meth:`Chip.run_experiment`, and read the returned
:class:`SimulationResults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.directory import DirectoryController
from repro.cache.memory_controller import MemoryController
from repro.config.noc import topology_key
from repro.config.system import SystemConfig
from repro.cpu.core_node import CoreNode
from repro.noc.message import (
    Message,
    MessageClass,
    control_message_bits,
    data_message_bits,
)
from repro.sim.kernel import Simulator
from repro.workloads.cloudsuite import make_stream
from repro.chip.builder import build_network
from repro.chip.system_map import build_system_map
from repro.chip.tile import Tile


@dataclass
class SimulationResults:
    """Measurements collected over one timed simulation window."""

    workload: str
    topology: str
    num_cores: int
    active_cores: int
    cycles: int
    total_instructions: int
    per_core_instructions: Dict[int, int] = field(default_factory=dict)
    network_mean_latency: float = 0.0
    network_request_latency: float = 0.0
    network_response_latency: float = 0.0
    network_mean_hops: float = 0.0
    messages_delivered: int = 0
    llc_accesses: int = 0
    llc_hit_rate: float = 0.0
    snoop_rate: float = 0.0
    snoops_sent: int = 0
    memory_reads: int = 0
    l1i_miss_rate: float = 0.0
    l1d_miss_rate: float = 0.0
    l1i_mpki: float = 0.0
    bank_conflicts: int = 0
    network_activity: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form used by the experiment engine's result cache."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResults":
        """Rebuild results from :meth:`to_dict` output (or its JSON round-trip).

        JSON turns the integer keys of ``per_core_instructions`` into
        strings; they are converted back here.  Unknown keys are ignored so
        old cache entries with extra fields still load.
        """
        from dataclasses import fields as dataclass_fields

        known = {f.name for f in dataclass_fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        per_core = kwargs.get("per_core_instructions") or {}
        kwargs["per_core_instructions"] = {
            int(core): int(count) for core, count in per_core.items()
        }
        return cls(**kwargs)

    @property
    def throughput_ipc(self) -> float:
        """System throughput: committed instructions per cycle (paper's metric)."""
        return self.total_instructions / self.cycles if self.cycles else 0.0

    @property
    def per_core_ipc(self) -> float:
        """Average per-core IPC over the active cores (Figure 1's metric)."""
        if not self.active_cores:
            return 0.0
        return self.throughput_ipc / self.active_cores


class Chip:
    """A complete simulated chip for one (configuration, workload) pair."""

    def __init__(self, config: SystemConfig) -> None:
        if config.workload is None:
            raise ValueError("SystemConfig.workload must be set to build a chip")
        self.config = config
        self.workload = config.workload
        self.sim = Simulator(config.seed)
        self.system_map = build_system_map(config)
        self.network = build_network(self.sim, config, self.system_map)

        self.active_core_ids: List[int] = self.system_map.active_core_ids(
            self.workload.scaled_cores(config.num_cores)
        )
        self.core_nodes: Dict[int, CoreNode] = {}
        self.directories: Dict[int, DirectoryController] = {}
        self.memory_controllers: Dict[int, MemoryController] = {}
        self.tiles: Dict[int, Tile] = {}

        self._build_components()
        self._register_endpoints()
        self._started = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _make_sender(self, src_node: int):
        network = self.network
        data_bits = data_message_bits(self.config.caches.block_size)
        ctrl_bits = control_message_bits()

        def send(dst_node: int, msg_class: MessageClass, payload, carries_data: bool) -> None:
            size = data_bits if carries_data else ctrl_bits
            network.send(
                Message(src=src_node, dst=dst_node, msg_class=msg_class, size_bits=size, payload=payload)
            )

        return send

    def _build_components(self) -> None:
        config = self.config
        system_map = self.system_map

        # Cores (only the active ones execute a stream).
        active = self.active_core_ids
        for rank, core_id in enumerate(active):
            node_id = system_map.core_node(core_id)
            stream = make_stream(self.workload, rank, len(active), seed=config.seed)
            core_node = CoreNode(
                self.sim,
                f"core{core_id}",
                core_id=core_id,
                node_id=node_id,
                config=config,
                workload=self.workload,
                stream=stream,
                send=self._make_sender(node_id),
                home_node_for=system_map.home_node,
            )
            self.core_nodes[core_id] = core_node

        # LLC slices / tiles with their directories.
        for node_id in system_map.llc_node_ids:
            directory = DirectoryController(
                self.sim,
                f"dir{node_id}",
                node_id=node_id,
                bank_configs=system_map.llc_bank_configs(),
                mapper=system_map.mapper,
                send=self._make_sender(node_id),
                core_node_for=system_map.core_node,
                mc_node_for=system_map.mc_node_for,
            )
            self.directories[node_id] = directory

        # Memory controllers.
        for index in range(config.num_memory_controllers):
            node_id = system_map.mc_node(index)
            controller = MemoryController(
                self.sim,
                f"mc{index}",
                node_id=node_id,
                config=config.caches,
                send=self._make_sender(node_id),
            )
            self.memory_controllers[node_id] = controller

    def _register_endpoints(self) -> None:
        system_map = self.system_map
        core_by_node = {node.node_id: node for node in self.core_nodes.values()}

        for node_id in set(system_map.core_node_ids) | set(system_map.llc_node_ids):
            core_node = core_by_node.get(node_id)
            directory = self.directories.get(node_id)
            if core_node is None and directory is None:
                continue  # inactive core tile in the NOC-Out layout
            tile = Tile(node_id, core_node=core_node, directory=directory)
            self.tiles[node_id] = tile
            self.network.register_endpoint(node_id, tile.receive_message)

        for node_id, controller in self.memory_controllers.items():
            tile = Tile(node_id, memory_controller=controller)
            self.tiles[node_id] = tile
            self.network.register_endpoint(node_id, tile.receive_message)

    # ------------------------------------------------------------------ #
    # Warm-up
    # ------------------------------------------------------------------ #
    def warmup(self, references_per_core: int = 3000) -> None:
        """Functionally warm the caches and directory before timed simulation.

        The full instruction footprint is installed in the LLC (it fits in
        the 8 MB cache, mirroring the paper's warmed checkpoints), and each
        core replays a short reference stream to warm its private L1s and
        the shared-region directory state.
        """
        if not self.core_nodes:
            return
        sample_node = next(iter(self.core_nodes.values()))
        block = self.config.caches.block_size

        instr_base, instr_size = sample_node.core.stream.instruction_region
        for addr in range(instr_base, instr_base + instr_size, block):
            home = self.system_map.home_node(addr)
            self.directories[home].warm_fill(addr)

        for core_id, node in self.core_nodes.items():
            stream = node.core.stream
            shared_base, shared_size = stream.shared_region
            for addr, is_instruction, is_write in stream.functional_references(references_per_core):
                if is_instruction:
                    node.warm_instruction(addr)
                    continue
                shared = shared_base <= addr < shared_base + shared_size
                # Private lines that are ever written end up modified in steady
                # state; warming them writable avoids a long upgrade transient.
                node.warm_data(addr, writable=is_write or not shared)
                if shared:
                    home = self.system_map.home_node(addr)
                    self.directories[home].warm_fill(addr, sharer=core_id, writable=is_write)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def start_cores(self) -> None:
        """Begin executing the workload on every active core."""
        if self._started:
            return
        self._started = True
        for offset, node in enumerate(self.core_nodes.values()):
            node.core.start(delay=offset % 4)

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        self.sim.run(cycles)

    def reset_statistics(self) -> None:
        """Zero all measurement state (called between warm-up and measurement)."""
        for node in self.core_nodes.values():
            node.reset_statistics()
        for directory in self.directories.values():
            directory.reset_statistics()
        for controller in self.memory_controllers.values():
            controller.stats.reset()
            controller.channel.requests = 0
            controller.channel.total_queue_cycles = 0.0
        self.network.stats.reset()
        self.reset_network_activity()

    def reset_network_activity(self) -> None:
        """Zero the switching-activity counters used by the energy model."""
        for router in self.network.routers:
            router.flits_switched = 0
            router.packets_switched = 0
            router.buffer_flit_writes = 0
            for port in router.output_ports:
                port.flits_sent = 0
                port.packets_sent = 0
        for interface in self.network.interfaces.values():
            interface.flits_injected = 0
            interface.messages_injected = 0
            interface.messages_delivered = 0

    def run_experiment(
        self,
        warmup_references: int = 3000,
        detailed_warmup_cycles: int = 2000,
        measure_cycles: int = 8000,
    ) -> SimulationResults:
        """Warm up, run a timed warm window, then measure and return results."""
        self.warmup(warmup_references)
        self.start_cores()
        if detailed_warmup_cycles:
            self.sim.run(detailed_warmup_cycles)
        self.reset_statistics()
        self.sim.run(measure_cycles)
        return self.collect_results(measure_cycles)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def collect_results(self, cycles: int) -> SimulationResults:
        per_core_instructions = {
            core_id: int(node.core.instructions_committed.value)
            for core_id, node in self.core_nodes.items()
        }
        total_instructions = sum(per_core_instructions.values())

        llc_accesses = sum(d.llc_accesses.value for d in self.directories.values())
        llc_hits = sum(d.llc_hits.value for d in self.directories.values())
        snoop_triggers = sum(d.snoop_triggering_accesses.value for d in self.directories.values())
        snoops_sent = sum(d.snoops_sent.value for d in self.directories.values())
        bank_conflicts = sum(
            bank.busy_conflicts for d in self.directories.values() for bank in d.banks
        )
        memory_reads = sum(
            int(mc.requests_serviced.value) for mc in self.memory_controllers.values()
        )

        l1i_accesses = sum(n.l1i.accesses for n in self.core_nodes.values())
        l1i_misses = sum(n.l1i.misses for n in self.core_nodes.values())
        l1d_accesses = sum(n.l1d.accesses for n in self.core_nodes.values())
        l1d_misses = sum(n.l1d.misses for n in self.core_nodes.values())

        from repro.noc.message import MessageClass as MC

        return SimulationResults(
            workload=self.workload.name,
            topology=topology_key(self.config.noc.topology),
            num_cores=self.config.num_cores,
            active_cores=len(self.active_core_ids),
            cycles=cycles,
            total_instructions=total_instructions,
            per_core_instructions=per_core_instructions,
            network_mean_latency=self.network.mean_latency(),
            network_request_latency=self.network.mean_latency(MC.REQUEST),
            network_response_latency=self.network.mean_latency(MC.RESPONSE),
            network_mean_hops=self.network.mean_hops(),
            messages_delivered=int(self.network.messages_delivered.value),
            llc_accesses=int(llc_accesses),
            llc_hit_rate=llc_hits / llc_accesses if llc_accesses else 0.0,
            snoop_rate=snoop_triggers / llc_accesses if llc_accesses else 0.0,
            snoops_sent=int(snoops_sent),
            memory_reads=memory_reads,
            l1i_miss_rate=l1i_misses / l1i_accesses if l1i_accesses else 0.0,
            l1d_miss_rate=l1d_misses / l1d_accesses if l1d_accesses else 0.0,
            l1i_mpki=(
                1000.0 * l1i_misses / total_instructions if total_instructions else 0.0
            ),
            bank_conflicts=int(bank_conflicts),
            network_activity=self.network.activity(),
        )
