"""Core node: a core plus its private L1 caches, MSHRs and protocol glue.

The core node turns L1 misses into coherence requests addressed to the
home LLC node, fills the L1s when data responses arrive, and services
snoops from the directory (invalidations and forwards), which is all the
coherence activity a core ever sees in the paper's directory protocol.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.address import AddressMapper
from repro.cache.coherence import (
    CacheRequest,
    CoherenceRequestType,
    Response,
    ResponseType,
    SnoopRequest,
    SnoopType,
)
from repro.cache.l1 import L1Cache
from repro.cache.mshr import MshrFile
from repro.cache.set_assoc import CacheLineState
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.cpu.core_model import CoreModel
from repro.noc.message import MessageClass
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.workloads.base import WorkloadStream

#: send(dst_node, msg_class, payload, carries_data)
SendFunction = Callable[[int, MessageClass, object, bool], None]


class CoreNode(Component):
    """One core tile's private-cache hierarchy and network endpoint logic."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        core_id: int,
        node_id: int,
        config: SystemConfig,
        workload: WorkloadConfig,
        stream: WorkloadStream,
        send: SendFunction,
        home_node_for: Callable[[int], int],
    ) -> None:
        super().__init__(sim, name)
        self.core_id = core_id
        self.node_id = node_id
        self.config = config
        self._send = send
        self._home_node_for = home_node_for

        caches = config.caches
        self.mapper = AddressMapper(block_size=caches.block_size)
        self.l1i = L1Cache(caches.l1i, f"{name}.l1i", is_instruction=True)
        self.l1d = L1Cache(caches.l1d, f"{name}.l1d", is_instruction=False)
        self.mshr = MshrFile(caches.mshr_entries, name=f"{name}.mshr")
        self.core = CoreModel(sim, f"{name}.core", core_id, config.core, workload, stream, self)

        stats = self.stats
        self.requests_sent = stats.counter("requests_sent")
        self.snoops_received = stats.counter("snoops_received")
        self.writebacks_sent = stats.counter("writebacks_sent")
        self.fill_latency = stats.histogram("fill_latency", keep_samples=False)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def block_address(self, addr: int) -> int:
        return self.mapper.block_address(addr)

    def _home(self, addr: int) -> int:
        return self._home_node_for(addr)

    # ------------------------------------------------------------------ #
    # Core-side API (called by the core timing model)
    # ------------------------------------------------------------------ #
    def access_instruction(self, addr: int) -> bool:
        """Instruction fetch: returns ``True`` on an L1-I hit."""
        if self.l1i.read(addr):
            return True
        block = self.block_address(addr)
        entry = self.mshr.lookup(block)
        if entry is not None:
            self.mshr.merge(block)
            return False
        self.mshr.allocate(block, is_instruction=True, wants_exclusive=False, issue_cycle=self.sim.cycle)
        self._issue_request(CoherenceRequestType.GETS, block, is_instruction=True)
        return False

    def probe_data(self, addr: int, is_write: bool) -> bool:
        """Data access lookup only: returns ``True`` on an L1-D hit."""
        if is_write:
            hit, _needs_upgrade = self.l1d.write(addr)
            return hit
        return self.l1d.read(addr)

    def issue_data_miss(self, addr: int, is_write: bool) -> None:
        """Issue the coherence request for a data miss (MSHRs merge duplicates)."""
        block = self.block_address(addr)
        entry = self.mshr.lookup(block)
        if entry is not None:
            self.mshr.merge(block, wants_exclusive=is_write)
            return
        self.mshr.allocate(
            block, is_instruction=False, wants_exclusive=is_write, issue_cycle=self.sim.cycle
        )
        req_type = CoherenceRequestType.GETX if is_write else CoherenceRequestType.GETS
        self._issue_request(req_type, block, is_instruction=False)

    def _issue_request(self, req_type: CoherenceRequestType, block: int, is_instruction: bool) -> None:
        request = CacheRequest(
            req_type=req_type,
            addr=block,
            requester_node=self.node_id,
            requester_core=self.core_id,
            is_instruction=is_instruction,
        )
        self.requests_sent.add()
        self._send(self._home(block), MessageClass.REQUEST, request, False)

    # ------------------------------------------------------------------ #
    # Network-side API (called by the endpoint dispatch)
    # ------------------------------------------------------------------ #
    def handle_response(self, response: Response) -> None:
        """Data fills and writeback acknowledgements from the directory."""
        if response.resp_type == ResponseType.WB_ACK:
            return
        if response.resp_type != ResponseType.DATA:
            raise RuntimeError(f"{self.name}: unexpected response {response.resp_type}")
        block = self.block_address(response.addr)
        entry = self.mshr.lookup(block)
        if entry is not None:
            self.fill_latency.add(self.sim.cycle - entry.issue_cycle)
            self.mshr.release(block)
        if response.is_instruction:
            self.l1i.fill(block, writable=False)
            self.core.ifetch_ready()
            return
        victim = self.l1d.fill(block, writable=response.grants_exclusive)
        self._writeback_victim(victim)
        self.core.data_ready(block)

    def handle_snoop(self, snoop: SnoopRequest) -> None:
        """Invalidations and forwards from a home directory."""
        self.snoops_received.add()
        block = self.block_address(snoop.addr)
        if snoop.snoop_type == SnoopType.INVALIDATE:
            self.l1d.snoop_invalidate(block)
            self.l1i.snoop_invalidate(block)
            reply = Response(ResponseType.INV_ACK, block, target_core=self.core_id)
            self._send(snoop.home_node, MessageClass.RESPONSE, reply, False)
            return
        if snoop.snoop_type == SnoopType.FORWARD:
            self.l1d.snoop_downgrade(block)
        elif snoop.snoop_type == SnoopType.FORWARD_INV:
            self.l1d.snoop_invalidate(block)
        reply = Response(ResponseType.FWD_DATA, block, target_core=self.core_id)
        self._send(snoop.home_node, MessageClass.RESPONSE, reply, True)

    def _writeback_victim(self, victim: Optional[tuple]) -> None:
        if victim is None:
            return
        victim_block, state = victim
        if state != CacheLineState.MODIFIED:
            return
        request = CacheRequest(
            req_type=CoherenceRequestType.PUTM,
            addr=victim_block,
            requester_node=self.node_id,
            requester_core=self.core_id,
        )
        self.writebacks_sent.add()
        self._send(self._home(victim_block), MessageClass.REQUEST, request, True)

    # ------------------------------------------------------------------ #
    # Warm-up and statistics
    # ------------------------------------------------------------------ #
    def warm_instruction(self, addr: int) -> None:
        self.l1i.array.insert(self.block_address(addr), CacheLineState.SHARED)

    def warm_data(self, addr: int, writable: bool = False) -> None:
        state = CacheLineState.MODIFIED if writable else CacheLineState.SHARED
        self.l1d.array.insert(self.block_address(addr), state)

    def reset_statistics(self) -> None:
        self.stats.reset()
        self.core.reset_statistics()
        for cache in (self.l1i, self.l1d):
            cache.read_hits = 0
            cache.read_misses = 0
            cache.write_hits = 0
            cache.write_misses = 0
            cache.upgrade_misses = 0
            cache.snoop_invalidations = 0
            cache.snoop_downgrades = 0
            cache.array.hits = 0
            cache.array.misses = 0
            cache.array.evictions = 0

    def _tick(self) -> None:  # pragma: no cover - event driven, never ticks
        pass
