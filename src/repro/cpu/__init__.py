"""Core models: trace-driven timing cores and their cache-side glue logic."""

from repro.cpu.core_model import CoreModel
from repro.cpu.core_node import CoreNode

__all__ = ["CoreModel", "CoreNode"]
