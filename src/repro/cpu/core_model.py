"""Trace-driven core timing model (ARM Cortex-A15-like).

The core consumes *fetch blocks* produced by a synthetic workload stream.
Each block is a run of instructions between taken branches together with
its data accesses.  The timing rules mirror the behaviour the paper relies
on:

* an L1-I miss stalls the core until the fill returns from the LLC (the key
  sensitivity that makes scale-out workloads NoC-latency bound);
* data misses overlap up to the workload's memory-level parallelism;
* otherwise instructions retire at the core's effective issue width.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Set

from repro.config.core import CoreConfig
from repro.config.workload import WorkloadConfig
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.workloads.base import FetchBlock, WorkloadStream


class CoreModel(Component):
    """One core executing a synthetic instruction/data stream."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        core_id: int,
        core_config: CoreConfig,
        workload_config: WorkloadConfig,
        stream: WorkloadStream,
        node: "repro.cpu.core_node.CoreNode",  # noqa: F821 - documented circular link
    ) -> None:
        super().__init__(sim, name)
        self.core_id = core_id
        self.core_config = core_config
        self.workload_config = workload_config
        self.stream = stream
        self.node = node

        self.effective_issue_width = min(core_config.issue_width, workload_config.issue_width)
        self.effective_mlp = min(core_config.max_outstanding_data_misses, workload_config.mlp)

        self.active = False
        self._current_block: Optional[FetchBlock] = None
        self._waiting_ifetch = False
        self._completing = False
        self._compute_done_cycle = 0
        self._outstanding_data: Set[int] = set()
        self._miss_queue: Deque = deque()

        stats = self.stats
        self.instructions_committed = stats.counter("instructions_committed")
        self.blocks_executed = stats.counter("blocks_executed")
        self.ifetch_stalls = stats.counter("ifetch_stalls")
        self.ifetch_stall_cycles = stats.counter("ifetch_stall_cycles")
        self.data_misses_issued = stats.counter("data_misses_issued")
        self._ifetch_stall_start = 0

    # ------------------------------------------------------------------ #
    # Control
    # ------------------------------------------------------------------ #
    def start(self, delay: int = 0) -> None:
        """Begin executing the workload stream."""
        if self.active:
            return
        self.active = True
        self.sim.schedule(self._advance, delay)

    # ------------------------------------------------------------------ #
    # Block execution
    # ------------------------------------------------------------------ #
    def _advance(self) -> None:
        if not self.active:
            return
        block = self.stream.next_block()
        self._current_block = block
        self._waiting_ifetch = False
        self._completing = False
        if not self.node.access_instruction(block.iaddr):
            self._waiting_ifetch = True
            self.ifetch_stalls.add()
            self._ifetch_stall_start = self.sim.cycle
            return
        self._execute_block(block)

    def ifetch_ready(self) -> None:
        """Called by the core node when the pending instruction fill arrives."""
        if not self._waiting_ifetch or self._current_block is None:
            return
        self._waiting_ifetch = False
        self.ifetch_stall_cycles.add(self.sim.cycle - self._ifetch_stall_start)
        self._execute_block(self._current_block)

    def _execute_block(self, block: FetchBlock) -> None:
        compute_cycles = max(1, math.ceil(block.n_instructions / self.effective_issue_width))
        hit_cycles = 0
        misses = []
        seen_blocks: Set[int] = set()
        for addr, is_write in block.data_accesses:
            if self.node.probe_data(addr, is_write):
                hit_cycles += 1  # L1 hit latency, mostly hidden by the OoO window
                continue
            line = self.node.block_address(addr)
            if line in seen_blocks:
                continue
            seen_blocks.add(line)
            misses.append((addr, is_write))

        self._compute_done_cycle = self.sim.cycle + compute_cycles + hit_cycles // max(
            1, self.effective_issue_width
        )
        self._outstanding_data.clear()
        self._miss_queue = deque(misses)
        self._issue_data_misses()
        if not self._outstanding_data and not self._miss_queue:
            self._schedule_completion(self._compute_done_cycle)

    def _issue_data_misses(self) -> None:
        while self._miss_queue and len(self._outstanding_data) < self.effective_mlp:
            addr, is_write = self._miss_queue.popleft()
            line = self.node.block_address(addr)
            if line in self._outstanding_data:
                continue
            self._outstanding_data.add(line)
            self.data_misses_issued.add()
            self.node.issue_data_miss(addr, is_write)

    def data_ready(self, block_addr: int) -> None:
        """Called by the core node when a data fill arrives."""
        self._outstanding_data.discard(block_addr)
        self._issue_data_misses()
        if (
            self._current_block is not None
            and not self._waiting_ifetch
            and not self._outstanding_data
            and not self._miss_queue
        ):
            self._schedule_completion(max(self.sim.cycle, self._compute_done_cycle))

    def _schedule_completion(self, cycle: int) -> None:
        if self._completing:
            return
        self._completing = True
        self.sim.schedule_at(self._complete_block, max(cycle, self.sim.cycle))

    def _complete_block(self) -> None:
        block = self._current_block
        if block is None:
            return
        self.instructions_committed.add(block.n_instructions)
        self.blocks_executed.add()
        self._current_block = None
        self._advance()

    # ------------------------------------------------------------------ #
    @property
    def outstanding_data_misses(self) -> int:
        return len(self._outstanding_data)

    def reset_statistics(self) -> None:
        self.stats.reset()

    def _tick(self) -> None:  # pragma: no cover - event driven, never ticks
        pass
