"""Event-driven simulation kernel with cycle granularity.

Events are callables scheduled at integer cycles.  Components (routers,
cache banks, cores) schedule themselves only when they have work, so an
idle 64-core chip costs nothing per cycle.  Determinism is guaranteed by a
monotonically increasing sequence number used as a tie-breaker for events
scheduled at the same cycle.

Internally every queue entry is a ``(cycle, seq, callback, args)`` tuple.
Carrying the argument tuple in the event itself lets hot paths such as
packet delivery (:meth:`Simulator.schedule_delivery`) schedule a bound
method plus its arguments directly instead of allocating a fresh closure
per packet, which measurably reduces allocation pressure in large sweeps.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Optional, Tuple

_NO_ARGS: Tuple = ()


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Global simulation clock and event queue.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All stochastic
        decisions in the model draw either from this RNG or from per-component
        RNGs derived from it, so runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self.cycle: int = 0
        self.seed = seed
        self.rng = random.Random(seed)
        self._queue: list = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, callback: Callable[[], None], delay: int = 0) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        self.schedule_at(callback, self.cycle + delay)

    def schedule_at(self, callback: Callable[[], None], cycle: int) -> None:
        """Schedule ``callback`` at an absolute ``cycle``."""
        if cycle < self.cycle:
            raise SimulationError(
                f"cannot schedule event in the past (cycle {cycle} < now {self.cycle})"
            )
        heapq.heappush(self._queue, (cycle, self._seq, callback, _NO_ARGS))
        self._seq += 1

    def schedule_call(self, callback: Callable[..., None], args: Tuple, delay: int = 0) -> None:
        """Schedule ``callback(*args)`` without wrapping it in a closure.

        The fast path for hot callers: the argument tuple rides along in the
        event entry, so no per-event lambda (with its defaults tuple and
        function object) has to be allocated.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        heapq.heappush(self._queue, (self.cycle + delay, self._seq, callback, args))
        self._seq += 1

    def schedule_delivery(
        self, sink, packet, in_port: int, vc_index: int, delay: int
    ) -> None:
        """Fast path for packet delivery: ``sink.receive_packet(packet, ...)``.

        Equivalent to ``schedule(lambda: sink.receive_packet(...), delay)``
        but allocation-light; this is the single most frequent event in any
        network-bound simulation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        heapq.heappush(
            self._queue,
            (self.cycle + delay, self._seq, sink.receive_packet, (packet, in_port, vc_index)),
        )
        self._seq += 1

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, cycles: int) -> int:
        """Advance the simulation by ``cycles`` cycles.

        Returns the number of events processed during this call.  Events
        scheduled beyond the horizon remain queued for subsequent calls.
        """
        return self.run_until(self.cycle + cycles)

    def run_until(self, end_cycle: int) -> int:
        """Process events until the clock reaches ``end_cycle``."""
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue and queue[0][0] <= end_cycle:
                cycle, _seq, callback, args = pop(queue)
                self.cycle = cycle
                callback(*args)
                processed += 1
            self.cycle = max(self.cycle, end_cycle)
        finally:
            self._running = False
        self._events_processed += processed
        return processed

    def run_to_completion(self, max_cycles: Optional[int] = None) -> int:
        """Process events until the queue drains (or ``max_cycles`` elapse).

        With ``max_cycles`` given, the clock always advances to the limit —
        exactly like :meth:`run_until` — even when the first deferred event
        lies beyond it, so back-to-back bounded calls observe a consistent
        clock.  Without a limit the clock rests at the last executed event.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        limit = None if max_cycles is None else self.cycle + max_cycles
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                cycle = queue[0][0]
                if limit is not None and cycle > limit:
                    break
                _cycle, _seq, callback, args = pop(queue)
                self.cycle = cycle
                callback(*args)
                processed += 1
            if limit is not None:
                self.cycle = max(self.cycle, limit)
        finally:
            self._running = False
        self._events_processed += processed
        return processed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    def derived_rng(self, salt: int) -> random.Random:
        """Return a deterministic per-component RNG derived from the seed."""
        return random.Random((self.seed * 1_000_003 + salt) & 0xFFFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Simulator(cycle={self.cycle}, pending={self.pending_events})"
