"""Event-driven simulation kernel with cycle granularity.

Events are callables scheduled at integer cycles.  Components (routers,
cache banks, cores) schedule themselves only when they have work, so an
idle 64-core chip costs nothing per cycle.  Determinism is guaranteed by
the ``(cycle, seq)`` contract: events fire in cycle order, and events
sharing a cycle fire in the order they were scheduled.

Two interchangeable schedulers implement that contract:

* :class:`Simulator` (the default) is a **calendar queue**: a ring of
  per-cycle buckets covering a sliding window of ``horizon`` cycles ahead
  of the clock, with a binary heap holding the rare far-future events that
  fall outside the window.  Scheduling inside the window is a plain list
  append, and :meth:`Simulator.run_until` drains one cycle's entire bucket
  in FIFO order without any per-event re-heapifying — the append order of
  a bucket *is* the ``seq`` order, so the sequence counter is only
  materialised for overflow events.  Overflow events migrate into the ring
  strictly before the window advances over their cycle, which keeps the
  merged order identical to a global ``(cycle, seq)`` sort.
* :class:`HeapSimulator` is the previous binary-heap implementation, kept
  as a built-in cross-check.  Setting ``REPRO_KERNEL=heap`` in the
  environment makes ``Simulator(...)`` construct it instead; the two
  kernels execute bit-identical event orders (asserted by
  ``scripts/check_kernel_equivalence.py`` in CI), which is why swapping
  them needs no ``MODEL_VERSION`` bump.

Internally every queue entry carries ``(callback, args)``.  Carrying the
argument tuple in the event itself lets hot paths such as packet delivery
(:meth:`Simulator.schedule_delivery`) schedule a bound method plus its
arguments directly instead of allocating a fresh closure per packet, which
measurably reduces allocation pressure in large sweeps.
"""

from __future__ import annotations

import heapq
import os
import random
from typing import Callable, List, Optional, Tuple

_NO_ARGS: Tuple = ()

#: Width of the calendar ring in cycles (rounded up to a power of two).
#: Delays up to the horizon — which covers every per-hop, serialization and
#: memory latency in the model — schedule with a list append; longer delays
#: take the overflow heap.  1024 buckets cost ~60 KB per Simulator.
DEFAULT_HORIZON = 1024


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Global simulation clock and calendar-queue event scheduler.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All stochastic
        decisions in the model draw either from this RNG or from per-component
        RNGs derived from it, so runs are reproducible.
    horizon:
        Width of the calendar ring in cycles (rounded up to a power of two).
        Exposed for tests that exercise window wrap-around; the default suits
        every model in the repository.

    With ``REPRO_KERNEL=heap`` in the environment, constructing ``Simulator``
    returns a :class:`HeapSimulator` instead — same contract, binary-heap
    implementation — so any experiment can be replayed on the reference
    scheduler without code changes.
    """

    #: Scheduler implementation name, for logs and equivalence checks.
    kernel = "calendar"

    def __new__(cls, *args, **kwargs):
        if cls is Simulator:
            requested = os.environ.get("REPRO_KERNEL", "").strip().lower()
            if requested == "heap":
                cls = HeapSimulator
            elif requested not in ("", "calendar"):
                raise ValueError(
                    f"REPRO_KERNEL={requested!r} is not a known kernel "
                    "(expected 'calendar' or 'heap')"
                )
        return object.__new__(cls)

    def __init__(self, seed: int = 0, horizon: int = DEFAULT_HORIZON) -> None:
        self.cycle: int = 0
        self.seed = seed
        self.rng = random.Random(seed)
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        size = 1
        while size < horizon:
            size <<= 1
        self._horizon = size
        self._mask = size - 1
        #: Ring of per-cycle FIFO buckets.  Invariant: every bucketed event's
        #: cycle lies in ``[self.cycle, self._win_end)`` with
        #: ``_win_end - self.cycle <= horizon`` at every point where user code
        #: can schedule, so a bucket never mixes two cycles.
        self._buckets: List[list] = [[] for _ in range(size)]
        self._bucket_count: int = 0
        #: Far-future events as ``(cycle, seq, callback, args)`` heap entries;
        #: migrated into the ring before the window reaches their cycle.
        self._overflow: list = []
        self._win_end: int = size
        #: Per-cycle batch hooks (see :meth:`register_cycle_hook`).
        self._cycle_hooks: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------ #
    # Per-cycle batch hooks
    # ------------------------------------------------------------------ #
    def register_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Register ``hook(cycle)``, called once per *simulated* cycle.

        The hook fires at the start of every cycle that executes at least
        one event, after the clock has advanced to that cycle but strictly
        before any of the cycle's events run.  All events scheduled for the
        cycle by *earlier* cycles are already queued at that point (per-hop
        latencies are >= 1 cycle), so a hook sees a complete pre-cycle
        snapshot — this is what lets the vectorized transport engine
        (``repro.noc.vector``) classify one cycle's router wakes as a
        single batch.  Hooks must not schedule events or advance the clock;
        they only read component state and prepare per-cycle plans.
        """
        self._cycle_hooks.append(hook)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, callback: Callable[[], None], delay: int = 0) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        self.schedule_at(callback, self.cycle + delay)

    def schedule_at(self, callback: Callable[[], None], cycle: int) -> None:
        """Schedule ``callback`` at an absolute ``cycle``."""
        if cycle < self.cycle:
            raise SimulationError(
                f"cannot schedule event in the past (cycle {cycle} < now {self.cycle})"
            )
        if cycle < self._win_end:
            self._buckets[cycle & self._mask].append((callback, _NO_ARGS))
            self._bucket_count += 1
        else:
            heapq.heappush(self._overflow, (cycle, self._seq, callback, _NO_ARGS))
            self._seq += 1

    def schedule_call(self, callback: Callable[..., None], args: Tuple, delay: int = 0) -> None:
        """Schedule ``callback(*args)`` without wrapping it in a closure.

        The fast path for hot callers: the argument tuple rides along in the
        event entry, so no per-event lambda (with its defaults tuple and
        function object) has to be allocated.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        cycle = self.cycle + delay
        if cycle < self._win_end:
            self._buckets[cycle & self._mask].append((callback, args))
            self._bucket_count += 1
        else:
            heapq.heappush(self._overflow, (cycle, self._seq, callback, args))
            self._seq += 1

    def schedule_delivery(
        self, sink, packet, in_port: int, vc_index: int, delay: int
    ) -> None:
        """Fast path for packet delivery: ``sink.receive_packet(packet, ...)``.

        Equivalent to ``schedule(lambda: sink.receive_packet(...), delay)``
        but allocation-light; this is the single most frequent event in any
        network-bound simulation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        cycle = self.cycle + delay
        if cycle < self._win_end:
            self._buckets[cycle & self._mask].append(
                (sink.receive_packet, (packet, in_port, vc_index))
            )
            self._bucket_count += 1
        else:
            heapq.heappush(
                self._overflow,
                (cycle, self._seq, sink.receive_packet, (packet, in_port, vc_index)),
            )
            self._seq += 1

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, cycles: int) -> int:
        """Advance the simulation by ``cycles`` cycles.

        Returns the number of events processed during this call.  Events
        scheduled beyond the horizon remain queued for subsequent calls.
        """
        return self.run_until(self.cycle + cycles)

    def _migrate(self, window_end: int) -> None:
        """Move overflow events with ``cycle < window_end`` into the ring.

        Called strictly before the window advances over those cycles, so a
        migrated event always lands in its bucket ahead of any event
        scheduled for the same cycle afterwards — preserving global
        ``(cycle, seq)`` order without storing ``seq`` in the ring.
        """
        overflow = self._overflow
        buckets = self._buckets
        mask = self._mask
        moved = 0
        pop = heapq.heappop
        while overflow and overflow[0][0] < window_end:
            cycle, _seq, callback, args = pop(overflow)
            buckets[cycle & mask].append((callback, args))
            moved += 1
        self._bucket_count += moved

    def run_until(self, end_cycle: int) -> int:
        """Process events until the clock reaches ``end_cycle``.

        One cycle's bucket is drained start to finish — including events a
        callback appends for the *current* cycle — before the clock moves,
        so all same-cycle work batches into a single drain pass.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        buckets = self._buckets
        mask = self._mask
        horizon = self._horizon
        overflow = self._overflow
        hooks = self._cycle_hooks
        t = self.cycle
        try:
            while t <= end_cycle:
                if overflow and overflow[0][0] < t + horizon:
                    self._migrate(t + horizon)
                if not self._bucket_count:
                    if not overflow or overflow[0][0] > end_cycle:
                        break
                    t = overflow[0][0]
                    continue
                bucket = buckets[t & mask]
                if bucket:
                    self.cycle = t
                    self._win_end = t + horizon
                    if hooks:
                        for hook in hooks:
                            hook(t)
                    i = 0
                    try:
                        # A for-loop over a growing list picks up same-cycle
                        # appends made by callbacks (list iterators re-check
                        # the length), giving the batch-drain semantics with
                        # one bound-check per event instead of an explicit
                        # len() call.
                        for i, (callback, args) in enumerate(bucket, 1):
                            callback(*args)
                    finally:
                        # Events that began executing are counted and removed
                        # even if one of them raised; the rest of the bucket
                        # stays queued for a resumed run.
                        processed += i
                        self._bucket_count -= i
                        del bucket[:i]
                t += 1
            if end_cycle > self.cycle:
                self.cycle = end_cycle
            if overflow and overflow[0][0] < self.cycle + horizon:
                self._migrate(self.cycle + horizon)
            self._win_end = self.cycle + horizon
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    def run_to_completion(self, max_cycles: Optional[int] = None) -> int:
        """Process events until the queue drains (or ``max_cycles`` elapse).

        With ``max_cycles`` given, the clock always advances to the limit —
        exactly like :meth:`run_until` — even when the first deferred event
        lies beyond it, so back-to-back bounded calls observe a consistent
        clock.  Without a limit the clock rests at the last executed event.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        limit = None if max_cycles is None else self.cycle + max_cycles
        buckets = self._buckets
        mask = self._mask
        horizon = self._horizon
        overflow = self._overflow
        hooks = self._cycle_hooks
        t = self.cycle
        try:
            while True:
                if overflow and overflow[0][0] < t + horizon:
                    self._migrate(t + horizon)
                if not self._bucket_count:
                    if not overflow:
                        break
                    nxt = overflow[0][0]
                    if limit is not None and nxt > limit:
                        break
                    t = nxt
                    continue
                if limit is not None and t > limit:
                    break
                bucket = buckets[t & mask]
                if bucket:
                    self.cycle = t
                    self._win_end = t + horizon
                    if hooks:
                        for hook in hooks:
                            hook(t)
                    i = 0
                    try:
                        for i, (callback, args) in enumerate(bucket, 1):
                            callback(*args)
                    finally:
                        processed += i
                        self._bucket_count -= i
                        del bucket[:i]
                t += 1
            if limit is not None and limit > self.cycle:
                self.cycle = limit
            if overflow and overflow[0][0] < self.cycle + horizon:
                self._migrate(self.cycle + horizon)
            self._win_end = self.cycle + horizon
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return self._bucket_count + len(self._overflow)

    @property
    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event, or ``None`` when idle.

        Introspection only (tests, debugging); the run loops never call it.
        """
        earliest = self._overflow[0][0] if self._overflow else None
        if self._bucket_count:
            buckets = self._buckets
            mask = self._mask
            for t in range(self.cycle, self._win_end):
                if buckets[t & mask]:
                    return t if earliest is None or t < earliest else earliest
        return earliest

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction.

        Updated even when a callback raises: events that began executing
        before the exception are included (regression-tested), so profiling
        and equivalence checks never undercount on error paths.
        """
        return self._events_processed

    def derived_rng(self, salt: int) -> random.Random:
        """Return a deterministic per-component RNG derived from the seed."""
        return random.Random((self.seed * 1_000_003 + salt) & 0xFFFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(cycle={self.cycle}, "
            f"pending={self.pending_events})"
        )


class HeapSimulator(Simulator):
    """Reference binary-heap scheduler (the pre-calendar implementation).

    Selected by ``REPRO_KERNEL=heap`` (or instantiated directly).  Events
    are ``(cycle, seq, callback, args)`` heap entries; execution order is
    bit-identical to the calendar queue, which CI asserts on a congested
    mesh so the two can never silently diverge.
    """

    kernel = "heap"

    #: Class-level sentinel: ``Component.wake``'s inlined ring-append fast
    #: path tests ``target < sim._win_end`` — with a zero window every wake
    #: falls through to :meth:`schedule_at` and lands on the heap.
    _win_end = 0

    def __init__(self, seed: int = 0, horizon: int = DEFAULT_HORIZON) -> None:
        self.cycle = 0
        self.seed = seed
        self.rng = random.Random(seed)
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._queue: list = []
        self._cycle_hooks: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------ #
    def schedule_at(self, callback: Callable[[], None], cycle: int) -> None:
        if cycle < self.cycle:
            raise SimulationError(
                f"cannot schedule event in the past (cycle {cycle} < now {self.cycle})"
            )
        heapq.heappush(self._queue, (cycle, self._seq, callback, _NO_ARGS))
        self._seq += 1

    def schedule_call(self, callback: Callable[..., None], args: Tuple, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        heapq.heappush(self._queue, (self.cycle + delay, self._seq, callback, args))
        self._seq += 1

    def schedule_delivery(
        self, sink, packet, in_port: int, vc_index: int, delay: int
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay}")
        heapq.heappush(
            self._queue,
            (self.cycle + delay, self._seq, sink.receive_packet, (packet, in_port, vc_index)),
        )
        self._seq += 1

    # ------------------------------------------------------------------ #
    def run_until(self, end_cycle: int) -> int:
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        hooks = self._cycle_hooks
        try:
            while queue and queue[0][0] <= end_cycle:
                cycle, _seq, callback, args = pop(queue)
                # Same batch-hook contract as the calendar kernel: fire once
                # per cycle that executes events, before any of them runs.
                if hooks and cycle > self.cycle:
                    self.cycle = cycle
                    for hook in hooks:
                        hook(cycle)
                else:
                    self.cycle = cycle
                processed += 1
                callback(*args)
            if end_cycle > self.cycle:
                self.cycle = end_cycle
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    def run_to_completion(self, max_cycles: Optional[int] = None) -> int:
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        limit = None if max_cycles is None else self.cycle + max_cycles
        queue = self._queue
        pop = heapq.heappop
        hooks = self._cycle_hooks
        try:
            while queue:
                cycle = queue[0][0]
                if limit is not None and cycle > limit:
                    break
                _cycle, _seq, callback, args = pop(queue)
                if hooks and cycle > self.cycle:
                    self.cycle = cycle
                    for hook in hooks:
                        hook(cycle)
                else:
                    self.cycle = cycle
                processed += 1
                callback(*args)
            if limit is not None and limit > self.cycle:
                self.cycle = limit
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def next_event_cycle(self) -> Optional[int]:
        return self._queue[0][0] if self._queue else None
