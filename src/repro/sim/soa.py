"""Struct-of-arrays (SoA) state mirrors for the vectorized transport engine.

``repro.noc.vector`` batches one cycle's router arbitration into a handful
of numpy passes.  To do that it needs every router's per-VC switching state
laid out contiguously: this module owns the numpy availability gate (numpy
is an *optional* dependency — callers must check :data:`HAVE_NUMPY` before
allocating) and the :class:`TransportArrays` container that preallocates
the full mirror once per network.

Index spaces
------------
Four dense integer id spaces are assigned at engine finalization and never
change afterwards:

``rid``
    Router id, in network registration order.
``gid`` (state id)
    One per (input port, VC) pair, contiguous per router in ``(in_port,
    vc_index)`` lexicographic order — so ascending gid order *is* the scan
    order of ``Router._tick`` over its sorted active list, which is what
    lets ``np.nonzero`` reproduce scalar arbitration order exactly.
``port gid``
    One per router output port, in (router, port index) order.
``vc gid``
    One per virtual-channel buffer reachable as a forwarding destination:
    every router input VC (where ``vc gid == gid`` of the owning state)
    followed by the ejection-side VCs, which have no owning state and
    point their route-invalidation writes at the scrap slot ``num_states``
    (hence ``route_valid`` is one element longer than the state count).

All arrays are int64/bool and preallocated; per-cycle work never allocates
a mirror, only reads and scatters into these.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every vector-mode test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less environments
    np = None
    HAVE_NUMPY = False

#: Sentinel for "no busy-port contribution" in per-router minimum scans;
#: larger than any reachable ``busy_until`` (cycles are well below 2**62).
FAR_FUTURE = 2**62


class TransportArrays:
    """Preallocated SoA mirror of the per-router/VC/port switching state.

    Pure data: the vector engine owns every invariant about *when* each
    array is written (see ``repro.noc.vector``).  Mirrors:

    - ``next_wake[rid]`` — the router's pending ``_next_wake`` target (the
      mirror may lag behind a consumed wake; it is only ever compared for
      equality against the current cycle, which a stale past value can
      never match again).
    - ``active[gid]`` / ``blocked[gid]`` — membership in the router's
      ``_active_vcs`` list and the credit-blocked flag.
    - ``route_valid[gid]`` + ``head_out/head_port/head_down_vc/head_flits``
      — the cached head routing decision, invalidated by every ``pop``.
    - ``blocked_port[gid]`` — port gid the blocked head waits on (only
      meaningful while ``blocked``).
    - ``state_router[gid]`` — owning rid (static after finalization).
    - ``port_busy[port gid]`` — ``OutputPort.busy_until``.
    - ``vc_reserved/vc_cap[vc gid]`` — downstream admission state.

    Published per-router plans live on the engine as plain python lists,
    not here: they are read once per tick by scalar python code, where
    list indexing beats numpy scalar extraction by an order of magnitude.
    """

    __slots__ = (
        "num_routers",
        "num_states",
        "num_ports",
        "num_vcs",
        "next_wake",
        "active",
        "blocked",
        "route_valid",
        "head_out",
        "head_port",
        "head_down_vc",
        "head_flits",
        "blocked_port",
        "state_router",
        "port_busy",
        "vc_reserved",
        "vc_cap",
        "busy_scratch",
    )

    def __init__(self, num_routers: int, num_states: int, num_ports: int, num_vcs: int) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - guarded by every caller
            raise RuntimeError("TransportArrays requires numpy")
        self.num_routers = num_routers
        self.num_states = num_states
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.next_wake = np.full(num_routers, -1, dtype=np.int64)
        self.active = np.zeros(num_states, dtype=bool)
        self.blocked = np.zeros(num_states, dtype=bool)
        # One scrap slot at index num_states absorbs route invalidations
        # from ejection-side VCs that have no owning state.
        self.route_valid = np.zeros(num_states + 1, dtype=bool)
        self.head_out = np.zeros(num_states, dtype=np.int64)
        self.head_port = np.zeros(num_states, dtype=np.int64)
        self.head_down_vc = np.zeros(num_states, dtype=np.int64)
        self.head_flits = np.zeros(num_states, dtype=np.int64)
        self.blocked_port = np.zeros(num_states, dtype=np.int64)
        self.state_router = np.zeros(num_states, dtype=np.int64)
        self.port_busy = np.zeros(num_ports, dtype=np.int64)
        self.vc_reserved = np.zeros(num_vcs, dtype=np.int64)
        self.vc_cap = np.zeros(num_vcs, dtype=np.int64)
        # Per-router scratch for the batched busy-expiry minimum scan.
        self.busy_scratch = np.full(num_routers, FAR_FUTURE, dtype=np.int64)
