"""Discrete-event, cycle-accurate simulation kernel.

The kernel is deliberately small: a :class:`~repro.sim.kernel.Simulator`
owns the global cycle counter and an event heap of callbacks, and
:class:`~repro.sim.component.Component` provides the wake/tick idiom used by
routers, caches, cores and memory controllers.  Statistics are collected in
:class:`~repro.sim.stats.StatGroup` trees attached to each component.
"""

from repro.sim.kernel import Simulator
from repro.sim.component import Component
from repro.sim.stats import Counter, Histogram, StatGroup

__all__ = ["Simulator", "Component", "Counter", "Histogram", "StatGroup"]
