"""Statistics primitives: counters, histograms and hierarchical groups."""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, Iterable, List, Optional, Union


class StatError(ValueError):
    """Raised when a statistic is queried or updated in an invalid way."""


#: Default retained-sample cap for reservoir histograms.  A fixed module
#: constant on purpose: making this environment-tunable would change
#: results without changing cache keys.
DEFAULT_RESERVOIR = 8192


class Counter:
    """A monotonically updated scalar statistic.

    Monotonicity is enforced: :meth:`add` rejects negative amounts, so a
    counter can never silently run backwards (use :meth:`reset` to start a
    new measurement interval).
    """

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value: float = 0

    def add(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise StatError(
                f"{self.name}: counters are monotonic, cannot add {amount}"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram tracking count/sum/min/max and full samples.

    Sample retention can be disabled for very hot paths; mean and extrema
    are always available.

    ``reservoir`` bounds retained-sample memory: once more than
    ``reservoir`` values have been recorded, each further value replaces a
    uniformly random retained one (Vitter's Algorithm R), so percentiles
    stay meaningful on arbitrarily long runs at O(reservoir) memory.  The
    replacement RNG is private and seeded from the histogram's name, so
    the retained set depends only on the value sequence — never on other
    RNG users or the simulation kernel.
    """

    def __init__(
        self,
        name: str,
        description: str = "",
        keep_samples: bool = True,
        reservoir: Optional[int] = None,
    ) -> None:
        self.name = name
        self.description = description
        self.keep_samples = keep_samples
        if reservoir is not None:
            if not keep_samples:
                raise StatError(
                    f"{name}: reservoir sampling retains samples, so it "
                    f"cannot be combined with keep_samples=False"
                )
            if reservoir < 1:
                raise ValueError(f"{name}: reservoir must be >= 1, got {reservoir}")
        self.reservoir = reservoir
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._reservoir_rng = (
            random.Random(zlib.crc32(name.encode("utf-8")))
            if reservoir is not None
            else None
        )

    def add(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self.keep_samples:
            cap = self.reservoir
            if cap is None or len(self._samples) < cap:
                self._samples.append(value)
            else:
                slot = self._reservoir_rng.randrange(self.count)
                if slot < cap:
                    self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0-100) of retained samples.

        Raises :class:`StatError` when samples are unavailable — either the
        histogram was built with ``keep_samples=False`` (the samples were
        discarded, so any answer would be fabricated) or nothing has been
        recorded.  Silently returning 0.0 here once made tail-latency
        reports read as zero; it must never do that again.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.keep_samples:
            raise StatError(
                f"{self.name}: percentile() needs retained samples but the "
                f"histogram was created with keep_samples=False"
            )
        if not self._samples:
            raise StatError(f"{self.name}: percentile() of an empty histogram")
        ordered = sorted(self._samples)
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    @property
    def retained_samples(self) -> int:
        """Number of samples currently held (<= reservoir when bounded)."""
        return len(self._samples)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples.clear()
        if self.reservoir is not None:
            # Re-seed so a reset histogram replays identically.
            self._reservoir_rng = random.Random(zlib.crc32(self.name.encode("utf-8")))

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.2f})"


class StatGroup:
    """A named tree of counters, histograms and nested groups."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._children: Dict[str, "StatGroup"] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create a counter."""
        if name not in self._counters:
            self._counters[name] = Counter(name, description)
        return self._counters[name]

    def histogram(
        self,
        name: str,
        description: str = "",
        keep_samples: bool = True,
        reservoir: Optional[int] = None,
    ) -> Histogram:
        """Get or create a histogram."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, description, keep_samples, reservoir)
        return self._histograms[name]

    def group(self, name: str) -> "StatGroup":
        """Get or create a nested group."""
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    # ------------------------------------------------------------------ #
    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    @property
    def children(self) -> Dict[str, "StatGroup"]:
        return dict(self._children)

    def reset(self) -> None:
        """Reset every statistic in this group and its descendants."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for child in self._children.values():
            child.reset()

    def to_dict(self) -> dict:
        """Flatten the group into nested plain dictionaries.

        Empty histograms report ``min``/``max`` as 0.0 (matching their
        mean) rather than leaking ``None`` into report tables and JSON
        consumers that expect numbers.
        """
        result: dict = {}
        for name, counter in self._counters.items():
            result[name] = counter.value
        for name, histogram in self._histograms.items():
            empty = histogram.count == 0
            result[name] = {
                "count": histogram.count,
                "mean": histogram.mean,
                "min": 0.0 if empty else histogram.min,
                "max": 0.0 if empty else histogram.max,
            }
        for name, child in self._children.items():
            result[name] = child.to_dict()
        return result

    def flat_items(self, prefix: str = "") -> Iterable:
        """Yield ``(dotted_name, value)`` for every counter/histogram mean."""
        for name, counter in self._counters.items():
            yield f"{prefix}{name}", counter.value
        for name, histogram in self._histograms.items():
            yield f"{prefix}{name}.mean", histogram.mean
            yield f"{prefix}{name}.count", histogram.count
        for name, child in self._children.items():
            yield from child.flat_items(prefix=f"{prefix}{name}.")

    def __repr__(self) -> str:
        return (
            f"StatGroup({self.name}, counters={len(self._counters)}, "
            f"histograms={len(self._histograms)}, children={len(self._children)})"
        )
