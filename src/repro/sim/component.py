"""Base class for simulated hardware components."""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.sim.stats import StatGroup


class Component:
    """A named hardware block attached to a :class:`Simulator`.

    Components use the *wake/tick* idiom: anything that hands work to a
    component (a link delivering a packet, a core issuing a request) calls
    :meth:`wake`, which schedules a single :meth:`_tick` callback for the
    requested cycle.  Duplicate wake-ups for the same cycle are coalesced so
    that a component ticks at most once per cycle.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)
        self._next_wake: int = -1

    # ------------------------------------------------------------------ #
    def wake(self, delay: int = 0) -> None:
        """Ensure :meth:`_tick` runs ``delay`` cycles from now (coalesced)."""
        target = self.sim.cycle + delay
        if self._next_wake == target:
            return
        # Only suppress if an earlier-or-equal wake is already pending.
        if self._next_wake >= self.sim.cycle and self._next_wake <= target:
            return
        self._next_wake = target
        self.sim.schedule_at(self._run_tick, target)

    def _run_tick(self) -> None:
        if self._next_wake == self.sim.cycle:
            self._next_wake = -1
        self._tick()

    def _tick(self) -> None:
        """Do one cycle of work.  Subclasses override."""
        raise NotImplementedError

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.cycle

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r})"
