"""Base class for simulated hardware components."""

from __future__ import annotations

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.stats import StatGroup

_NO_ARGS: tuple = ()


class Component:
    """A named hardware block attached to a :class:`Simulator`.

    Components use the *wake/tick* idiom: anything that hands work to a
    component (a link delivering a packet, a core issuing a request) calls
    :meth:`wake`, which schedules a single :meth:`_tick` callback for the
    requested cycle.  Duplicate wake-ups for a pending target are coalesced;
    only a wake requested after the cycle's tick already ran (e.g. a credit
    listener firing mid-cycle) re-ticks the component within that cycle.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)
        self._next_wake: int = -1

    # ------------------------------------------------------------------ #
    def wake(self, delay: int = 0) -> None:
        """Ensure :meth:`_tick` runs ``delay`` cycles from now (coalesced).

        Duplicate requests while a wake is pending coalesce: an
        earlier-or-equal pending wake absorbs the new request, and
        requesting an *earlier* wake supersedes a later pending one
        (``_next_wake`` moves forward; the superseded callback, still in
        the kernel queue, is recognised as stale and dropped by
        :meth:`_run_tick` when it fires).  A wake requested *after* the
        current cycle's tick has already run schedules a fresh tick — for
        ``wake(0)`` within the same cycle.  That re-tick is load-bearing:
        it is what lets a credit listener fired mid-cycle (a downstream
        ``pop``) re-run a router that already ticked this cycle, so freed
        space can be claimed the cycle it appears.
        """
        if delay < 0:
            raise SimulationError(f"cannot wake with negative delay {delay}")
        sim = self.sim
        now = sim.cycle
        target = now + delay
        pending = self._next_wake
        # Suppress only if an earlier-or-equal wake is already pending.
        if now <= pending <= target:
            return
        self._next_wake = target
        # Inlined calendar-queue append (see Simulator.schedule_at): wake is
        # the single most frequent scheduling call in any simulation, so the
        # in-window case writes the ring directly.  On the heap kernel
        # ``_win_end`` is 0, so every wake takes the schedule_at fallback.
        if target < sim._win_end:
            sim._buckets[target & sim._mask].append((self._run_tick, _NO_ARGS))
            sim._bucket_count += 1
        else:
            sim.schedule_at(self._run_tick, target)

    def _run_tick(self) -> None:
        if self._next_wake != self.sim.cycle:
            return  # stale callback superseded by an earlier wake request
        self._next_wake = -1
        self._tick()

    def _tick(self) -> None:
        """Do one cycle of work.  Subclasses override."""
        raise NotImplementedError

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.cycle

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r})"
