"""Reduction trees: routing-free many-to-one networks from cores to the LLC.

A reduction tree spans one half-column of cores and terminates at the LLC
tile of that column (Figure 6a).  A node is a buffered, flow-controlled
two-input multiplexer that merges packets from its local core(s) with
packets already in the network; there is no routing (all packets flow to
the same terminal) and arbitration is static-priority, preferring network
traffic over local traffic and responses over requests (Section 4.1).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.config.system import SystemConfig
from repro.sim.kernel import Simulator
from repro.noc.arbiter import RoundRobinArbiter, StaticPriorityArbiter
from repro.noc.buffer import InputPort
from repro.noc.interface import NetworkInterface
from repro.noc.message import MessageClass
from repro.noc.router import PacketSink, Router

#: Virtual-channel assignment for the two-VC tree ports: requests and snoops
#: never share a tree direction, so they can share VC 0 while responses get
#: their own VC for deadlock freedom.
TREE_VC_MAP = {
    MessageClass.REQUEST: 0,
    MessageClass.SNOOP: 0,
    MessageClass.RESPONSE: 1,
}


def tree_input_port(config: SystemConfig, label: str) -> InputPort:
    """A two-VC input port as used by reduction and dispersion tree nodes."""
    noc = config.noc
    return InputPort(
        num_vcs=noc.tree_vcs_per_port,
        vc_depth_flits=noc.tree_vc_depth_flits,
        name=label,
        vc_map={cls: min(TREE_VC_MAP[cls], noc.tree_vcs_per_port - 1) for cls in MessageClass},
    )


def tree_arbiter_factory(config: SystemConfig):
    """Arbiter used by tree nodes (static priority by default, Section 4.1)."""
    if config.noc.tree_arbitration == "round_robin":
        return RoundRobinArbiter
    return StaticPriorityArbiter


def build_reduction_tree(
    sim: Simulator,
    config: SystemConfig,
    name: str,
    core_groups: Sequence[Sequence[NetworkInterface]],
    terminal: PacketSink,
    terminal_port: int,
    destinations: Iterable[int],
    hop_length_mm: float,
) -> List[Router]:
    """Build one reduction tree.

    Parameters
    ----------
    core_groups:
        Core network interfaces grouped per tree node, ordered from the core
        farthest from the LLC to the closest.  A group holds more than one
        interface when concentration is enabled (Section 7.1).
    terminal / terminal_port:
        The LLC router (and the index of the input port on it) where the
        tree terminates.
    destinations:
        Every network node id; all of them route through the tree's single
        output since a reduction tree is a many-to-one network.
    hop_length_mm:
        Physical length of one node-to-node hop (used for link energy).
    """
    if not core_groups:
        raise ValueError("a reduction tree needs at least one core group")
    noc = config.noc
    destinations = list(destinations)
    nodes: List[Router] = []

    arbiter_factory = tree_arbiter_factory(config)
    for index, group in enumerate(core_groups):
        node = Router(
            sim,
            f"{name}.n{index}",
            pipeline_latency=noc.tree_hop_latency,
            arbiter_factory=arbiter_factory,
        )
        local_port = node.add_input_port(
            tree_input_port(config, f"{name}.n{index}.local"), is_local=True
        )
        for interface in group:
            interface.attach_router(node, local_port)
        nodes.append(node)

    # Chain the nodes toward the LLC and terminate at the LLC router.
    for index, node in enumerate(nodes):
        if index + 1 < len(nodes):
            downstream = nodes[index + 1]
            in_port = downstream.add_input_port(
                tree_input_port(config, f"{downstream.name}.from_upstream")
            )
            node.add_output_port(
                "down", downstream, in_port, link_latency=0, link_length_mm=hop_length_mm
            )
        else:
            node.add_output_port(
                "terminal", terminal, terminal_port, link_latency=0, link_length_mm=hop_length_mm
            )

    # Optional express link: the farthest node bypasses the chain entirely
    # and feeds the terminal-adjacent node directly (Section 7.1).
    if noc.tree_express_links and len(nodes) >= 4:
        express_target = nodes[-1]
        in_port = express_target.add_input_port(
            tree_input_port(config, f"{express_target.name}.from_express")
        )
        express_length = hop_length_mm * (len(nodes) - 1)
        nodes[0].add_output_port(
            "express", express_target, in_port, link_latency=0, link_length_mm=express_length
        )
        express_port = len(nodes[0].output_ports) - 1
    else:
        express_port = None

    # Routing: every destination leaves through the downstream port (or the
    # express link for the farthest node when available).
    for index, node in enumerate(nodes):
        out_port = 0
        if index == 0 and express_port is not None:
            out_port = express_port
        for dst in destinations:
            node.set_route(dst, out_port)

    return nodes
