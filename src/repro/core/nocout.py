"""The composed NOC-Out interconnect (Figure 5).

Cores inject into per-half-column reduction trees that terminate at the
centrally located LLC tiles; the LLC tiles are interconnected with a
one-dimensional flattened butterfly; responses and snoops leave the LLC
region through dispersion trees.  There is no direct core-to-core
connectivity — all traffic flows through the LLC region.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config.system import SystemConfig
from repro.sim.kernel import Simulator
from repro.noc.network import Network
from repro.noc.router import Router
from repro.core.dispersion_tree import build_dispersion_tree
from repro.core.floorplan import CorePosition, NocOutFloorplan
from repro.core.llc_network import build_llc_network, llc_input_port
from repro.core.reduction_tree import build_reduction_tree


class NocOutNetwork(Network):
    """Reduction trees + dispersion trees + LLC flattened butterfly."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        core_nodes: Dict[int, CorePosition],
        llc_nodes: Dict[int, int],
        mc_nodes: Dict[int, int],
        name: str = "nocout",
    ) -> None:
        all_nodes = list(core_nodes) + list(llc_nodes) + list(mc_nodes)
        super().__init__(sim, config, name, all_nodes)
        self.core_nodes = dict(core_nodes)
        self.llc_nodes = dict(llc_nodes)
        self.mc_nodes = dict(mc_nodes)
        self.floorplan = NocOutFloorplan(config)

        self.llc_routers: List[Router] = []
        self.reduction_nodes: List[Router] = []
        self.dispersion_nodes: List[Router] = []
        self._inter_tile_port: Dict[Tuple[int, int], int] = {}
        self._llc_eject_port: Dict[int, int] = {}
        self._mc_eject_port: Dict[int, int] = {}
        self._dispersion_head_port: Dict[Tuple[int, str], int] = {}

        self._build_llc_region()
        self._attach_llc_and_mc_interfaces()
        self._build_trees()
        self._build_llc_routing_tables()

        self.routers.extend(self.llc_routers)
        self.routers.extend(self.reduction_nodes)
        self.routers.extend(self.dispersion_nodes)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_llc_region(self) -> None:
        self.llc_routers, self._inter_tile_port = build_llc_network(
            self.sim, self.system, self.floorplan, name=f"{self.name}.llcnet"
        )

    def _attach_llc_and_mc_interfaces(self) -> None:
        for node_id, column in self.llc_nodes.items():
            router = self.llc_routers[column]
            interface = self.interfaces[node_id]
            in_port = router.add_input_port(
                llc_input_port(self.system, f"{router.name}.in_llc{node_id}"), is_local=True
            )
            interface.attach_router(router, in_port)
            self._llc_eject_port[node_id] = router.add_output_port(
                f"eject_llc{node_id}", interface, 0, link_latency=0, link_length_mm=0.0
            )
        for node_id, column in self.mc_nodes.items():
            router = self.llc_routers[column]
            interface = self.interfaces[node_id]
            in_port = router.add_input_port(
                llc_input_port(self.system, f"{router.name}.in_mc{node_id}"), is_local=True
            )
            interface.attach_router(router, in_port)
            self._mc_eject_port[node_id] = router.add_output_port(
                f"eject_mc{node_id}", interface, 0, link_latency=0, link_length_mm=0.0
            )

    def _cores_in_group(self, column: int, rows: Tuple[int, ...]) -> List[int]:
        """Core node ids at (column, row) for each row, in the given order."""
        by_position = self._core_by_position
        cores = []
        for row in rows:
            position = (column, row)
            if position in by_position:
                cores.append(by_position[position])
        return cores

    def _build_trees(self) -> None:
        concentration = self.noc.tree_concentration
        hop_mm = self.floorplan.tree_hop_length_mm()
        all_destinations = list(self.llc_nodes) + list(self.mc_nodes) + list(self.core_nodes)
        # Inverted once here: rebuilding it per tree group made chip
        # construction quadratic in the core count, which matters for the
        # 256/512-core sweeps the roadmap targets.
        self._core_by_position = {pos: node for node, pos in self.core_nodes.items()}

        for group in self.floorplan.tree_groups():
            cores = self._cores_in_group(group.column, group.core_rows)
            if not cores:
                continue
            llc_router = self.llc_routers[group.column]
            label = f"{self.name}.{group.side}{group.column}"

            # Reduction tree: cores -> LLC router of this column.
            core_groups = [
                [self.interfaces[node_id] for node_id in cores[i : i + concentration]]
                for i in range(0, len(cores), concentration)
            ]
            terminal_port = llc_router.add_input_port(
                llc_input_port(self.system, f"{llc_router.name}.from_{group.side}_tree")
            )
            reduction = build_reduction_tree(
                self.sim,
                self.system,
                f"{label}.red",
                core_groups,
                llc_router,
                terminal_port,
                all_destinations,
                hop_mm,
            )
            self.reduction_nodes.extend(reduction)

            # Dispersion tree: LLC router of this column -> cores.
            bindings = [
                [
                    (node_id, self.interfaces[node_id])
                    for node_id in cores[i : i + concentration]
                ]
                for i in range(0, len(cores), concentration)
            ]
            head, head_port, dispersion = build_dispersion_tree(
                self.sim, self.system, f"{label}.disp", bindings, hop_mm
            )
            self.dispersion_nodes.extend(dispersion)
            out_port = llc_router.add_output_port(
                f"to_{group.side}_tree", head, head_port, link_latency=0, link_length_mm=hop_mm
            )
            self._dispersion_head_port[(group.column, group.side)] = out_port

    def _build_llc_routing_tables(self) -> None:
        for column, router in enumerate(self.llc_routers):
            for node_id, llc_column in self.llc_nodes.items():
                if llc_column == column:
                    router.set_route(node_id, self._llc_eject_port[node_id])
                else:
                    router.set_route(node_id, self._inter_tile_port[(column, llc_column)])
            for node_id, mc_column in self.mc_nodes.items():
                if mc_column == column:
                    router.set_route(node_id, self._mc_eject_port[node_id])
                else:
                    router.set_route(node_id, self._inter_tile_port[(column, mc_column)])
            for node_id, (core_column, core_row) in self.core_nodes.items():
                side = self.floorplan.side_of_row(core_row)
                if core_column == column:
                    router.set_route(node_id, self._dispersion_head_port[(core_column, side)])
                else:
                    router.set_route(node_id, self._inter_tile_port[(column, core_column)])

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by tests and the ablation studies)
    # ------------------------------------------------------------------ #
    def llc_router(self, column: int) -> Router:
        return self.llc_routers[column]

    @property
    def num_tree_nodes(self) -> int:
        return len(self.reduction_nodes) + len(self.dispersion_nodes)
