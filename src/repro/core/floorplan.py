"""NOC-Out die floorplan (Figure 5).

The LLC is a single row of tiles in the centre of the die; core tiles fill
the columns above and below it.  Each column of cores on one side of the
LLC row is served by one reduction tree and one dispersion tree, both
terminating at the LLC tile of that column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config.system import SystemConfig
from repro.noc.topology import LinkSpec, RouterSpec, TopologyDescriptor

CorePosition = Tuple[int, int]  # (column, core-row); the LLC row is not counted


@dataclass(frozen=True)
class TreeGroup:
    """One reduction/dispersion tree pair: a half-column of cores and its LLC tile."""

    column: int
    side: str  # "top" (above the LLC row) or "bottom" (below it)
    core_rows: Tuple[int, ...]  # ordered from farthest to closest to the LLC


class NocOutFloorplan:
    """Geometry and grouping of the NOC-Out organization."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        noc = config.noc
        self.columns = noc.llc_tiles
        if config.num_cores % self.columns:
            raise ValueError(
                f"{config.num_cores} cores cannot be split over {self.columns} columns"
            )
        self.core_rows = config.num_cores // self.columns
        if self.core_rows % 2:
            raise ValueError("NOC-Out needs an even number of core rows (cores above and below the LLC)")
        self.rows_per_side = self.core_rows // 2

        tech = config.technology
        self.core_tile_width_mm = math.sqrt(config.core.area_mm2)
        self.core_tile_height_mm = self.core_tile_width_mm
        llc_tile_mb = (config.caches.llc_total_bytes / (1024 * 1024)) / noc.llc_tiles
        llc_tile_area = llc_tile_mb * tech.cache_area_mm2_per_mb
        # The paper matches the LLC tile aspect ratio to the core tiles so the
        # layout stays regular: keep the width equal to a core tile.
        self.llc_tile_width_mm = self.core_tile_width_mm
        self.llc_tile_height_mm = llc_tile_area / self.llc_tile_width_mm

    # ------------------------------------------------------------------ #
    # Grouping
    # ------------------------------------------------------------------ #
    def tree_groups(self) -> List[TreeGroup]:
        """All reduction/dispersion tree groups, top side first per column."""
        groups: List[TreeGroup] = []
        for column in range(self.columns):
            top_rows = tuple(range(0, self.rows_per_side))
            bottom_rows = tuple(
                range(self.core_rows - 1, self.rows_per_side - 1, -1)
            )
            groups.append(TreeGroup(column=column, side="top", core_rows=top_rows))
            groups.append(TreeGroup(column=column, side="bottom", core_rows=bottom_rows))
        return groups

    def side_of_row(self, core_row: int) -> str:
        """Which side of the LLC row a core row sits on."""
        if not 0 <= core_row < self.core_rows:
            raise ValueError(f"core row {core_row} out of range")
        return "top" if core_row < self.rows_per_side else "bottom"

    def core_positions(self) -> List[CorePosition]:
        """Positions of all cores in (column, core-row) order."""
        return [
            (column, row)
            for row in range(self.core_rows)
            for column in range(self.columns)
        ]

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    def core_center_mm(self, position: CorePosition) -> Tuple[float, float]:
        """Physical centre of the core tile at ``position``."""
        column, row = position
        x = (column + 0.5) * self.core_tile_width_mm
        if row < self.rows_per_side:
            y = (row + 0.5) * self.core_tile_height_mm
        else:
            y = (
                self.rows_per_side * self.core_tile_height_mm
                + self.llc_tile_height_mm
                + (row - self.rows_per_side + 0.5) * self.core_tile_height_mm
            )
        return (x, y)

    def llc_center_mm(self, column: int) -> Tuple[float, float]:
        """Physical centre of the LLC tile in ``column``."""
        x = (column + 0.5) * self.llc_tile_width_mm
        y = self.rows_per_side * self.core_tile_height_mm + 0.5 * self.llc_tile_height_mm
        return (x, y)

    def llc_link_length_mm(self, column_a: int, column_b: int) -> float:
        """Length of the LLC-network link between two LLC tiles."""
        return abs(column_a - column_b) * self.llc_tile_width_mm

    def tree_hop_length_mm(self) -> float:
        """Length of one hop in a reduction/dispersion tree."""
        return self.core_tile_height_mm

    @property
    def die_width_mm(self) -> float:
        return self.columns * self.core_tile_width_mm

    @property
    def die_height_mm(self) -> float:
        return self.core_rows * self.core_tile_height_mm + self.llc_tile_height_mm


# --------------------------------------------------------------------------- #
# Static descriptor for the area model (Figure 8)
# --------------------------------------------------------------------------- #
def describe_nocout(config: SystemConfig) -> TopologyDescriptor:
    """Router/link inventory of NOC-Out for the area model."""
    noc = config.noc
    plan = NocOutFloorplan(config)
    width = noc.link_width_bits

    tree_nodes_per_network = config.num_cores // max(1, noc.tree_concentration)
    routers = [
        RouterSpec(
            count=tree_nodes_per_network,
            ports=2,
            vcs_per_port=noc.tree_vcs_per_port,
            vc_depth_flits=noc.tree_vc_depth_flits,
            flit_width_bits=width,
            uses_sram_buffers=False,
            label="reduction tree node",
        ),
        RouterSpec(
            count=tree_nodes_per_network,
            ports=2,
            vcs_per_port=noc.tree_vcs_per_port,
            vc_depth_flits=noc.tree_vc_depth_flits,
            flit_width_bits=width,
            uses_sram_buffers=False,
            label="dispersion tree node",
        ),
        RouterSpec(
            count=noc.llc_tiles,
            ports=(noc.llc_tiles - 1) + 4,  # inter-tile + 2 tree terminals + local + MC
            vcs_per_port=noc.llc_vcs_per_port,
            vc_depth_flits=noc.llc_vc_depth_flits,
            flit_width_bits=width,
            uses_sram_buffers=False,
            label="LLC network router",
        ),
    ]

    hop_mm = plan.tree_hop_length_mm()
    tree_links_per_network = 2 * plan.columns * plan.rows_per_side
    links = [
        LinkSpec(
            count=tree_links_per_network,
            length_mm=hop_mm,
            width_bits=width,
            label="reduction tree link",
        ),
        LinkSpec(
            count=tree_links_per_network,
            length_mm=hop_mm,
            width_bits=width,
            label="dispersion tree link",
        ),
    ]
    span_counts: Dict[int, int] = {}
    for a in range(plan.columns):
        for b in range(plan.columns):
            if a != b:
                span_counts[abs(a - b)] = span_counts.get(abs(a - b), 0) + 1
    for span, count in sorted(span_counts.items()):
        links.append(
            LinkSpec(
                count=count,
                length_mm=span * plan.llc_tile_width_mm,
                width_bits=width,
                label=f"LLC network link ({span} tiles)",
            )
        )
    return TopologyDescriptor("noc_out", routers, links)
