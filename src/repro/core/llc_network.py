"""The LLC network: a one-dimensional flattened butterfly across LLC tiles.

NOC-Out concentrates the LLC in a single row of tiles; the tiles are fully
connected with a flattened butterfly so that a request entering the LLC
region at the wrong tile reaches its home tile in one additional hop
(Section 4.3).  Memory controllers attach to the edge routers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config.system import SystemConfig
from repro.sim.kernel import Simulator
from repro.noc.buffer import InputPort
from repro.noc.router import Router
from repro.core.floorplan import NocOutFloorplan


def llc_input_port(config: SystemConfig, label: str) -> InputPort:
    """A three-VC input port as used by LLC network routers."""
    noc = config.noc
    return InputPort(
        num_vcs=noc.llc_vcs_per_port,
        vc_depth_flits=noc.llc_vc_depth_flits,
        name=label,
    )


def build_llc_network(
    sim: Simulator,
    config: SystemConfig,
    floorplan: NocOutFloorplan,
    name: str = "llcnet",
) -> Tuple[List[Router], Dict[Tuple[int, int], int]]:
    """Create the LLC routers and their all-to-all row links.

    Returns ``(routers, inter_tile_port)`` where ``routers[column]`` is the
    router of the LLC tile in ``column`` and ``inter_tile_port[(a, b)]`` is
    the output-port index on router ``a`` that leads directly to router ``b``.
    """
    noc = config.noc
    tech = config.technology
    columns = noc.llc_tiles

    routers = [
        Router(
            sim,
            f"{name}.r{column}",
            pipeline_latency=noc.llc_router_pipeline,
        )
        for column in range(columns)
    ]

    inter_tile_port: Dict[Tuple[int, int], int] = {}
    for a in range(columns):
        for b in range(columns):
            if a == b:
                continue
            length_mm = floorplan.llc_link_length_mm(a, b)
            latency = max(1, tech.wire_cycles(length_mm))
            in_port = routers[b].add_input_port(
                llc_input_port(config, f"{routers[b].name}.from{a}")
            )
            out_port = routers[a].add_output_port(
                f"to{b}", routers[b], in_port, link_latency=latency, link_length_mm=length_mm
            )
            inter_tile_port[(a, b)] = out_port

    return routers, inter_tile_port
