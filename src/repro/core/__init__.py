"""NOC-Out: the paper's proposed organization.

The package contains the pieces that are specific to the NOC-Out design:

* :mod:`repro.core.floorplan` — the segregated die layout with the LLC row
  in the centre of the die and core columns above and below it;
* :mod:`repro.core.reduction_tree` — the routing-free many-to-one trees that
  carry requests from cores to the centrally located LLC;
* :mod:`repro.core.dispersion_tree` — the one-to-many trees that carry
  responses and snoops back out to the cores;
* :mod:`repro.core.llc_network` — the one-dimensional flattened butterfly
  interconnecting the LLC tiles (and the memory controllers at its edges);
* :mod:`repro.core.nocout` — the composition of the above into a single
  :class:`~repro.noc.network.Network` implementation.
"""

from repro.core.floorplan import NocOutFloorplan, describe_nocout
from repro.core.reduction_tree import build_reduction_tree
from repro.core.dispersion_tree import build_dispersion_tree
from repro.core.nocout import NocOutNetwork

__all__ = [
    "NocOutFloorplan",
    "describe_nocout",
    "build_reduction_tree",
    "build_dispersion_tree",
    "NocOutNetwork",
]
