"""Dispersion trees: one-to-many networks from an LLC bank out to the cores.

A dispersion tree is the logical opposite of a reduction tree (Figure 6b):
a single source (the LLC tile) and multiple destinations (the cores of one
half-column).  Each node is a buffered, flow-controlled demultiplexer that
either ejects a packet to its local core or forwards it farther up the
tree.  Responses are statically prioritised over snoop requests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.config.system import SystemConfig
from repro.sim.kernel import Simulator
from repro.noc.interface import NetworkInterface
from repro.noc.router import Router
from repro.core.reduction_tree import tree_arbiter_factory, tree_input_port

#: (core node id, core network interface) pairs.
CoreBinding = Tuple[int, NetworkInterface]


def build_dispersion_tree(
    sim: Simulator,
    config: SystemConfig,
    name: str,
    core_groups: Sequence[Sequence[CoreBinding]],
    hop_length_mm: float,
) -> Tuple[Router, int, List[Router]]:
    """Build one dispersion tree.

    ``core_groups`` is ordered from the core farthest from the LLC to the
    closest, mirroring :func:`repro.core.reduction_tree.build_reduction_tree`.
    Returns ``(head_node, head_input_port, nodes)`` where ``head_node`` is
    the node adjacent to the LLC tile; the LLC router connects one of its
    output ports to ``head_input_port``.
    """
    if not core_groups:
        raise ValueError("a dispersion tree needs at least one core group")
    noc = config.noc

    # Build nodes from the LLC outward: the head serves the closest group.
    ordered_groups = list(core_groups)[::-1]
    nodes: List[Router] = []
    eject_routes: List[dict] = []

    arbiter_factory = tree_arbiter_factory(config)
    for index, group in enumerate(ordered_groups):
        node = Router(
            sim,
            f"{name}.n{index}",
            pipeline_latency=noc.tree_hop_latency,
            arbiter_factory=arbiter_factory,
        )
        routes = {}
        for node_id, interface in group:
            eject_port = node.add_output_port(
                f"eject{node_id}", interface, 0, link_latency=0, link_length_mm=0.0
            )
            routes[node_id] = eject_port
        nodes.append(node)
        eject_routes.append(routes)

    head = nodes[0]
    head_input = head.add_input_port(tree_input_port(config, f"{head.name}.from_llc"))

    # Chain the nodes outward (away from the LLC).
    for index, node in enumerate(nodes):
        if index + 1 >= len(nodes):
            continue
        downstream = nodes[index + 1]
        in_port = downstream.add_input_port(
            tree_input_port(config, f"{downstream.name}.from_llc_side")
        )
        node.add_output_port(
            "up", downstream, in_port, link_latency=0, link_length_mm=hop_length_mm
        )
        eject_routes[index]["__onward__"] = len(node.output_ports) - 1

    # Optional express link from the head directly to the farthest node.
    express_port = None
    if noc.tree_express_links and len(nodes) >= 4:
        farthest = nodes[-1]
        in_port = farthest.add_input_port(tree_input_port(config, f"{farthest.name}.from_express"))
        express_length = hop_length_mm * (len(nodes) - 1)
        head.add_output_port(
            "express", farthest, in_port, link_latency=0, link_length_mm=express_length
        )
        express_port = len(head.output_ports) - 1

    # Routing tables: a node ejects its own cores and forwards everything
    # destined farther out; the head may use the express link for the cores
    # of the farthest node.
    for index, node in enumerate(nodes):
        for dst, port in eject_routes[index].items():
            if dst == "__onward__":
                continue
            node.set_route(dst, port)
        onward = eject_routes[index].get("__onward__")
        if onward is None:
            continue
        for farther_index in range(index + 1, len(nodes)):
            for dst in eject_routes[farther_index]:
                if dst == "__onward__":
                    continue
                if index == 0 and express_port is not None and farther_index == len(nodes) - 1:
                    node.set_route(dst, express_port)
                else:
                    node.set_route(dst, onward)

    return head, head_input, nodes
