"""32 nm technology parameters used throughout the paper (Section 5.2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyConfig:
    """Process/technology constants for the 32 nm node targeted by the paper.

    The numbers come straight from Section 5.2:

    * 2 GHz at 0.9 V,
    * semi-global wires at 200 nm pitch with power/delay optimised repeaters
      yielding 125 ps/mm and 50 fJ/bit/mm (19 % of which is repeaters),
    * 3.2 mm2 and ~500 mW per MB of LLC (CACTI 6.5),
    * 2.9 mm2 and 1.05 W per ARM Cortex-A15-like core.
    """

    node_nm: int = 32
    voltage_v: float = 0.9
    frequency_ghz: float = 2.0

    # Wires / links
    wire_latency_ps_per_mm: float = 125.0
    wire_energy_fj_per_bit_mm: float = 50.0
    repeater_energy_fraction: float = 0.19
    wire_pitch_nm: float = 200.0

    # Cache macro (per MB)
    cache_area_mm2_per_mb: float = 3.2
    cache_power_w_per_mb: float = 0.5

    # Core (Cortex-A15-like, scaled to 32 nm)
    core_area_mm2: float = 2.9
    core_power_w: float = 1.05

    @property
    def cycle_time_ps(self) -> float:
        """Clock period in picoseconds."""
        return 1000.0 / self.frequency_ghz

    def wire_cycles(self, distance_mm: float) -> int:
        """Clock cycles needed to traverse ``distance_mm`` of repeated wire."""
        if distance_mm <= 0:
            return 0
        latency_ps = distance_mm * self.wire_latency_ps_per_mm
        cycles = latency_ps / self.cycle_time_ps
        return max(1, int(round(cycles + 0.49)))

    def wire_reach_mm_per_cycle(self) -> float:
        """Distance a signal covers on a repeated wire in one clock cycle."""
        return self.cycle_time_ps / self.wire_latency_ps_per_mm

    def link_energy_joules(self, bits: float, distance_mm: float) -> float:
        """Energy to move ``bits`` across ``distance_mm`` of link."""
        return bits * distance_mm * self.wire_energy_fj_per_bit_mm * 1e-15
