"""Top-level system configuration tying cores, caches, NoC and workload."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.config.cache import CacheHierarchyConfig
from repro.config.core import CoreConfig
from repro.config.noc import NocConfig, Topology
from repro.config.technology import TechnologyConfig
from repro.config.workload import WorkloadConfig
from repro.tenancy.placement import WorkloadMap


#: Historical grid table, kept verbatim as exact overrides: these sizes
#: predate the general factorisation below and must keep producing the
#: same grids forever (the factorisation happens to agree, but the table
#: pins the contract independently of the algorithm).
KNOWN_GRIDS = {
    1: (1, 1),
    2: (2, 1),
    4: (2, 2),
    8: (4, 2),
    16: (4, 4),
    32: (8, 4),
    64: (8, 8),
    128: (16, 8),
    256: (16, 16),
    512: (32, 16),
    1024: (32, 32),
    2048: (64, 32),
}

#: Widest columns:rows ratio a derived grid may have before it is rejected
#: as degenerate (a 17x1 "grid" is a chain, not a tiled die).
MAX_GRID_ASPECT_RATIO = 4.0


def default_mesh_dimensions(
    num_cores: int,
    max_aspect_ratio: Optional[float] = MAX_GRID_ASPECT_RATIO,
) -> Tuple[int, int]:
    """Grid dimensions used for tiled (mesh / flattened butterfly) chips.

    Returns ``(columns, rows)`` with ``columns * rows == num_cores`` and
    ``columns >= rows``.  Core counts in :data:`KNOWN_GRIDS` use the table
    verbatim; any other count is factorised as near-square as its divisors
    allow (``rows`` is the largest divisor not above ``sqrt(num_cores)``).
    Factorisations wider than ``max_aspect_ratio`` raise — pass
    ``max_aspect_ratio=None`` to accept a skewed grid anyway.
    """
    if num_cores < 1:
        raise ValueError(
            f"cannot build a tiled grid for {num_cores} cores: the core count "
            "must be a positive integer"
        )
    if num_cores in KNOWN_GRIDS:
        return KNOWN_GRIDS[num_cores]
    rows = 1
    divisor = 1
    while divisor * divisor <= num_cores:
        if num_cores % divisor == 0:
            rows = divisor
        divisor += 1
    cols = num_cores // rows
    if max_aspect_ratio is not None and cols > max_aspect_ratio * rows:
        raise ValueError(
            f"no near-square grid for {num_cores} cores: the best factorisation "
            f"is {cols}x{rows} (aspect ratio {cols / rows:g} exceeds the limit "
            f"{max_aspect_ratio:g}).  Choose a core count with a balanced "
            f"factorisation (e.g. a power of two), or call "
            f"default_mesh_dimensions({num_cores}, max_aspect_ratio=None) to "
            f"accept the skewed {cols}x{rows} grid"
        )
    return (cols, rows)


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one evaluated chip configuration."""

    num_cores: int = 64
    technology: TechnologyConfig = field(default_factory=TechnologyConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    caches: CacheHierarchyConfig = field(default_factory=CacheHierarchyConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    workload: Optional[WorkloadConfig] = None
    num_memory_controllers: int = 4
    seed: int = 42
    #: Multi-tenant core placement; ``None`` (the default, and the
    #: homogeneous case) is omitted from cache-key canonicalisation via
    #: the metadata flag, so every pre-tenancy cache key is unchanged.
    workload_map: Optional[WorkloadMap] = field(
        default=None, metadata={"canonical_omit_none": True}
    )

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if self.num_memory_controllers < 1:
            raise ValueError("num_memory_controllers must be >= 1")
        if self.noc.topology in (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.IDEAL):
            default_mesh_dimensions(self.num_cores)  # validates the grid exists
        if self.workload_map is not None:
            self.workload_map.validate_for(self.num_cores)

    # ------------------------------------------------------------------ #
    @property
    def mesh_dimensions(self) -> Tuple[int, int]:
        """(columns, rows) of the tiled grid for mesh/FBfly/ideal chips."""
        return default_mesh_dimensions(self.num_cores)

    @property
    def active_cores(self) -> int:
        """Cores actually running the workload (scalability limited)."""
        if self.workload is None:
            return self.num_cores
        return self.workload.scaled_cores(self.num_cores)

    @property
    def tile_width_mm(self) -> float:
        """Approximate width of one core tile, derived from area estimates."""
        llc_slice_mb = self.caches.llc_total_bytes / (1024 * 1024) / self.num_cores
        tile_area = (
            self.core.area_mm2
            + llc_slice_mb * self.technology.cache_area_mm2_per_mb
        )
        return tile_area ** 0.5

    def with_workload(self, workload: WorkloadConfig) -> "SystemConfig":
        return replace(self, workload=workload)

    def with_noc(self, noc: NocConfig) -> "SystemConfig":
        return replace(self, noc=noc)

    def with_topology(self, topology: Topology) -> "SystemConfig":
        return replace(self, noc=self.noc.with_topology(topology))

    def with_cores(self, num_cores: int) -> "SystemConfig":
        return replace(self, num_cores=num_cores)

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    def with_workload_map(self, workload_map: Optional[WorkloadMap]) -> "SystemConfig":
        return replace(self, workload_map=workload_map)
