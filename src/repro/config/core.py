"""Core microarchitecture configuration (ARM Cortex-A15-like, Table 1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    """Timing-model parameters for one core.

    The paper models a three-way out-of-order core with a 64-entry ROB and a
    16-entry LSQ.  Our trace-driven timing model consumes these as an issue
    width (peak IPC) and a bound on overlapped memory-level parallelism.
    """

    issue_width: int = 3
    rob_entries: int = 64
    lsq_entries: int = 16
    max_outstanding_data_misses: int = 2
    l1_hit_latency: int = 2
    area_mm2: float = 2.9
    power_w: float = 1.05

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.rob_entries < 1 or self.lsq_entries < 1:
            raise ValueError("ROB/LSQ sizes must be >= 1")
        if self.max_outstanding_data_misses < 1:
            raise ValueError("max_outstanding_data_misses must be >= 1")
