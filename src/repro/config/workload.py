"""Synthetic scale-out workload parameters.

The paper evaluates six CloudSuite-style workloads.  We cannot ship
CloudSuite binaries or Flexus checkpoints, so each workload is replaced by a
parameterised synthetic generator whose parameters capture the traits the
paper identifies as performance-relevant: multi-megabyte instruction
footprints, vast datasets with negligible reuse, rare read-write sharing,
and low ILP/MLP.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of one synthetic scale-out workload.

    Attributes
    ----------
    name:
        Workload name as it appears in the paper's figures.
    instruction_footprint_bytes:
        Size of the active instruction working set.  Multi-MB footprints do
        not fit in the 32 KB L1-I but do fit in the 8 MB LLC, producing the
        frequent core-to-LLC instruction fetches the paper highlights.
    hot_instruction_fraction:
        Fraction of fetch targets that hit a small, L1-resident hot region
        (tight loops); controls the L1-I miss rate.
    dataset_bytes:
        Size of the data working set ("vast dataset"); accesses to it have
        essentially no reuse and mostly miss in the LLC.
    data_reuse_fraction:
        Fraction of data accesses that go to a small per-core hot region
        (stack, metadata) and therefore hit in the L1-D.
    shared_fraction:
        Fraction of data accesses that target a chip-wide shared region;
        together with ``write_fraction`` this sets the snoop rate (Figure 4).
    shared_region_bytes:
        Size of the shared region.
    write_fraction:
        Fraction of data accesses that are stores.
    loads_per_instruction:
        Data accesses per committed instruction.
    mean_block_instructions:
        Average number of instructions per fetch block (between taken
        branches); controls fetch granularity.
    jump_probability:
        Probability that a fetch block ends in a jump to a random location
        in the instruction footprint (vs. sequential fall-through).
    issue_width / mlp:
        Effective ILP and memory-level parallelism of the workload on the
        modelled core (scale-out workloads have low values for both).
    max_cores:
        Scalability limit (Web Frontend and Web Search only scale to 16
        cores in the paper).
    """

    name: str
    instruction_footprint_bytes: int = 4 * 1024 * 1024
    hot_instruction_fraction: float = 0.35
    dataset_bytes: int = 512 * 1024 * 1024
    data_reuse_fraction: float = 0.6
    shared_fraction: float = 0.02
    shared_region_bytes: int = 256 * 1024
    write_fraction: float = 0.25
    loads_per_instruction: float = 0.3
    mean_block_instructions: float = 14.0
    jump_probability: float = 0.25
    issue_width: int = 3
    mlp: int = 2
    max_cores: int = 64

    def __post_init__(self) -> None:
        for field_name in (
            "hot_instruction_fraction",
            "data_reuse_fraction",
            "shared_fraction",
            "write_fraction",
            "jump_probability",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be within [0, 1], got {value}")
        if self.instruction_footprint_bytes <= 0 or self.dataset_bytes <= 0:
            raise ValueError("footprint/dataset sizes must be positive")
        if self.loads_per_instruction < 0:
            raise ValueError("loads_per_instruction must be non-negative")
        if self.mean_block_instructions <= 0:
            raise ValueError("mean_block_instructions must be positive")
        if self.mlp < 1 or self.issue_width < 1 or self.max_cores < 1:
            raise ValueError("issue_width, mlp and max_cores must be >= 1")

    def scaled_cores(self, requested_cores: int) -> int:
        """Number of active cores for a chip with ``requested_cores`` cores."""
        return min(requested_cores, self.max_cores)
