"""Configuration objects for the NOC-Out reproduction.

Everything the simulator, area model and energy model need to know about
the chip is described declaratively here, mirroring Table 1 of the paper.
"""

from repro.config.technology import TechnologyConfig
from repro.config.core import CoreConfig
from repro.config.cache import CacheConfig, CacheHierarchyConfig
from repro.config.noc import (
    NocConfig,
    Topology,
    MESH,
    FLATTENED_BUTTERFLY,
    NOC_OUT,
    IDEAL,
)
from repro.config.workload import WorkloadConfig
from repro.config.system import SystemConfig
from repro.config import presets

__all__ = [
    "TechnologyConfig",
    "CoreConfig",
    "CacheConfig",
    "CacheHierarchyConfig",
    "NocConfig",
    "Topology",
    "MESH",
    "FLATTENED_BUTTERFLY",
    "NOC_OUT",
    "IDEAL",
    "WorkloadConfig",
    "SystemConfig",
    "presets",
]
