"""Cache hierarchy configuration (L1s, NUCA LLC, DRAM)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache array."""

    size_bytes: int
    associativity: int
    block_size: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if self.size_bytes % (self.block_size * self.associativity):
            raise ValueError(
                "size_bytes must be a multiple of block_size * associativity"
            )

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class CacheHierarchyConfig:
    """Full on-chip cache hierarchy: private L1s plus a shared NUCA LLC.

    Table 1: 32 KB L1-I and L1-D per core, 8 MB NUCA LLC (1 MB per LLC tile
    in NOC-Out, 128 KB slice per tile in the tiled designs), 64 B lines and
    four DDR3-1667 memory channels.
    """

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4, 64, 2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4, 64, 2))
    llc_total_bytes: int = 8 * 1024 * 1024
    llc_associativity: int = 16
    llc_bank_latency: int = 8
    block_size: int = 64
    mshr_entries: int = 16
    dram_latency_cycles: int = 120
    dram_channels: int = 4
    dram_bandwidth_bytes_per_cycle: float = 8.0

    def llc_bank_config(self, num_banks: int) -> CacheConfig:
        """Geometry of one LLC bank when the LLC is split ``num_banks`` ways."""
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if self.llc_total_bytes % num_banks:
            raise ValueError("LLC capacity must divide evenly across banks")
        return CacheConfig(
            size_bytes=self.llc_total_bytes // num_banks,
            associativity=self.llc_associativity,
            block_size=self.block_size,
            hit_latency=self.llc_bank_latency,
        )
