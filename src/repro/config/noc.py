"""Network-on-chip configuration for the evaluated organizations."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional, Union


class Topology(str, Enum):
    """The paper's four interconnect organizations.

    The enum is only the *config-level identifier* of the built-in fabrics:
    everything that used to dispatch on it (network construction, system
    maps, area descriptors) now goes through the fabric-plugin registry in
    :mod:`repro.scenarios.registry`, keyed by :func:`topology_key`.  A
    fabric registered from outside this package stores its registry name as
    a plain string in :attr:`NocConfig.topology`; the enum is never
    extended.
    """

    MESH = "mesh"
    FLATTENED_BUTTERFLY = "flattened_butterfly"
    NOC_OUT = "noc_out"
    IDEAL = "ideal"


MESH = Topology.MESH
FLATTENED_BUTTERFLY = Topology.FLATTENED_BUTTERFLY
NOC_OUT = Topology.NOC_OUT
IDEAL = Topology.IDEAL

#: A topology identifier: one of the paper's four built-ins (enum) or the
#: registry name of a plugin fabric (plain string).
TopologyLike = Union[Topology, str]


def topology_key(topology: TopologyLike) -> str:
    """The registry/dispatch key of a topology identifier.

    Built-in enum members key by their string value (``Topology.MESH`` ->
    ``"mesh"``); plugin fabrics carry their registry name directly.  Cache
    keys are unaffected: the engine's canonical serialisation already
    reduced enum members to their values, and a plain string is its own
    value.
    """
    if isinstance(topology, Topology):
        return topology.value
    return str(topology)


@dataclass(frozen=True)
class NocConfig:
    """Parameters of the on-chip network (Table 1, "NOC Organizations").

    ``link_width_bits`` is the flit width; the area-normalised study
    (Figure 9) shrinks it for the mesh and flattened butterfly until their
    NoC area matches NOC-Out's 2.5 mm2 budget.

    ``topology`` may be a :class:`Topology` member (the built-ins) or the
    registry name of a plugin fabric as a plain string; use
    :func:`topology_key` when a flat string is needed.
    """

    topology: TopologyLike = Topology.MESH
    link_width_bits: int = 128

    # Mesh parameters
    mesh_router_pipeline: int = 2
    mesh_link_latency: int = 1
    mesh_vcs_per_port: int = 3
    mesh_vc_depth_flits: int = 5

    # Flattened butterfly parameters
    fbfly_router_pipeline: int = 3
    fbfly_vcs_per_port: int = 3
    fbfly_vc_depth_flits: int = 8
    fbfly_tiles_per_cycle: float = 2.0

    # NOC-Out tree networks.  ``tree_concentration`` doubles as the generic
    # concentration knob for fabrics that share one router between several
    # endpoints (the NOC-Out trees and the concentrated mesh plugin); it
    # predates the plugin layer, and renaming it would invalidate every
    # cached result, so the historical name stays.
    tree_hop_latency: int = 1
    tree_vcs_per_port: int = 2
    tree_vc_depth_flits: int = 3
    tree_concentration: int = 1
    tree_express_links: bool = False
    tree_arbitration: str = "static_priority"

    # NOC-Out LLC network (1-D flattened butterfly across LLC tiles)
    llc_router_pipeline: int = 3
    llc_vcs_per_port: int = 3
    llc_vc_depth_flits: int = 5
    llc_tiles: int = 8
    llc_banks_per_tile: int = 2

    # Chiplet / network-on-interposer fabric (the ``chiplet`` plugin).
    # All four knobs default to ``None`` ("use the fabric's defaults") and
    # are omitted from cache-key canonicalisation when unset, so every
    # pre-chiplet cache key stays byte-identical — the same pattern as
    # ``SystemConfig.workload_map``.  Divisibility against the core count
    # is validated by the fabric (``repro.fabrics.chiplet.chiplet_params``),
    # which needs the whole system config.
    chiplet_count: Optional[int] = field(
        default=None, metadata={"canonical_omit_none": True}
    )
    chiplet_concentration: Optional[int] = field(
        default=None, metadata={"canonical_omit_none": True}
    )
    chiplet_latency_increase: Optional[int] = field(
        default=None, metadata={"canonical_omit_none": True}
    )
    chiplet_io_die: Optional[bool] = field(
        default=None, metadata={"canonical_omit_none": True}
    )

    def __post_init__(self) -> None:
        if self.link_width_bits < 8:
            raise ValueError("link_width_bits must be at least 8")
        if self.llc_tiles < 1 or self.llc_banks_per_tile < 1:
            raise ValueError("LLC tiling parameters must be positive")
        if self.tree_concentration < 1:
            raise ValueError("tree_concentration must be >= 1")
        if self.tree_arbitration not in ("static_priority", "round_robin"):
            raise ValueError(
                "tree_arbitration must be 'static_priority' or 'round_robin', "
                f"got {self.tree_arbitration!r}"
            )
        if self.chiplet_count is not None and self.chiplet_count < 1:
            raise ValueError(f"chiplet_count must be >= 1, got {self.chiplet_count}")
        if self.chiplet_concentration is not None and self.chiplet_concentration < 1:
            raise ValueError(
                f"chiplet_concentration must be >= 1, got {self.chiplet_concentration}"
            )
        if self.chiplet_latency_increase is not None and self.chiplet_latency_increase < 0:
            raise ValueError(
                "chiplet_latency_increase must be >= 0, "
                f"got {self.chiplet_latency_increase}"
            )

    @property
    def llc_banks(self) -> int:
        """Total number of LLC banks in the NOC-Out organization."""
        return self.llc_tiles * self.llc_banks_per_tile

    def with_link_width(self, link_width_bits: int) -> "NocConfig":
        """Return a copy with a different flit/link width (Figure 9 study)."""
        return replace(self, link_width_bits=link_width_bits)

    def with_topology(self, topology: TopologyLike) -> "NocConfig":
        """Return a copy targeting a different topology (enum or plugin name)."""
        return replace(self, topology=topology)
