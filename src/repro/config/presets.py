"""Preset configurations reproducing Table 1 and the six CloudSuite workloads.

The workload parameters are calibrated so that the synthetic generators land
in the regimes the paper characterises (Section 2.1, Figure 4, Section 6):

* all workloads have multi-MB instruction footprints and vast datasets;
* Data Serving has the lowest ILP/MLP and is the most sensitive to LLC
  access latency (largest mesh -> flattened-butterfly gain in Figure 7);
* Web Frontend and Web Search only scale to 16 cores;
* the average fraction of LLC accesses that trigger a snoop is about 2 %
  (Figure 4), with per-workload values between roughly 0.5 % and 4.5 %.
"""

from __future__ import annotations

from typing import Dict, List

from dataclasses import replace

from repro.config.noc import NocConfig, Topology
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.scenarios.registry import register_workload, workloads as _workload_registry

MB = 1024 * 1024
GB = 1024 * MB

#: Names of the six evaluated workloads, in the order used by the figures.
WORKLOAD_NAMES: List[str] = [
    "Data Serving",
    "MapReduce-C",
    "MapReduce-W",
    "SAT Solver",
    "Web Frontend",
    "Web Search",
]

#: The two workloads used in Figure 1 (performance vs. core count).
FIGURE1_WORKLOADS: List[str] = ["Data Serving", "MapReduce-W"]


@register_workload("Data Serving")
def data_serving() -> WorkloadConfig:
    """Cassandra-style key-value serving: lowest ILP/MLP, latency bound."""
    return WorkloadConfig(
        name="Data Serving",
        instruction_footprint_bytes=5 * MB,
        hot_instruction_fraction=0.22,
        dataset_bytes=2 * GB,
        data_reuse_fraction=0.97,
        shared_fraction=0.004,
        shared_region_bytes=32 * 1024,
        write_fraction=0.28,
        loads_per_instruction=0.34,
        mean_block_instructions=12.0,
        jump_probability=0.30,
        issue_width=2,
        mlp=1,
        max_cores=64,
    )


@register_workload("MapReduce-C")
def mapreduce_c() -> WorkloadConfig:
    """MapReduce text classification: batch, modest locality."""
    return WorkloadConfig(
        name="MapReduce-C",
        instruction_footprint_bytes=3 * MB,
        hot_instruction_fraction=0.80,
        dataset_bytes=1 * GB,
        data_reuse_fraction=0.94,
        shared_fraction=0.010,
        shared_region_bytes=32 * 1024,
        write_fraction=0.26,
        loads_per_instruction=0.30,
        mean_block_instructions=15.0,
        jump_probability=0.22,
        issue_width=3,
        mlp=2,
        max_cores=64,
    )


@register_workload("MapReduce-W")
def mapreduce_w() -> WorkloadConfig:
    """MapReduce word count: batch, slightly better instruction locality."""
    return WorkloadConfig(
        name="MapReduce-W",
        instruction_footprint_bytes=3 * MB,
        hot_instruction_fraction=0.82,
        dataset_bytes=1 * GB,
        data_reuse_fraction=0.95,
        shared_fraction=0.008,
        shared_region_bytes=32 * 1024,
        write_fraction=0.24,
        loads_per_instruction=0.28,
        mean_block_instructions=15.0,
        jump_probability=0.20,
        issue_width=3,
        mlp=2,
        max_cores=64,
    )


@register_workload("SAT Solver")
def sat_solver() -> WorkloadConfig:
    """Cloud9 SAT solver: batch, pointer chasing over a large working set."""
    return WorkloadConfig(
        name="SAT Solver",
        instruction_footprint_bytes=2 * MB,
        hot_instruction_fraction=0.80,
        dataset_bytes=4 * GB,
        data_reuse_fraction=0.90,
        shared_fraction=0.014,
        shared_region_bytes=48 * 1024,
        write_fraction=0.22,
        loads_per_instruction=0.36,
        mean_block_instructions=13.0,
        jump_probability=0.24,
        issue_width=3,
        mlp=2,
        max_cores=64,
    )


@register_workload("Web Frontend")
def web_frontend() -> WorkloadConfig:
    """SPECweb2009 e-banking front end: 16-core scalability limit."""
    return WorkloadConfig(
        name="Web Frontend",
        instruction_footprint_bytes=6 * MB,
        hot_instruction_fraction=0.50,
        dataset_bytes=1 * GB,
        data_reuse_fraction=0.95,
        shared_fraction=0.022,
        shared_region_bytes=32 * 1024,
        write_fraction=0.30,
        loads_per_instruction=0.32,
        mean_block_instructions=13.0,
        jump_probability=0.28,
        issue_width=2,
        mlp=2,
        max_cores=16,
    )


@register_workload("Web Search")
def web_search() -> WorkloadConfig:
    """Nutch/Lucene index serving: 16-core scalability limit."""
    return WorkloadConfig(
        name="Web Search",
        instruction_footprint_bytes=4 * MB,
        hot_instruction_fraction=0.80,
        dataset_bytes=2 * GB,
        data_reuse_fraction=0.96,
        shared_fraction=0.010,
        shared_region_bytes=32 * 1024,
        write_fraction=0.20,
        loads_per_instruction=0.30,
        mean_block_instructions=14.0,
        jump_probability=0.22,
        issue_width=3,
        mlp=2,
        max_cores=16,
    )


def workload(name: str) -> WorkloadConfig:
    """Return the :class:`WorkloadConfig` registered under ``name``.

    Thin shim over the workload registry
    (:data:`repro.scenarios.registry.workloads`): the six presets above are
    seeded by their decorators, and anything added with
    ``@register_workload`` elsewhere resolves here too.
    """
    return _workload_registry.create(name)


def all_workloads() -> Dict[str, WorkloadConfig]:
    """All registered workload presets keyed by name (the paper's six, plus
    any extras registered with ``@register_workload``)."""
    return {name: _workload_registry.create(name) for name in _workload_registry.names()}


# --------------------------------------------------------------------------- #
# Chip configurations (Table 1)
#
# These are plain factories; registry wiring lives with the fabric plugins
# in ``repro.fabrics`` (each plugin's ``build_system`` delegates here), so
# ``build_system("mesh", ...)`` and ``presets.mesh_system(...)`` stay one
# implementation.
# --------------------------------------------------------------------------- #
def baseline_system(
    topology: Topology = Topology.MESH,
    num_cores: int = 64,
    link_width_bits: int = 128,
    seed: int = 42,
) -> SystemConfig:
    """The 64-core CMP of Table 1 with the requested NoC organization."""
    noc = NocConfig(topology=topology, link_width_bits=link_width_bits)
    return SystemConfig(num_cores=num_cores, noc=noc, seed=seed)


def mesh_system(num_cores: int = 64, **kwargs) -> SystemConfig:
    """Tiled mesh baseline (Figure 2)."""
    return baseline_system(Topology.MESH, num_cores=num_cores, **kwargs)


def flattened_butterfly_system(num_cores: int = 64, **kwargs) -> SystemConfig:
    """Tiled chip with a two-dimensional flattened butterfly (Figure 3)."""
    return baseline_system(Topology.FLATTENED_BUTTERFLY, num_cores=num_cores, **kwargs)


def nocout_system(num_cores: int = 64, **kwargs) -> SystemConfig:
    """The proposed NOC-Out organization (Figure 5).

    Up to 128 cores the LLC row keeps the paper's 8 tiles (Table 1 — and
    the cache keys of every published configuration).  Beyond that the row
    widens to 16 tiles so the per-column core count (tree depth) keeps
    scaling sublinearly on 256/512-core chips.
    """
    config = baseline_system(Topology.NOC_OUT, num_cores=num_cores, **kwargs)
    if num_cores > 128:
        config = config.with_noc(replace(config.noc, llc_tiles=16))
    return config


def ideal_system(num_cores: int = 64, **kwargs) -> SystemConfig:
    """Idealized interconnect exposing only wire delay (Figure 1)."""
    return baseline_system(Topology.IDEAL, num_cores=num_cores, **kwargs)


def table1_summary() -> Dict[str, str]:
    """Human-readable rendition of Table 1 (evaluation parameters)."""
    config = baseline_system()
    tech = config.technology
    cache = config.caches
    noc = config.noc
    return {
        "Technology": f"{tech.node_nm}nm, {tech.voltage_v}V, {tech.frequency_ghz:g}GHz",
        "CMP features": (
            f"{config.num_cores} cores, "
            f"{cache.llc_total_bytes // MB}MB NUCA LLC, "
            f"{cache.dram_channels} DDR3-1667 memory channels"
        ),
        "Core": (
            f"ARM Cortex-A15-like: {config.core.issue_width}-way out-of-order, "
            f"{config.core.rob_entries}-entry ROB, {config.core.lsq_entries}-entry LSQ, "
            f"{config.core.area_mm2}mm2, ~{config.core.power_w}W"
        ),
        "Cache per MB": (
            f"{tech.cache_area_mm2_per_mb}mm2, "
            f"{int(tech.cache_power_w_per_mb * 1000)}mW"
        ),
        "Mesh": (
            f"Router: 5 ports, {noc.mesh_vcs_per_port} VCs/port, "
            f"{noc.mesh_vc_depth_flits} flits/VC, "
            f"{noc.mesh_router_pipeline}-stage speculative pipeline. "
            f"Link: {noc.mesh_link_latency} cycle"
        ),
        "Flattened Butterfly": (
            f"Router: 15 ports, {noc.fbfly_vcs_per_port} VCs/port, variable flits/VC, "
            f"{noc.fbfly_router_pipeline} stage pipeline. "
            f"Link: up to {noc.fbfly_tiles_per_cycle:g} tiles per cycle"
        ),
        "NOC-Out": (
            f"Reduction/Dispersion networks: 2 ports/router, "
            f"{noc.tree_vcs_per_port} VCs/port, {noc.tree_hop_latency} cycle/hop (inc. link). "
            f"LLC network: flattened butterfly over {noc.llc_tiles} tiles, "
            f"{noc.llc_banks_per_tile} banks/tile"
        ),
    }
