"""The fabric-plugin protocol.

A *fabric plugin* packages everything the rest of the system needs to know
about one interconnect organization:

``name``
    The registry key.  Built-in plugins use the matching
    :class:`~repro.config.noc.Topology` value; new fabrics pick any fresh
    name and store it as a plain string in ``NocConfig.topology``.
``build_system(**kwargs) -> SystemConfig``
    The system preset — what ``SweepSpec`` coordinates and
    :func:`repro.scenarios.registry.build_system` expand through.
``build_system_map(config) -> SystemMap``
    Node-id assignment, placement and address interleaving.
``build_network(sim, config, system_map) -> Network``
    The simulated interconnect.
``describe(config) -> TopologyDescriptor``
    The static router/link inventory consumed by the area and energy
    models (Figures 8/9) — no simulator involved.

Registering a plugin with ``@register_topology`` is the *only* wiring step:
``chip.builder.build_network``, ``chip.system_map.build_system_map`` and
``noc.topology.describe_topology`` all dispatch through the registry, so a
new fabric is one self-contained module (see :mod:`repro.fabrics.cmesh`
for a complete example that touches no dispatch site).

This module must stay import-light: it is imported by
:mod:`repro.scenarios.registry` while *registering* plugins, so importing
simulation modules here would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids import cycles
    from repro.chip.system_map import SystemMap
    from repro.config.system import SystemConfig
    from repro.noc.network import Network
    from repro.noc.topology import TopologyDescriptor
    from repro.sim.kernel import Simulator


@runtime_checkable
class FabricPlugin(Protocol):
    """Structural protocol every registered fabric satisfies."""

    name: str

    def build_system(self, **kwargs) -> "SystemConfig":
        """Build the (workload-less) system preset for this fabric."""
        ...

    def build_system_map(self, config: "SystemConfig") -> "SystemMap":
        """Build the node placement / address interleaving for ``config``."""
        ...

    def build_network(
        self, sim: "Simulator", config: "SystemConfig", system_map: "SystemMap"
    ) -> "Network":
        """Instantiate the simulated interconnect for ``config``."""
        ...

    def describe(self, config: "SystemConfig") -> "TopologyDescriptor":
        """Static router/link inventory for the area and energy models."""
        ...


#: Hooks a full plugin must provide beyond ``build_system``.
_CHIP_HOOKS = ("build_system_map", "build_network", "describe")


class SystemFactoryFabric:
    """Adapter wrapping a bare ``**kwargs -> SystemConfig`` registration.

    The pre-plugin ``@register_topology`` form registered plain system
    factories; they remain useful for seeding sweeps (a factory may return
    configs whose *topology* belongs to a full plugin), so they are wrapped
    here rather than rejected.  Chip-building hooks raise with a pointer to
    the full protocol.
    """

    def __init__(self, name: str, factory: Callable) -> None:
        self.name = name
        self._factory = factory

    def build_system(self, **kwargs) -> "SystemConfig":
        return self._factory(**kwargs)

    def _unsupported(self, hook: str):
        raise NotImplementedError(
            f"topology {self.name!r} was registered as a bare system factory, "
            f"which cannot {hook}; register a full FabricPlugin (see "
            "repro.fabrics.base) to build chips with it"
        )

    def build_system_map(self, config):
        self._unsupported("build a system map")

    def build_network(self, sim, config, system_map):
        self._unsupported("build a network")

    def describe(self, config):
        self._unsupported("describe its geometry")

    def __repr__(self) -> str:
        return f"SystemFactoryFabric({self.name!r}, {self._factory!r})"


def coerce_fabric_plugin(name: str, obj) -> FabricPlugin:
    """Normalise a ``@register_topology`` argument into a plugin instance.

    Accepts a plugin instance, a plugin class (instantiated with no
    arguments), or a bare system factory (wrapped in
    :class:`SystemFactoryFabric`).  A plugin without a ``name`` gets the
    registration name; a plugin that already carries one keeps it (dispatch
    is keyed by the *registry* name, so an instance registered under an
    alias is not mutated — and frozen/slotted plugins stay untouched).
    """
    if isinstance(obj, type):
        obj = obj()
    missing = [
        hook for hook in _CHIP_HOOKS + ("build_system",) if not hasattr(obj, hook)
    ]
    if not missing:
        if getattr(obj, "name", None) is None:
            obj.name = name
        return obj
    if callable(obj):
        return SystemFactoryFabric(name, obj)
    raise TypeError(
        f"cannot register {obj!r} as topology {name!r}: expected a FabricPlugin "
        f"(missing {missing}) or a callable system factory"
    )
