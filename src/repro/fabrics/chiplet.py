"""Chiplet / network-on-interposer fabric: the 1024-2048-core design point.

A flat mesh's diameter grows with the square root of the core count, so the
paper's scale-out argument (Sections 2 and 7.1) gets most interesting
exactly where a monolithic die stops being buildable.  This plugin models
the contemporary answer: several identical CPU chiplets, each with its own
small NoC mesh, bridged by a network-on-interposer (NoI).  The two gem5
exemplars in SNIPPETS.md are the direct models:

* ``SimpleChiplet`` — per-chiplet NoC routers concentrated onto NoI
  routers (the ``concentration`` knob here: how many tiles funnel through
  one boundary router's uplink);
* ``Mesh_IO_Center`` — AMD-Zen-3-style organisation where crossing links
  pay ``chiplet_latency_increase`` extra cycles and the memory controllers
  live on a central IO die instead of the CPU chiplets.

Structure built by :class:`ChipletNetwork`:

* one 5-port mesh router per tile (core + LLC slice), XY-routed inside the
  chiplet, exactly like the baseline mesh;
* every group of ``concentration`` consecutive tiles shares one *boundary
  router* (the group's first tile) holding an uplink to the chiplet's NoI
  router; remote-bound traffic is spread over the boundary routers by a
  destination-keyed hash so every router in a chiplet agrees on the exit
  (pure XY toward one coordinate — loop- and deadlock-free);
* the NoI routers form a near-square mesh over the chiplet grid; NoI links
  and up/down links are *crossing* links and pay the extra latency;
* with ``chiplet_io_die=True`` (the default) a central IO-die router is
  star-connected to every NoI router and hosts all memory controllers;
  otherwise MC ``i`` attaches to NoI router ``i % chiplet_count``.

Like :mod:`repro.fabrics.cmesh`, the module is self-contained and wires in
purely through ``@register_topology`` — no dispatch site changes.  The
four knobs live on :class:`~repro.config.noc.NocConfig` as optional fields
(``None`` means "fabric default" and is canonically omitted, so adding the
fabric invalidated no cache key), which also makes each knob a sweepable
axis for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.chip.system_map import SystemMap, TiledSystemMap
from repro.config.noc import NocConfig
from repro.config.system import SystemConfig, default_mesh_dimensions
from repro.noc.buffer import InputPort
from repro.noc.network import Network
from repro.noc.router import Router
from repro.noc.vector import VectorRouter, VectorTransportEngine, resolve_transport
from repro.noc.topology import (
    GridGeometry,
    LinkSpec,
    RouterSpec,
    TopologyDescriptor,
)
from repro.scenarios.registry import register_topology
from repro.sim.kernel import Simulator

Coordinate = Tuple[int, int]

#: Registry name (and the string stored in ``NocConfig.topology``).
CHIPLET_NAME = "chiplet"
#: Default number of CPU chiplets (a 2x2 NoI mesh).
DEFAULT_CHIPLET_COUNT = 4
#: Default tiles per boundary router (SimpleChiplet's ``conc_factor``).
DEFAULT_CONCENTRATION = 16
#: Default extra cycles on every chiplet-crossing link
#: (Mesh_IO_Center's ``chiplet_latency_increase``).
DEFAULT_LATENCY_INCREASE = 4

_DIRECTIONS = {
    "E": (1, 0),
    "W": (-1, 0),
    "S": (0, 1),
    "N": (0, -1),
}


@dataclass(frozen=True)
class ChipletParams:
    """Validated geometry of one chiplet configuration."""

    count: int  #: number of CPU chiplets
    ccols: int  #: NoI (chiplet-grid) columns
    crows: int  #: NoI (chiplet-grid) rows
    cores_per_chiplet: int
    lcols: int  #: per-chiplet mesh columns
    lrows: int  #: per-chiplet mesh rows
    concentration: int  #: tiles per boundary router
    groups: int  #: boundary routers (uplinks) per chiplet
    latency_increase: int  #: extra cycles on crossing links
    io_die: bool  #: memory controllers on a central IO die


def chiplet_params(config: SystemConfig) -> ChipletParams:
    """Resolve and validate the chiplet knobs of ``config``.

    ``None`` knobs take the fabric defaults; every degenerate combination
    raises a one-line ``ValueError`` naming the offending numbers.
    """
    noc = config.noc
    count = noc.chiplet_count if noc.chiplet_count is not None else DEFAULT_CHIPLET_COUNT
    concentration = (
        noc.chiplet_concentration
        if noc.chiplet_concentration is not None
        else DEFAULT_CONCENTRATION
    )
    latency_increase = (
        noc.chiplet_latency_increase
        if noc.chiplet_latency_increase is not None
        else DEFAULT_LATENCY_INCREASE
    )
    io_die = noc.chiplet_io_die if noc.chiplet_io_die is not None else True
    if count < 1:
        raise ValueError(f"{CHIPLET_NAME}: chiplet count must be >= 1, got {count}")
    if config.num_cores % count:
        raise ValueError(
            f"{CHIPLET_NAME}: {config.num_cores} cores do not divide evenly "
            f"over {count} chiplets"
        )
    cores_per_chiplet = config.num_cores // count
    ccols, crows = default_mesh_dimensions(count)
    lcols, lrows = default_mesh_dimensions(cores_per_chiplet)
    if concentration < 1:
        raise ValueError(
            f"{CHIPLET_NAME}: concentration must be >= 1, got {concentration}"
        )
    if concentration > cores_per_chiplet:
        raise ValueError(
            f"{CHIPLET_NAME}: concentration {concentration} exceeds the "
            f"{cores_per_chiplet} cores per chiplet"
        )
    if cores_per_chiplet % concentration:
        raise ValueError(
            f"{CHIPLET_NAME}: {cores_per_chiplet} cores per chiplet do not "
            f"divide evenly over the concentration {concentration}"
        )
    if latency_increase < 0:
        raise ValueError(
            f"{CHIPLET_NAME}: latency increase must be >= 0, got {latency_increase}"
        )
    return ChipletParams(
        count=count,
        ccols=ccols,
        crows=crows,
        cores_per_chiplet=cores_per_chiplet,
        lcols=lcols,
        lrows=lrows,
        concentration=concentration,
        groups=cores_per_chiplet // concentration,
        latency_increase=latency_increase,
        io_die=io_die,
    )


class ChipletSystemMap(TiledSystemMap):
    """Two-level tiled layout: tile -> chiplet -> NoI.

    Logical node structure is identical to :class:`TiledSystemMap` (node
    ``i`` holds core ``i`` plus LLC slice ``i``; memory controllers follow
    the tiles) — only placement and distance accounting are chiplet-aware.
    Chiplets tile the global grid: chiplet ``k`` sits at chiplet-grid
    coordinate ``(k % ccols, k // ccols)`` and its tiles fill an
    ``lcols x lrows`` sub-grid.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.params = chiplet_params(config)
        p = self.params
        super().__init__(config, grid=(p.ccols * p.lcols, p.crows * p.lrows))

    # --- two-level placement ------------------------------------------- #
    def chiplet_of(self, node_id: int) -> int:
        """Which chiplet a tile node lives on."""
        self._check_core(node_id)
        return node_id // self.params.cores_per_chiplet

    def chiplet_coord(self, chiplet: int) -> Coordinate:
        """Chiplet-grid (NoI) coordinate of chiplet ``chiplet``."""
        if not 0 <= chiplet < self.params.count:
            raise ValueError(f"chiplet index {chiplet} out of range")
        return (chiplet % self.params.ccols, chiplet // self.params.ccols)

    def local_index(self, node_id: int) -> int:
        self._check_core(node_id)
        return node_id % self.params.cores_per_chiplet

    def local_coord(self, node_id: int) -> Coordinate:
        """Coordinate of a tile inside its own chiplet's mesh."""
        local = self.local_index(node_id)
        return (local % self.params.lcols, local // self.params.lcols)

    def tile_coord(self, node_id: int) -> Coordinate:
        cx, cy = self.chiplet_coord(self.chiplet_of(node_id))
        lx, ly = self.local_coord(node_id)
        return (cx * self.params.lcols + lx, cy * self.params.lrows + ly)

    # --- boundary routers ---------------------------------------------- #
    def boundary_group(self, node_id: int) -> int:
        """Which boundary-router group a tile belongs to (for descending)."""
        return self.local_index(node_id) // self.params.concentration

    def boundary_node(self, chiplet: int, group: int) -> int:
        """The tile whose router holds group ``group``'s uplink."""
        if not 0 <= group < self.params.groups:
            raise ValueError(f"boundary group {group} out of range")
        return (
            chiplet * self.params.cores_per_chiplet
            + group * self.params.concentration
        )

    def uplink_node_for(self, node_id: int, dst: int) -> int:
        """Boundary tile ``node_id``'s chiplet exits through to reach ``dst``.

        Destination-keyed (``dst % groups``) so every router in the chiplet
        agrees on one exit coordinate: the ascending path is plain XY toward
        a single target, which keeps the two-level routing loop-free.
        """
        return self.boundary_node(self.chiplet_of(node_id), dst % self.params.groups)

    def mc_host_chiplet(self, index: int) -> int:
        """NoI router hosting MC ``index`` when there is no IO die."""
        if not 0 <= index < self.num_memory_controllers:
            raise ValueError(f"memory controller index {index} out of range")
        return index % self.params.count

    # --- distance / hop accounting ------------------------------------- #
    def crosses_chiplet(self, a: int, b: int) -> bool:
        """Whether a message between nodes ``a`` and ``b`` leaves its die.

        Memory controllers live on the interposer (IO die or NoI routers),
        so any tile<->MC path crosses; MC<->MC traffic never enters a CPU
        chiplet.
        """
        a_tile = a < self.num_cores
        b_tile = b < self.num_cores
        if a_tile and b_tile:
            return self.chiplet_of(a) != self.chiplet_of(b)
        return a_tile != b_tile

    def hop_distance(self, a: int, b: int) -> int:
        """Routers a packet from ``a`` to ``b`` traverses (= ``packet.hops``).

        Every router on the path forwards the packet once (the last one into
        the ejection interface), so the count is link traversals plus one;
        same-node traffic never enters the network and scores 0.
        """
        if a == b:
            return 0
        p = self.params
        if a < self.num_cores and b < self.num_cores:
            if self.chiplet_of(a) == self.chiplet_of(b):
                return self._local_manhattan(a, b) + 1
            up = self.uplink_node_for(a, b)
            down = self.boundary_node(self.chiplet_of(b), self.boundary_group(b))
            noi = self._noi_manhattan(self.chiplet_of(a), self.chiplet_of(b))
            ascend = self._local_manhattan(a, up) + 1
            descend = self._local_manhattan(down, b) + 1
            return ascend + noi + descend + 1
        if a < self.num_cores:  # tile -> memory controller
            up = self.uplink_node_for(a, b)
            ascend = self._local_manhattan(a, up) + 1
            if p.io_die:
                return ascend + 2  # NoI router, IO-die router
            host = self.mc_host_chiplet(b - self.num_cores)
            return ascend + self._noi_manhattan(self.chiplet_of(a), host) + 1
        if b < self.num_cores:  # memory controller -> tile
            down = self.boundary_node(self.chiplet_of(b), self.boundary_group(b))
            descend = 1 + self._local_manhattan(down, b) + 1
            if p.io_die:
                return 1 + 1 + descend - 1  # IO die, NoI router, then descend
            host = self.mc_host_chiplet(a - self.num_cores)
            return 1 + self._noi_manhattan(host, self.chiplet_of(b)) + descend - 1
        # MC -> MC: one IO-die hop, or across the NoI between host routers.
        if p.io_die:
            return 1
        hosts = (
            self.mc_host_chiplet(a - self.num_cores),
            self.mc_host_chiplet(b - self.num_cores),
        )
        return self._noi_manhattan(*hosts) + 1

    def _local_manhattan(self, a: int, b: int) -> int:
        (ax, ay), (bx, by) = self.local_coord(a), self.local_coord(b)
        return abs(ax - bx) + abs(ay - by)

    def _noi_manhattan(self, chiplet_a: int, chiplet_b: int) -> int:
        (ax, ay), (bx, by) = self.chiplet_coord(chiplet_a), self.chiplet_coord(chiplet_b)
        return abs(ax - bx) + abs(ay - by)


class ChipletNetwork(Network):
    """Per-chiplet XY meshes bridged by an interposer mesh (plus IO die)."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        system_map: ChipletSystemMap,
        name: str = CHIPLET_NAME,
    ) -> None:
        self.map = system_map
        p = system_map.params
        super().__init__(
            sim,
            config,
            name,
            list(range(config.num_cores)) + system_map.mc_node_ids,
        )
        self.params = p
        self.tile_mm = config.tile_width_mm
        #: Interposer hop length: the width of one chiplet die.
        self.chiplet_mm = p.lcols * self.tile_mm
        self.crossing_latency = self.noc.mesh_link_latency + p.latency_increase

        self._tile_router: List[Router] = []
        self._noi_router: List[Router] = []
        self.io_router: Router = None
        self._dir_port: Dict[Tuple[int, str], int] = {}  # (tile node, direction)
        self._noi_dir_port: Dict[Tuple[int, str], int] = {}  # (chiplet, direction)
        self._eject_port: Dict[int, int] = {}  # tile node -> its router's port
        self._up_port: Dict[int, int] = {}  # boundary node -> up port
        self._down_port: Dict[Tuple[int, int], int] = {}  # (chiplet, group)
        self._noi_io_port: Dict[int, int] = {}  # chiplet -> port toward IO die
        self._io_to_noi_port: Dict[int, int] = {}  # chiplet -> IO-die port
        self._mc_eject: Dict[int, int] = {}  # mc node -> eject port on its host
        #: Crossing output ports by kind, exposed for tests and diagnostics.
        self.uplink_ports: List = []
        self.downlink_ports: List = []
        self.noi_mesh_ports: List = []
        self.io_ports: List = []

        # Transport backend (REPRO_TRANSPORT), same wiring as MeshNetwork:
        # every router — tile, NoI and IO die — joins one vector engine.
        self.transport = resolve_transport()
        self._transport_engine = None
        self._router_cls = Router
        if self.transport == "vector":
            self._router_cls = VectorRouter
            self._transport_engine = VectorTransportEngine(sim)

        self._build_tile_routers()
        self._build_noi_routers()
        self._build_uplinks()
        self._build_io_die()
        self._attach_interfaces()
        self._build_routing_tables()
        if self._transport_engine is not None:
            self._transport_engine.finalize(self.routers, self.interfaces.values())

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _new_input_port(self, label: str) -> InputPort:
        return InputPort(
            num_vcs=self.noc.mesh_vcs_per_port,
            vc_depth_flits=self.noc.mesh_vc_depth_flits,
            name=label,
        )

    def _build_tile_routers(self) -> None:
        p = self.params
        for node in range(self.system.num_cores):
            chiplet = node // p.cores_per_chiplet
            lx, ly = self.map.local_coord(node)
            router = self._router_cls(
                self.sim,
                f"{self.name}.c{chiplet}.r{lx}_{ly}",
                pipeline_latency=self.noc.mesh_router_pipeline,
            )
            self._tile_router.append(router)
            self.routers.append(router)
        # Intra-chiplet mesh links (never crossing).
        for node in range(self.system.num_cores):
            chiplet = node // p.cores_per_chiplet
            lx, ly = self.map.local_coord(node)
            router = self._tile_router[node]
            for direction, (dx, dy) in _DIRECTIONS.items():
                nx, ny = lx + dx, ly + dy
                if not (0 <= nx < p.lcols and 0 <= ny < p.lrows):
                    continue
                neighbor_node = (
                    chiplet * p.cores_per_chiplet + ny * p.lcols + nx
                )
                neighbor = self._tile_router[neighbor_node]
                in_port = neighbor.add_input_port(
                    self._new_input_port(f"{neighbor.name}.in_{_opposite(direction)}")
                )
                out_port = router.add_output_port(
                    direction,
                    neighbor,
                    in_port,
                    link_latency=self.noc.mesh_link_latency,
                    link_length_mm=self.tile_mm,
                )
                self._dir_port[(node, direction)] = out_port

    def _build_noi_routers(self) -> None:
        p = self.params
        for chiplet in range(p.count):
            cx, cy = self.map.chiplet_coord(chiplet)
            router = self._router_cls(
                self.sim,
                f"{self.name}.noi{cx}_{cy}",
                pipeline_latency=self.noc.mesh_router_pipeline,
            )
            self._noi_router.append(router)
            self.routers.append(router)
        # NoI mesh links: chiplet-to-chiplet across the interposer.
        for chiplet in range(p.count):
            cx, cy = self.map.chiplet_coord(chiplet)
            router = self._noi_router[chiplet]
            for direction, (dx, dy) in _DIRECTIONS.items():
                nx, ny = cx + dx, cy + dy
                if not (0 <= nx < p.ccols and 0 <= ny < p.crows):
                    continue
                neighbor = self._noi_router[ny * p.ccols + nx]
                in_port = neighbor.add_input_port(
                    self._new_input_port(f"{neighbor.name}.in_{_opposite(direction)}")
                )
                out_port = router.add_output_port(
                    direction,
                    neighbor,
                    in_port,
                    link_latency=self.crossing_latency,
                    link_length_mm=self.chiplet_mm,
                )
                self._noi_dir_port[(chiplet, direction)] = out_port
                self.noi_mesh_ports.append(router.output_ports[out_port])

    def _build_uplinks(self) -> None:
        p = self.params
        for chiplet in range(p.count):
            noi = self._noi_router[chiplet]
            for group in range(p.groups):
                boundary_node = self.map.boundary_node(chiplet, group)
                boundary = self._tile_router[boundary_node]
                noi_in = noi.add_input_port(
                    self._new_input_port(f"{noi.name}.in_up{group}")
                )
                up = boundary.add_output_port(
                    "up",
                    noi,
                    noi_in,
                    link_latency=self.crossing_latency,
                    link_length_mm=self.tile_mm,
                )
                self._up_port[boundary_node] = up
                self.uplink_ports.append(boundary.output_ports[up])
                boundary_in = boundary.add_input_port(
                    self._new_input_port(f"{boundary.name}.in_down")
                )
                down = noi.add_output_port(
                    f"down{group}",
                    boundary,
                    boundary_in,
                    link_latency=self.crossing_latency,
                    link_length_mm=self.tile_mm,
                )
                self._down_port[(chiplet, group)] = down
                self.downlink_ports.append(noi.output_ports[down])

    def _build_io_die(self) -> None:
        p = self.params
        if not p.io_die:
            return
        self.io_router = self._router_cls(
            self.sim,
            f"{self.name}.io",
            pipeline_latency=self.noc.mesh_router_pipeline,
        )
        self.routers.append(self.io_router)
        for chiplet in range(p.count):
            noi = self._noi_router[chiplet]
            io_in = noi.add_input_port(self._new_input_port(f"{noi.name}.in_io"))
            to_noi = self.io_router.add_output_port(
                f"to_c{chiplet}",
                noi,
                io_in,
                link_latency=self.crossing_latency,
                link_length_mm=self.chiplet_mm,
            )
            self._io_to_noi_port[chiplet] = to_noi
            self.io_ports.append(self.io_router.output_ports[to_noi])
            noi_in = self.io_router.add_input_port(
                self._new_input_port(f"{self.name}.io.in_c{chiplet}")
            )
            to_io = noi.add_output_port(
                "io",
                self.io_router,
                noi_in,
                link_latency=self.crossing_latency,
                link_length_mm=self.chiplet_mm,
            )
            self._noi_io_port[chiplet] = to_io
            self.io_ports.append(noi.output_ports[to_io])

    def _attach_interfaces(self) -> None:
        p = self.params
        for node in range(self.system.num_cores):
            router = self._tile_router[node]
            interface = self.interfaces[node]
            in_port = router.add_input_port(
                self._new_input_port(f"{router.name}.in_local{node}"), is_local=True
            )
            interface.attach_router(router, in_port)
            self._eject_port[node] = router.add_output_port(
                f"eject{node}", interface, 0, link_latency=0, link_length_mm=0.0
            )
        for index in range(self.map.num_memory_controllers):
            node = self.map.mc_node(index)
            host = (
                self.io_router
                if p.io_die
                else self._noi_router[self.map.mc_host_chiplet(index)]
            )
            interface = self.interfaces[node]
            in_port = host.add_input_port(
                self._new_input_port(f"{host.name}.in_mc{index}"), is_local=True
            )
            interface.attach_router(host, in_port)
            self._mc_eject[node] = host.add_output_port(
                f"eject{node}", interface, 0, link_latency=0, link_length_mm=0.0
            )

    # ------------------------------------------------------------------ #
    # Routing tables
    # ------------------------------------------------------------------ #
    def _build_routing_tables(self) -> None:
        p = self.params
        num_cores = self.system.num_cores
        # Tile routers: per chiplet, every destination reduces to one local
        # target coordinate (the destination's own tile, or the exit
        # boundary router) plus the action once there.
        for chiplet in range(p.count):
            base = chiplet * p.cores_per_chiplet
            for local in range(p.cores_per_chiplet):
                node = base + local
                router = self._tile_router[node]
                coord = self.map.local_coord(node)
                for dst in self.node_ids:
                    if dst < num_cores and dst // p.cores_per_chiplet == chiplet:
                        target = self.map.local_coord(dst)
                        terminal = self._eject_port[dst]
                    else:
                        exit_node = self.map.boundary_node(chiplet, dst % p.groups)
                        target = self.map.local_coord(exit_node)
                        terminal = self._up_port[exit_node]
                    if coord == target:
                        router.set_route(dst, terminal)
                    else:
                        router.set_route(dst, self._xy_port(node, coord, target))
        # NoI routers: descend into the home chiplet, traverse the
        # interposer mesh, or hand off to the IO die / host router.
        for chiplet in range(p.count):
            router = self._noi_router[chiplet]
            coord = self.map.chiplet_coord(chiplet)
            for dst in self.node_ids:
                if dst < num_cores:
                    dst_chiplet = dst // p.cores_per_chiplet
                    if dst_chiplet == chiplet:
                        group = self.map.boundary_group(dst)
                        router.set_route(dst, self._down_port[(chiplet, group)])
                    else:
                        target = self.map.chiplet_coord(dst_chiplet)
                        router.set_route(dst, self._noi_xy_port(chiplet, coord, target))
                elif p.io_die:
                    router.set_route(dst, self._noi_io_port[chiplet])
                else:
                    host = self.map.mc_host_chiplet(dst - num_cores)
                    if host == chiplet:
                        router.set_route(dst, self._mc_eject[dst])
                    else:
                        target = self.map.chiplet_coord(host)
                        router.set_route(dst, self._noi_xy_port(chiplet, coord, target))
        # IO die: every chiplet one hop away, MCs eject locally.
        if self.io_router is not None:
            for dst in self.node_ids:
                if dst < num_cores:
                    self.io_router.set_route(
                        dst, self._io_to_noi_port[dst // p.cores_per_chiplet]
                    )
                else:
                    self.io_router.set_route(dst, self._mc_eject[dst])

    def _xy_port(self, node: int, coord: Coordinate, target: Coordinate) -> int:
        """XY inside a chiplet: correct the column first, then the row."""
        if target[0] > coord[0]:
            return self._dir_port[(node, "E")]
        if target[0] < coord[0]:
            return self._dir_port[(node, "W")]
        if target[1] > coord[1]:
            return self._dir_port[(node, "S")]
        return self._dir_port[(node, "N")]

    def _noi_xy_port(self, chiplet: int, coord: Coordinate, target: Coordinate) -> int:
        """XY across the interposer mesh."""
        if target[0] > coord[0]:
            return self._noi_dir_port[(chiplet, "E")]
        if target[0] < coord[0]:
            return self._noi_dir_port[(chiplet, "W")]
        if target[1] > coord[1]:
            return self._noi_dir_port[(chiplet, "S")]
        return self._noi_dir_port[(chiplet, "N")]

    # ------------------------------------------------------------------ #
    # Introspection (tests, diagnostics)
    # ------------------------------------------------------------------ #
    def tile_router(self, node_id: int) -> Router:
        return self._tile_router[node_id]

    def noi_router(self, chiplet: int) -> Router:
        return self._noi_router[chiplet]

    def crossing_ports(self) -> List:
        """Every output port whose link crosses a die boundary."""
        return (
            self.uplink_ports
            + self.downlink_ports
            + self.noi_mesh_ports
            + self.io_ports
        )


# --------------------------------------------------------------------------- #
# Static description for the area/power models
# --------------------------------------------------------------------------- #
def chiplet_grid_geometry(config: SystemConfig) -> GridGeometry:
    """Geometry of the global tile grid (chiplets tiled edge to edge)."""
    p = chiplet_params(config)
    return GridGeometry(p.ccols * p.lcols, p.crows * p.lrows, config.tile_width_mm)


def describe_chiplet(config: SystemConfig) -> TopologyDescriptor:
    """Static inventory: tile meshes, boundary uplinks, NoI mesh, IO die."""
    noc = config.noc
    p = chiplet_params(config)
    tile_mm = config.tile_width_mm
    chiplet_mm = p.lcols * tile_mm
    boundary_count = p.count * p.groups
    routers = [
        RouterSpec(
            count=p.count * p.cores_per_chiplet - boundary_count,
            ports=5,  # N/S/E/W + local
            vcs_per_port=noc.mesh_vcs_per_port,
            vc_depth_flits=noc.mesh_vc_depth_flits,
            flit_width_bits=noc.link_width_bits,
            uses_sram_buffers=False,
            label="chiplet tile router",
        ),
        RouterSpec(
            count=boundary_count,
            ports=6,  # mesh ports + local + uplink
            vcs_per_port=noc.mesh_vcs_per_port,
            vc_depth_flits=noc.mesh_vc_depth_flits,
            flit_width_bits=noc.link_width_bits,
            uses_sram_buffers=False,
            label="chiplet boundary router",
        ),
        RouterSpec(
            count=p.count,
            ports=4 + p.groups + 1,  # NoI mesh + downlinks + IO/MC side
            vcs_per_port=noc.mesh_vcs_per_port,
            vc_depth_flits=noc.mesh_vc_depth_flits,
            flit_width_bits=noc.link_width_bits,
            uses_sram_buffers=True,
            label="interposer (NoI) router",
        ),
    ]
    if p.io_die:
        routers.append(
            RouterSpec(
                count=1,
                ports=p.count + config.num_memory_controllers,
                vcs_per_port=noc.mesh_vcs_per_port,
                vc_depth_flits=noc.mesh_vc_depth_flits,
                flit_width_bits=noc.link_width_bits,
                uses_sram_buffers=True,
                label="IO-die router",
            )
        )
    routers = [spec for spec in routers if spec.count > 0]
    horizontal = (p.lcols - 1) * p.lrows
    vertical = p.lcols * (p.lrows - 1)
    links = [
        LinkSpec(
            count=p.count * 2 * (horizontal + vertical),
            length_mm=tile_mm,
            width_bits=noc.link_width_bits,
            label="chiplet mesh link",
        ),
        LinkSpec(
            count=2 * boundary_count,
            length_mm=tile_mm,
            width_bits=noc.link_width_bits,
            label="interposer via (up/down) link",
        ),
    ]
    noi_horizontal = (p.ccols - 1) * p.crows
    noi_vertical = p.ccols * (p.crows - 1)
    if noi_horizontal + noi_vertical:
        links.append(
            LinkSpec(
                count=2 * (noi_horizontal + noi_vertical),
                length_mm=chiplet_mm,
                width_bits=noc.link_width_bits,
                label="interposer (NoI) link",
            )
        )
    if p.io_die:
        links.append(
            LinkSpec(
                count=2 * p.count,
                length_mm=chiplet_mm,
                width_bits=noc.link_width_bits,
                label="IO-die link",
            )
        )
    return TopologyDescriptor(CHIPLET_NAME, routers, links)


# --------------------------------------------------------------------------- #
# System preset + plugin registration
# --------------------------------------------------------------------------- #
def chiplet_system(
    num_cores: int = 1024,
    link_width_bits: int = 128,
    seed: int = 42,
    chiplet_count: int = DEFAULT_CHIPLET_COUNT,
    concentration: int = DEFAULT_CONCENTRATION,
    latency_increase: int = DEFAULT_LATENCY_INCREASE,
    io_die: bool = True,
) -> SystemConfig:
    """Chiplet CMP preset (Table 1 chip, chiplet/NoI interconnect)."""
    noc = NocConfig(
        topology=CHIPLET_NAME,
        link_width_bits=link_width_bits,
        chiplet_count=chiplet_count,
        chiplet_concentration=concentration,
        chiplet_latency_increase=latency_increase,
        chiplet_io_die=io_die,
    )
    config = SystemConfig(num_cores=num_cores, noc=noc, seed=seed)
    chiplet_params(config)  # validate the whole geometry up front
    return config


@register_topology(CHIPLET_NAME)
class ChipletFabric:
    """Hierarchical chiplet + network-on-interposer fabric."""

    name = CHIPLET_NAME

    def build_system(self, num_cores: int = 1024, **kwargs) -> SystemConfig:
        return chiplet_system(num_cores=num_cores, **kwargs)

    def build_system_map(self, config: SystemConfig) -> ChipletSystemMap:
        return ChipletSystemMap(config)

    def build_network(
        self, sim: Simulator, config: SystemConfig, system_map: SystemMap
    ) -> ChipletNetwork:
        if not isinstance(system_map, ChipletSystemMap):
            raise TypeError(f"{self.name} requires a ChipletSystemMap")
        return ChipletNetwork(sim, config, system_map, name=CHIPLET_NAME)

    def describe(self, config: SystemConfig) -> TopologyDescriptor:
        return describe_chiplet(config)


def _opposite(direction: str) -> str:
    return {"E": "W", "W": "E", "N": "S", "S": "N"}[direction]
