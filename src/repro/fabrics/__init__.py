"""Built-in fabric plugins.

Each module here is one interconnect organization packaged as a
:class:`~repro.fabrics.base.FabricPlugin` and registered with
``@register_topology``:

* :mod:`~repro.fabrics.mesh` — the tiled 2-D mesh baseline (Figure 2);
* :mod:`~repro.fabrics.flattened_butterfly` — the 2-D flattened butterfly
  (Figure 3);
* :mod:`~repro.fabrics.nocout` — the paper's NOC-Out proposal (Figure 5);
* :mod:`~repro.fabrics.ideal` — the wire-delay-only upper bound (Figure 1);
* :mod:`~repro.fabrics.cmesh` — a concentrated mesh (4 cores/router), the
  scale-out design point Section 2 motivates, and the template for adding
  your own fabric in one self-contained module;
* :mod:`~repro.fabrics.chiplet` — a hierarchical chiplet fabric: per-chiplet
  NoC meshes bridged by a network-on-interposer with an optional central IO
  die, the 1024-2048-core scale-out design point.

Importing this package registers all of them;
:func:`repro.scenarios.registry.ensure_seeded` does so on first registry
lookup, so user code normally never imports it directly.
"""

from repro.fabrics.base import FabricPlugin, SystemFactoryFabric

# Importing the plugin modules runs their @register_topology decorators.
# Order defines registry listing order: the paper's fabrics first.
from repro.fabrics import mesh as _mesh  # noqa: F401,E402
from repro.fabrics import flattened_butterfly as _flattened_butterfly  # noqa: F401,E402
from repro.fabrics import nocout as _nocout  # noqa: F401,E402
from repro.fabrics import ideal as _ideal  # noqa: F401,E402
from repro.fabrics import cmesh as _cmesh  # noqa: F401,E402
from repro.fabrics import chiplet as _chiplet  # noqa: F401,E402

from repro.fabrics.cmesh import (  # noqa: E402
    ConcentratedMeshFabric,
    ConcentratedSystemMap,
    cmesh_system,
    describe_cmesh,
)
from repro.fabrics.chiplet import (  # noqa: E402
    ChipletFabric,
    ChipletNetwork,
    ChipletParams,
    ChipletSystemMap,
    chiplet_params,
    chiplet_system,
    describe_chiplet,
)

__all__ = [
    "ChipletFabric",
    "ChipletNetwork",
    "ChipletParams",
    "ChipletSystemMap",
    "ConcentratedMeshFabric",
    "ConcentratedSystemMap",
    "FabricPlugin",
    "SystemFactoryFabric",
    "chiplet_params",
    "chiplet_system",
    "cmesh_system",
    "describe_chiplet",
    "describe_cmesh",
]
