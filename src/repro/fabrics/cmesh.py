"""Concentrated mesh: four cores per router, a scale-out design point.

Section 2 of the paper observes that the baseline mesh's cost grows with
the *tile* count, not the core count; concentrating several cores onto one
router is the textbook way to keep router count (and average hop count)
in check as chips scale out to hundreds of cores.  This plugin models the
canonical concentrated mesh: ``concentration`` cores (default 4) share one
local router, routers form a near-square 2-D mesh over the concentrated
tiles, and everything else (XY routing, VC/buffer parameters, pipeline
depths) matches the baseline mesh.

The module is deliberately self-contained — it defines its own system
preset, system map, network construction and area descriptor, and wires
them in purely through ``@register_topology``.  It touches no dispatch
site, which is the whole point of the fabric-plugin protocol: use it as
the template for adding your own fabric (see "Add a fabric in one module"
in the README).

The concentration factor is carried by ``NocConfig.tree_concentration``
(the pre-existing generic concentration knob), so sweeps can put it on an
axis like any other NoC field.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.chip.system_map import SystemMap, TiledSystemMap
from repro.config.noc import NocConfig
from repro.config.system import SystemConfig, default_mesh_dimensions
from repro.noc.mesh import MeshNetwork
from repro.noc.topology import (
    GridGeometry,
    LinkSpec,
    RouterSpec,
    TopologyDescriptor,
)
from repro.scenarios.registry import register_topology
from repro.sim.kernel import Simulator

#: Registry name (and the string stored in ``NocConfig.topology``).
CMESH_NAME = "cmesh"
#: Cores sharing one router in the default preset.
DEFAULT_CONCENTRATION = 4


def _concentration(config: SystemConfig) -> int:
    """The validated concentration factor of a cmesh config."""
    concentration = config.noc.tree_concentration
    if concentration < 1:
        raise ValueError(f"{CMESH_NAME} concentration must be >= 1")
    if config.num_cores % concentration:
        raise ValueError(
            f"{CMESH_NAME} needs the core count to divide evenly over the "
            f"concentration: {config.num_cores} cores % {concentration} != 0"
        )
    return concentration


class ConcentratedSystemMap(TiledSystemMap):
    """Tiled layout where ``concentration`` consecutive nodes share a router.

    Logical node structure is identical to :class:`TiledSystemMap` (node
    ``i`` holds core ``i`` plus LLC slice ``i``); only the *placement*
    changes — the grid is the near-square factorisation of the router
    count, and ``tile_coord`` maps node ``i`` to the coordinate of router
    ``i // concentration``.  Memory controllers attach to edge routers of
    the concentrated grid.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.concentration = _concentration(config)
        super().__init__(
            config,
            grid=default_mesh_dimensions(config.num_cores // self.concentration),
        )

    def tile_coord(self, node_id: int) -> Tuple[int, int]:
        self._check_core(node_id)
        router = node_id // self.concentration
        return (router % self.cols, router // self.cols)


def cmesh_grid_geometry(config: SystemConfig) -> GridGeometry:
    """Router-grid geometry: each concentrated tile holds ``c`` core tiles."""
    concentration = _concentration(config)
    cols, rows = default_mesh_dimensions(config.num_cores // concentration)
    tile_mm = config.tile_width_mm * math.sqrt(concentration)
    return GridGeometry(cols, rows, tile_mm)


def describe_cmesh(config: SystemConfig) -> TopologyDescriptor:
    """Static inventory: fewer, higher-radix routers; longer, fewer links."""
    noc = config.noc
    concentration = _concentration(config)
    geometry = cmesh_grid_geometry(config)
    cols, rows = geometry.cols, geometry.rows
    routers = [
        RouterSpec(
            count=cols * rows,
            ports=4 + concentration,  # N/S/E/W plus one local port per core
            vcs_per_port=noc.mesh_vcs_per_port,
            vc_depth_flits=noc.mesh_vc_depth_flits,
            flit_width_bits=noc.link_width_bits,
            uses_sram_buffers=False,
            label="concentrated mesh router",
        )
    ]
    horizontal = (cols - 1) * rows
    vertical = cols * (rows - 1)
    links = [
        LinkSpec(
            count=2 * (horizontal + vertical),
            length_mm=geometry.tile_width_mm,
            width_bits=noc.link_width_bits,
            label="concentrated mesh link",
        )
    ]
    return TopologyDescriptor(CMESH_NAME, routers, links)


def cmesh_system(
    num_cores: int = 64,
    link_width_bits: int = 128,
    seed: int = 42,
    concentration: int = DEFAULT_CONCENTRATION,
) -> SystemConfig:
    """Concentrated-mesh CMP preset (Table 1 chip, cmesh interconnect)."""
    noc = NocConfig(
        topology=CMESH_NAME,
        link_width_bits=link_width_bits,
        tree_concentration=concentration,
    )
    config = SystemConfig(num_cores=num_cores, noc=noc, seed=seed)
    _concentration(config)  # validate divisibility up front
    default_mesh_dimensions(num_cores // concentration)  # and the router grid
    return config


@register_topology(CMESH_NAME)
class ConcentratedMeshFabric:
    """Concentrated mesh: 4 cores per router by default."""

    name = CMESH_NAME

    def build_system(self, num_cores: int = 64, **kwargs) -> SystemConfig:
        return cmesh_system(num_cores=num_cores, **kwargs)

    def build_system_map(self, config: SystemConfig) -> ConcentratedSystemMap:
        return ConcentratedSystemMap(config)

    def build_network(
        self, sim: Simulator, config: SystemConfig, system_map: SystemMap
    ) -> MeshNetwork:
        if not isinstance(system_map, ConcentratedSystemMap):
            raise TypeError(f"{self.name} requires a ConcentratedSystemMap")
        # The router grid comes from the map itself, so node coordinates
        # and network geometry cannot drift apart.
        geometry = GridGeometry(
            system_map.cols,
            system_map.rows,
            config.tile_width_mm * math.sqrt(system_map.concentration),
        )
        return MeshNetwork(
            sim,
            config,
            system_map.node_coords(),
            name=CMESH_NAME,
            geometry=geometry,
        )

    def describe(self, config: SystemConfig) -> TopologyDescriptor:
        return describe_cmesh(config)
