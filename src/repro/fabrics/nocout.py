"""The NOC-Out fabric plugin (the paper's proposal, Figure 5)."""

from __future__ import annotations

from repro.chip.system_map import NocOutSystemMap, SystemMap
from repro.config.system import SystemConfig
from repro.core.floorplan import describe_nocout
from repro.core.nocout import NocOutNetwork
from repro.noc.topology import TopologyDescriptor
from repro.scenarios.registry import register_topology
from repro.sim.kernel import Simulator


@register_topology("noc_out")
class NocOutFabric:
    """Reduction/dispersion trees + central LLC row (flattened butterfly)."""

    name = "noc_out"

    def build_system(self, num_cores: int = 64, **kwargs) -> SystemConfig:
        from repro.config.presets import nocout_system

        return nocout_system(num_cores=num_cores, **kwargs)

    def build_system_map(self, config: SystemConfig) -> NocOutSystemMap:
        return NocOutSystemMap(config)

    def build_network(
        self, sim: Simulator, config: SystemConfig, system_map: SystemMap
    ) -> NocOutNetwork:
        if not isinstance(system_map, NocOutSystemMap):
            raise TypeError(f"{self.name} requires a NocOutSystemMap")
        return NocOutNetwork(
            sim,
            config,
            core_nodes=system_map.core_positions(),
            llc_nodes=system_map.llc_columns(),
            mc_nodes=system_map.mc_columns(),
        )

    def describe(self, config: SystemConfig) -> TopologyDescriptor:
        return describe_nocout(config)
