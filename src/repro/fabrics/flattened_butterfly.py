"""The flattened-butterfly fabric plugin (Figure 3)."""

from __future__ import annotations

from repro.chip.system_map import SystemMap, TiledSystemMap
from repro.config.noc import Topology
from repro.config.system import SystemConfig
from repro.noc.flattened_butterfly import FlattenedButterflyNetwork
from repro.noc.topology import TopologyDescriptor, describe_flattened_butterfly
from repro.scenarios.registry import register_topology
from repro.sim.kernel import Simulator


@register_topology("flattened_butterfly")
class FlattenedButterflyFabric:
    """Tiled 2-D flattened butterfly: full row/column connectivity."""

    name = "flattened_butterfly"

    def build_system(self, num_cores: int = 64, **kwargs) -> SystemConfig:
        from repro.config.presets import baseline_system

        return baseline_system(
            Topology.FLATTENED_BUTTERFLY, num_cores=num_cores, **kwargs
        )

    def build_system_map(self, config: SystemConfig) -> TiledSystemMap:
        return TiledSystemMap(config)

    def build_network(
        self, sim: Simulator, config: SystemConfig, system_map: SystemMap
    ) -> FlattenedButterflyNetwork:
        if not isinstance(system_map, TiledSystemMap):
            raise TypeError(f"{self.name} requires a TiledSystemMap")
        return FlattenedButterflyNetwork(sim, config, system_map.node_coords())

    def describe(self, config: SystemConfig) -> TopologyDescriptor:
        return describe_flattened_butterfly(config)
