"""The idealized wire-delay-only fabric plugin (Figure 1's upper bound)."""

from __future__ import annotations

from repro.chip.system_map import SystemMap, TiledSystemMap
from repro.config.noc import Topology
from repro.config.system import SystemConfig
from repro.noc.ideal import IdealNetwork
from repro.noc.topology import TopologyDescriptor
from repro.scenarios.registry import register_topology
from repro.sim.kernel import Simulator


@register_topology("ideal")
class IdealFabric:
    """Contention-free interconnect exposing only repeated-wire delay."""

    name = "ideal"

    def build_system(self, num_cores: int = 64, **kwargs) -> SystemConfig:
        from repro.config.presets import baseline_system

        return baseline_system(Topology.IDEAL, num_cores=num_cores, **kwargs)

    def build_system_map(self, config: SystemConfig) -> TiledSystemMap:
        return TiledSystemMap(config)

    def build_network(
        self, sim: Simulator, config: SystemConfig, system_map: SystemMap
    ) -> IdealNetwork:
        if not isinstance(system_map, TiledSystemMap):
            raise TypeError(f"{self.name} requires a TiledSystemMap")
        return IdealNetwork(sim, config, system_map.node_coords())

    def describe(self, config: SystemConfig) -> TopologyDescriptor:
        # Wires only: no routers, no repeated links to inventory.
        return TopologyDescriptor("ideal", routers=[], links=[])
