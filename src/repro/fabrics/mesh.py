"""The tiled-mesh fabric plugin (the paper's baseline, Figure 2)."""

from __future__ import annotations

from repro.chip.system_map import SystemMap, TiledSystemMap
from repro.config.noc import Topology
from repro.config.system import SystemConfig
from repro.noc.mesh import MeshNetwork
from repro.noc.topology import TopologyDescriptor, describe_mesh
from repro.scenarios.registry import register_topology
from repro.sim.kernel import Simulator


@register_topology("mesh")
class MeshFabric:
    """Tiled 2-D mesh: one 5-port router per tile, XY routing."""

    name = "mesh"

    def build_system(self, num_cores: int = 64, **kwargs) -> SystemConfig:
        from repro.config.presets import baseline_system

        return baseline_system(Topology.MESH, num_cores=num_cores, **kwargs)

    def build_system_map(self, config: SystemConfig) -> TiledSystemMap:
        return TiledSystemMap(config)

    def build_network(
        self, sim: Simulator, config: SystemConfig, system_map: SystemMap
    ) -> MeshNetwork:
        if not isinstance(system_map, TiledSystemMap):
            raise TypeError(f"{self.name} requires a TiledSystemMap")
        return MeshNetwork(sim, config, system_map.node_coords())

    def describe(self, config: SystemConfig) -> TopologyDescriptor:
        return describe_mesh(config)
