"""repro: a reproduction of "NOC-Out: Microarchitecting a Scale-Out Processor".

The library contains everything needed to re-run the paper's evaluation in
pure Python:

* a cycle-level event-driven simulation kernel (:mod:`repro.sim`);
* the three evaluated interconnects — mesh, flattened butterfly, and the
  proposed NOC-Out organization with its reduction/dispersion trees and LLC
  network (:mod:`repro.noc`, :mod:`repro.core`);
* a directory-coherent cache hierarchy and DRAM model (:mod:`repro.cache`);
* trace-driven cores and synthetic scale-out workloads (:mod:`repro.cpu`,
  :mod:`repro.workloads`);
* chip assembly, area/energy models and experiment harnesses
  (:mod:`repro.chip`, :mod:`repro.power`, :mod:`repro.experiments`).

Quickstart::

    from repro import build_chip, presets

    config = presets.nocout_system().with_workload(presets.workload("Web Search"))
    chip = build_chip(config)
    results = chip.run_experiment(measure_cycles=4000)
    print(results.throughput_ipc, results.network_mean_latency)
"""

from repro.config import presets
from repro.config.noc import Topology
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.chip.builder import build_chip
from repro.chip.chip import Chip, SimulationResults
from repro.power.area_model import NocAreaModel
from repro.power.energy_model import NocEnergyModel
from repro.scenarios import (
    ResultRecord,
    ResultSet,
    SweepSpec,
    iter_results,
    register_topology,
    register_workload,
    run_sweep,
)

__version__ = "1.1.0"

__all__ = [
    "presets",
    "Topology",
    "SystemConfig",
    "WorkloadConfig",
    "build_chip",
    "Chip",
    "SimulationResults",
    "NocAreaModel",
    "NocEnergyModel",
    "ResultRecord",
    "ResultSet",
    "SweepSpec",
    "iter_results",
    "register_topology",
    "register_workload",
    "run_sweep",
    "__version__",
]
