"""Serving CLI: answer figure/pivot queries from a warm columnar store.

``python -m repro.store.query`` is the read side of the sweep farm: it
**never simulates**.  Every query resolves through the store only; a
point missing from the store is a hard, explanatory error (exit code 3)
instead of a silent multi-minute simulation — exactly what a serving
fleet wants.

Commands::

    python -m repro.store.query --store DIR stats
    python -m repro.store.query --store DIR figure fig1
    python -m repro.store.query --store DIR pivot fig7 \\
        --index workload --columns topology --metric throughput_ipc

``figure`` renders the named figure's paper-vs-measured Markdown section
(the same bytes ``python -m repro.reporting`` would embed); ``pivot``
expands the named sweep, reads the rows as one columnar table
(zero-copy :meth:`ResultSet.from_store_table`) and prints the pivot as
JSON.  Sweep names come from :mod:`repro.store.specs`; settings honour
``REPRO_EXPERIMENT_SCALE`` (or ``--scale``) so smoke-scale stores are
queried with smoke-scale keys.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.experiments.engine import ResultCache, SweepExecutor, SweepStats
from repro.experiments.harness import RunSettings
from repro.scenarios.results import ResultSet
from repro.store.columnar import ColumnarStore
from repro.store.specs import figure_spec, spec_names


class ColdStoreError(LookupError):
    """A query needed points the store does not (yet) hold."""


class WarmStoreExecutor(SweepExecutor):
    """A :class:`SweepExecutor` that serves from the store and never simulates.

    Drop-in for the reporting layer's executor argument: cache hits stream
    out exactly like the parent's, but a miss raises :class:`ColdStoreError`
    naming the missing points instead of dispatching a simulation.
    ``total_stats`` accumulates across sweeps like the reporting CLI's
    ``CountingExecutor``, so "zero simulations" is provable after the fact.
    """

    def __init__(self, cache: ResultCache) -> None:
        super().__init__(jobs=1, cache=cache)
        self.total_stats = SweepStats()

    def run_iter(self, points) -> Iterator[Tuple[int, object]]:
        points = list(points)
        stats = SweepStats()
        self.last_stats = stats
        missing = []
        try:
            for index, point in enumerate(points):
                result = self.cache.load(point)
                if result is None:
                    stats.cache_misses += 1
                    missing.append(point)
                    continue
                stats.cache_hits += 1
                yield index, result
        finally:
            self.total_stats.cache_hits += stats.cache_hits
            self.total_stats.cache_misses += stats.cache_misses
        if missing:
            raise ColdStoreError(
                f"store is cold for {len(missing)} of {len(points)} point(s) "
                f"(first missing: {missing[0].describe()} = "
                f"{missing[0].content_hash()}); fill it with "
                "python -m repro.store.farm"
            )


def _settings(args: argparse.Namespace) -> RunSettings:
    if args.scale is not None:
        if args.scale <= 0:
            raise ValueError("--scale must be positive")
        return RunSettings().scaled(args.scale)
    return RunSettings.from_env()


def _cmd_stats(store: ColumnarStore, args: argparse.Namespace) -> int:
    segments = store.segment_paths()
    rows = len(store)
    total_bytes = 0
    for path in segments:
        try:
            total_bytes += path.stat().st_size
        except OSError:
            pass
    print(
        json.dumps(
            {
                "store": str(store.root),
                "rows": rows,
                "segments": len(segments),
                "bytes": total_bytes,
            },
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def _cmd_figure(store: ColumnarStore, args: argparse.Namespace) -> int:
    from repro.reporting.figures import build_report, report_names
    from repro.reporting.render import render_figure

    if args.name not in report_names():
        print(
            f"unknown figure {args.name!r}; available: {report_names()}",
            file=sys.stderr,
        )
        return 2
    executor = WarmStoreExecutor(ResultCache(store.root, backend="columnar"))
    report = build_report(args.name, settings=_settings(args), executor=executor)
    print(render_figure(report))
    print(
        f"<!-- served from {store.root}: {executor.total_stats.cache_hits} "
        "row(s), 0 simulations -->"
    )
    return 0


def _parse_selection(pairs: Optional[Sequence[str]]) -> dict:
    selection = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise ValueError(f"--where expects name=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            selection[key] = json.loads(raw)
        except ValueError:
            selection[key] = raw  # bare strings are the common case
    return selection


def load_sweep(
    store: ColumnarStore, name: str, settings: Optional[RunSettings] = None
) -> ResultSet:
    """The named sweep as a zero-copy :class:`ResultSet` over store rows.

    Raises :class:`ColdStoreError` (listing the shortfall) when any point
    of the sweep is missing.
    """
    spec = figure_spec(name, settings)
    sweep_points = spec.expand()
    try:
        table = store.load_table([sp.content_hash() for sp in sweep_points])
    except KeyError as exc:
        raise ColdStoreError(
            f"store is cold for sweep {name!r}: {exc.args[0]}; fill it with "
            "python -m repro.store.farm"
        ) from None
    return ResultSet.from_store_table(sweep_points, table, spec=spec)


def _cmd_pivot(store: ColumnarStore, args: argparse.Namespace) -> int:
    results = load_sweep(store, args.name, _settings(args))
    selection = _parse_selection(args.where)
    if selection:
        results = results.filter(**selection)
    table = results.pivot(args.index, args.columns, metric=args.metric)
    print(json.dumps(table, indent=2, sort_keys=True, default=str))
    return 0


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.query",
        description="Serve figure/pivot queries from a warm columnar store "
        "(never simulates).",
    )
    parser.add_argument("--store", required=True, help="columnar store directory")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="settings scale for cache keys (default: REPRO_EXPERIMENT_SCALE)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="row/segment counts for the store")

    figure = sub.add_parser(
        "figure", help="render one figure's paper-vs-measured section"
    )
    figure.add_argument("name", help="figure name (see python -m repro.reporting --list)")

    pivot = sub.add_parser("pivot", help="print a pivot table over a registered sweep")
    pivot.add_argument("name", help=f"sweep name, one of {spec_names()}")
    pivot.add_argument("--index", required=True, help="coordinate for rows")
    pivot.add_argument("--columns", required=True, help="coordinate for columns")
    pivot.add_argument(
        "--metric", default="throughput_ipc", help="metric (default throughput_ipc)"
    )
    pivot.add_argument(
        "--where",
        action="append",
        metavar="NAME=VALUE",
        help="filter records before pivoting (repeatable)",
    )
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    store = ColumnarStore(args.store)
    commands = {"stats": _cmd_stats, "figure": _cmd_figure, "pivot": _cmd_pivot}
    try:
        return commands[args.command](store, args)
    except ColdStoreError as exc:
        print(f"cold store: {exc}", file=sys.stderr)
        return 3
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into something that exited early (head, less, q);
        # that is not an error worth a traceback.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
