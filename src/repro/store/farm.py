"""Lease-based sweep farm: N workers fill a columnar store concurrently.

The sharded-sweep recipe (``spec.shard(i, n)`` + cache merge) needs the
shard count fixed up front and a human to fold the caches afterwards.
The farm turns that into a service: every worker sees the *whole* spec,
claims individual uncached points through an on-disk **lease queue**, and
appends finished results to the shared :class:`ColumnarStore` in batches.
Add workers at any time; kill them at any time — an expired lease from a
crashed worker is re-claimed by whoever scans it next.

Lease lifecycle (all under ``<store>/leases/``):

1. **claim** — ``O_CREAT | O_EXCL`` of ``<hash>.lease`` (atomic on POSIX
   and NFS); the file records the worker id and expiry deadline.
2. **hold** — the claimant simulates the point.  Leases are only released
   *after* the result is visible in the store, so no other worker can
   observe "no lease, no result" for a point that is actually done.
3. **release** — unlink after the batch containing the result is flushed.
4. **expiry** — a lease whose deadline passed is stolen by atomically
   renaming it to a unique tombstone (``os.rename`` succeeds for exactly
   one stealer) and re-claimed from step 1.

Double simulation is impossible while leases are honoured; the only race
remaining (a worker stalls past its TTL and its lease is stolen while it
still runs) wastes one simulation but stays correct, because results are
deterministic and the store keeps the first write.

Usage::

    # two terminals / machines sharing one store directory
    python -m repro.store.farm --figure fig1 --store results-store
    python -m repro.store.farm --figure fig1 --store results-store

    # or: one command that forks N local workers
    python -m repro.store.farm --figure fig1 --store results-store --workers 4

Environment: ``REPRO_FARM_LEASE_TTL`` (seconds, default 300) and
``REPRO_FARM_FLUSH`` (results per appended segment, default 4) — see the
canonical table in ``docs/experiments.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.scenarios.spec import SweepSpec
from repro.store.columnar import ColumnarStore

#: Lease time-to-live environment variable (seconds).
LEASE_TTL_ENV_VAR = "REPRO_FARM_LEASE_TTL"
#: Results buffered per segment flush.
FLUSH_ENV_VAR = "REPRO_FARM_FLUSH"

DEFAULT_LEASE_TTL = 300.0
DEFAULT_FLUSH = 4

_LEASE_DIR = "leases"


def default_lease_ttl() -> float:
    env = os.environ.get(LEASE_TTL_ENV_VAR)
    if not env:
        return DEFAULT_LEASE_TTL
    ttl = float(env)
    if ttl <= 0:
        raise ValueError(f"{LEASE_TTL_ENV_VAR} must be positive, got {env!r}")
    return ttl


def default_flush() -> int:
    env = os.environ.get(FLUSH_ENV_VAR)
    if not env:
        return DEFAULT_FLUSH
    flush = int(env)
    if flush < 1:
        raise ValueError(f"{FLUSH_ENV_VAR} must be >= 1, got {env!r}")
    return flush


class LeaseQueue:
    """Crash-safe point leases as files under ``<root>/leases/``.

    One lease file per in-flight point, named by the point's content hash.
    All transitions are single atomic filesystem operations, so any number
    of workers (processes or machines on a shared filesystem) can race
    safely.
    """

    def __init__(self, root: os.PathLike, ttl: Optional[float] = None) -> None:
        self.root = Path(root) / _LEASE_DIR
        self.ttl = ttl if ttl is not None else default_lease_ttl()

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.lease"

    def try_claim(self, digest: str, worker_id: str) -> bool:
        """Atomically claim ``digest``; ``False`` if someone else holds it.

        A lease whose deadline has passed is stolen first: exactly one
        stealer wins the tombstone rename, then re-claims through the same
        exclusive create every fresh claim uses.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(digest)
        for attempt in range(2):  # fresh claim, then once more after a steal
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if attempt or not self._steal_if_expired(path):
                    return False
                continue
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    {
                        "worker": worker_id,
                        "acquired": time.time(),
                        "deadline": time.time() + self.ttl,
                    },
                    handle,
                )
            return True
        return False

    def _steal_if_expired(self, path: Path) -> bool:
        """Tombstone an expired lease; ``True`` if this process won the steal."""
        try:
            payload = json.loads(path.read_text())
            deadline = float(payload["deadline"])
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable/torn lease (crashed mid-write): treat as expired,
            # but only if it is old enough that the writer is clearly gone.
            try:
                deadline = path.stat().st_mtime + self.ttl
            except OSError:
                return False  # vanished: owner released it; caller re-claims
        if time.time() < deadline:
            return False
        tombstone = path.with_name(f"{path.name}.stale-{uuid.uuid4().hex}")
        try:
            os.rename(path, tombstone)  # atomic: exactly one stealer succeeds
        except OSError:
            return False
        try:
            tombstone.unlink()
        except OSError:
            pass
        return True

    def release(self, digest: str) -> None:
        try:
            self.path_for(digest).unlink()
        except OSError:
            pass

    def held(self) -> List[str]:
        """Digests with a live (non-tombstoned) lease file."""
        try:
            return sorted(p.stem for p in self.root.glob("*.lease"))
        except OSError:
            return []


@dataclass
class WorkerStats:
    """What one :func:`run_worker` call did."""

    worker_id: str
    points_total: int = 0
    already_stored: int = 0
    lease_lost: int = 0
    simulated: int = 0
    segments_appended: int = 0
    simulated_hashes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def summary(self) -> str:
        return (
            f"worker {self.worker_id}: {self.simulated}/{self.points_total} "
            f"simulated ({self.already_stored} already stored, "
            f"{self.lease_lost} leased elsewhere), "
            f"{self.segments_appended} segment(s) appended"
        )


def run_worker(
    spec: SweepSpec,
    store: ColumnarStore,
    worker_id: Optional[str] = None,
    ttl: Optional[float] = None,
    flush: Optional[int] = None,
    execute: Optional[Callable] = None,
) -> WorkerStats:
    """Claim, simulate and append ``spec``'s uncached points until drained.

    ``execute`` overrides the simulator call (tests inject fakes); the
    default is :func:`repro.experiments.engine.execute_point`.  Results are
    buffered and appended ``flush`` rows per segment; leases are released
    only after their results are flushed (crashing first just lets the
    leases expire and the points be redone).
    """
    from repro.experiments.engine import execute_point

    execute = execute or execute_point
    worker_id = worker_id or f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
    flush = flush if flush is not None else default_flush()
    queue = LeaseQueue(store.root, ttl=ttl)
    stats = WorkerStats(worker_id=worker_id)

    batch: List[tuple] = []  # (digest, SimulationResults)

    def flush_batch() -> None:
        if not batch:
            return
        store.append_results(list(batch))
        stats.segments_appended += 1
        for digest, _ in batch:
            queue.release(digest)
        batch.clear()

    sweep_points = spec.expand()
    stats.points_total = len(sweep_points)
    for sweep_point in sweep_points:
        digest = sweep_point.content_hash()
        if digest in store:  # refreshes from disk on miss
            stats.already_stored += 1
            continue
        if not queue.try_claim(digest, worker_id):
            stats.lease_lost += 1
            continue
        if digest in store:
            # Finished by a worker whose flush beat our claim to the disk.
            queue.release(digest)
            stats.already_stored += 1
            continue
        result = execute(sweep_point.point)
        stats.simulated += 1
        stats.simulated_hashes.append(digest)
        batch.append((digest, result))
        if len(batch) >= flush:
            flush_batch()
    flush_batch()
    return stats


# --------------------------------------------------------------------- #
def _resolve_spec(args: argparse.Namespace) -> SweepSpec:
    if args.spec and args.figure:
        raise ValueError("pass either --spec or --figure, not both")
    if args.spec:
        return SweepSpec.from_json(Path(args.spec).read_text())
    if args.figure:
        from repro.store.specs import figure_spec

        return figure_spec(args.figure)
    raise ValueError("one of --spec or --figure is required")


def _spawn_workers(argv_base: List[str], count: int) -> int:
    """Fork ``count`` single-worker child processes and await them all."""
    children = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.store.farm", *argv_base,
             "--worker-id", f"w{index}"],
        )
        for index in range(count)
    ]
    status = 0
    for child in children:
        status = max(status, child.wait())
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.farm",
        description="Fill a columnar result store by leasing uncached sweep points.",
    )
    parser.add_argument("--store", required=True, help="store directory (shared)")
    parser.add_argument("--spec", help="sweep spec JSON file (SweepSpec.to_json)")
    parser.add_argument(
        "--figure",
        help="registered sweep name instead of --spec (see repro.store.specs)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fork N local worker processes (default: run one worker inline)",
    )
    parser.add_argument("--worker-id", default=None, help="label for this worker")
    parser.add_argument(
        "--ttl",
        type=float,
        default=None,
        help=f"lease time-to-live in seconds (default: {LEASE_TTL_ENV_VAR} or "
        f"{DEFAULT_LEASE_TTL:g})",
    )
    parser.add_argument(
        "--flush",
        type=int,
        default=None,
        help=f"results per appended segment (default: {FLUSH_ENV_VAR} or "
        f"{DEFAULT_FLUSH})",
    )
    parser.add_argument(
        "--compact",
        action="store_true",
        help="compact the store after this worker drains the spec",
    )
    parser.add_argument(
        "--summary",
        default=None,
        help="write this worker's stats as JSON to the given path",
    )
    args = parser.parse_args(argv)

    try:
        spec = _resolve_spec(args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.workers is not None:
        if args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            return 2
        base = ["--store", args.store]
        base += ["--spec", args.spec] if args.spec else ["--figure", args.figure]
        for name, value in (("--ttl", args.ttl), ("--flush", args.flush)):
            if value is not None:
                base += [name, str(value)]
        status = _spawn_workers(base, args.workers)
        if status == 0 and args.compact:
            stats = ColumnarStore(args.store).compact()
            print(f"compacted: {stats.summary()}")
        return status

    store = ColumnarStore(args.store)
    stats = run_worker(
        spec, store, worker_id=args.worker_id, ttl=args.ttl, flush=args.flush
    )
    print(stats.summary())
    if args.summary:
        Path(args.summary).write_text(json.dumps(stats.to_dict(), indent=2))
    if args.compact:
        compact_stats = store.compact()
        print(f"compacted: {compact_stats.summary()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
