"""Append-only columnar segment store for simulation results.

Layout of a store directory::

    store/
      manifest.json            {"schema": 1, "cache_schema": 2, ...}
      segments/
        seg-<17 hex>-<pid hex>-<seq>.json    one immutable columnar table
      leases/                  farm lease files (see repro.store.farm)

A **segment** is one JSON document holding N rows in column-major order:

.. code-block:: json

    {
      "schema": 1,
      "count": 3,
      "hashes": ["<sha256>", "..."],
      "columns": {"cycles": [600, 600, 610], "workload": ["Web Search", ...]}
    }

``hashes[i]`` is :meth:`ExperimentPoint.content_hash` for row ``i`` and the
columns are exactly the fields of
:meth:`~repro.chip.chip.SimulationResults.to_dict` — so a row reconstructs
the same ``SimulationResults`` the legacy JSON cache would have produced
(both go through one JSON round-trip, which is exact for floats).

Properties the rest of the result path relies on:

* **Append-only + atomic.**  A segment is written to a temp file and
  ``os.replace``\\ d into place, so readers never observe a torn segment
  and concurrent farm workers never contend: every append creates a new
  uniquely-named file.  Nothing but :meth:`ColumnarStore.compact` ever
  rewrites or removes a segment.
* **First write wins.**  Duplicate hashes across segments are legal (two
  farm workers can race past an expired lease); simulations are
  deterministic, so every copy is identical and readers take the first.
* **Compaction is canonical.**  :meth:`ColumnarStore.compact` folds every
  segment into one, deduplicated and sorted by hash — byte-stable for a
  given set of rows, so compacting a farm-filled store and a serial run of
  the same sweep produce identical segment files.  This is the columnar
  replacement for ``repro.scenarios.merge``: import each shard with
  ``python -m repro.store.migrate`` (or let farm workers append directly)
  and compact once.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.chip.chip import SimulationResults

#: Bump when the segment or manifest layout changes; old stores then fail
#: loudly (a store is long-lived shared state — silently misreading one is
#: worse than refusing).
SEGMENT_SCHEMA_VERSION = 1

_SEGMENT_DIR = "segments"
_SEGMENT_GLOB = "seg-*.json"
_MANIFEST = "manifest.json"


class StoreError(Exception):
    """A store invariant was violated (bad schema, unreadable segment...)."""


def _atomic_write_json(directory: Path, final: Path, payload) -> None:
    """Write ``payload`` as JSON at ``final`` via a same-directory temp file."""
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp_name, final)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class StoreTable:
    """A column-major view over a set of store rows.

    ``columns[name][i]`` belongs to ``hashes[i]``.  The table holds plain
    references into the parsed segment data — building one copies no row
    values — and materialises a :class:`SimulationResults` per row only on
    first access (:meth:`result`), cached thereafter.
    """

    hashes: Tuple[str, ...]
    columns: Dict[str, list]
    _results: List[Optional[SimulationResults]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self._results is None:
            object.__setattr__(self, "_results", [None] * len(self.hashes))

    def __len__(self) -> int:
        return len(self.hashes)

    def row(self, index: int) -> Dict[str, object]:
        """Row ``index`` as a plain field dict (``None`` cells dropped)."""
        return {
            name: column[index]
            for name, column in self.columns.items()
            if column[index] is not None
        }

    def result(self, index: int) -> SimulationResults:
        """The reconstructed :class:`SimulationResults` for row ``index``."""
        cached = self._results[index]
        if cached is None:
            cached = SimulationResults.from_dict(self.row(index))
            self._results[index] = cached
        return cached

    def iter_results(self) -> Iterator[Tuple[str, SimulationResults]]:
        """Stream ``(hash, result)`` pairs row by row."""
        for index, digest in enumerate(self.hashes):
            yield digest, self.result(index)


@dataclass
class CompactStats:
    """What one :meth:`ColumnarStore.compact` call did."""

    segments_in: int = 0
    segments_out: int = 0
    rows_in: int = 0
    rows_out: int = 0

    @property
    def duplicates_dropped(self) -> int:
        return self.rows_in - self.rows_out

    def summary(self) -> str:
        return (
            f"{self.segments_in} segment(s) / {self.rows_in} row(s) -> "
            f"{self.segments_out} segment(s) / {self.rows_out} row(s) "
            f"({self.duplicates_dropped} duplicate(s) dropped)"
        )


class _Segment:
    """One parsed, immutable segment file."""

    __slots__ = ("name", "hashes", "columns")

    def __init__(self, name: str, payload: Mapping) -> None:
        if payload.get("schema") != SEGMENT_SCHEMA_VERSION:
            raise StoreError(
                f"segment {name} has schema {payload.get('schema')!r}, "
                f"expected {SEGMENT_SCHEMA_VERSION}"
            )
        hashes = payload.get("hashes")
        columns = payload.get("columns")
        count = payload.get("count")
        if not isinstance(hashes, list) or not isinstance(columns, dict):
            raise StoreError(f"segment {name} is malformed (hashes/columns)")
        if count != len(hashes) or any(
            len(col) != count for col in columns.values()
        ):
            raise StoreError(f"segment {name} has inconsistent column lengths")
        self.name = name
        self.hashes: List[str] = hashes
        self.columns: Dict[str, list] = columns


def _rows_to_columns(rows: Sequence[Mapping]) -> Dict[str, list]:
    """Transpose row dicts into column-major lists (missing cells = None)."""
    names = sorted(set(itertools.chain.from_iterable(rows)))
    return {
        name: [row.get(name) for row in rows]
        for name in names
    }


class ColumnarStore:
    """An append-only columnar store of results keyed by content hash.

    Concurrency model: appends create new segment files (no shared state),
    and the in-memory index refreshes from the directory lazily — a lookup
    that misses re-scans for segments appended by sibling processes before
    reporting the miss, so a query server over a farm-filled store is
    always at most one directory listing behind the workers.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self._segments: Dict[str, _Segment] = {}
        self._index: Dict[str, Tuple[_Segment, int]] = {}
        self._manifest_checked = False
        self._append_seq = 0

    # -- layout --------------------------------------------------------- #
    @property
    def segment_dir(self) -> Path:
        return self.root / _SEGMENT_DIR

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST

    def segment_paths(self) -> List[Path]:
        """Current segment files, oldest first (lexical = chronological)."""
        try:
            return sorted(self.segment_dir.glob(_SEGMENT_GLOB))
        except OSError:
            return []

    def _check_manifest(self) -> None:
        if self._manifest_checked:
            return
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            self._manifest_checked = True
            return
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable store manifest {self.manifest_path}: {exc}")
        if manifest.get("schema") != SEGMENT_SCHEMA_VERSION:
            raise StoreError(
                f"store {self.root} has manifest schema "
                f"{manifest.get('schema')!r}, expected {SEGMENT_SCHEMA_VERSION}"
            )
        self._manifest_checked = True

    def _write_manifest(self) -> None:
        from repro.experiments.engine import CACHE_SCHEMA_VERSION

        _atomic_write_json(
            self.root,
            self.manifest_path,
            {"schema": SEGMENT_SCHEMA_VERSION, "cache_schema": CACHE_SCHEMA_VERSION},
        )
        self._manifest_checked = True

    # -- index ---------------------------------------------------------- #
    def refresh(self) -> int:
        """Pick up segments appended since the last scan; return new count."""
        self._check_manifest()
        new = 0
        for path in self.segment_paths():
            if path.name in self._segments:
                continue
            try:
                payload = json.loads(path.read_text())
            except FileNotFoundError:
                continue  # compacted away by a sibling between glob and read
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable segment {path}: {exc}")
            segment = _Segment(path.name, payload)
            self._segments[path.name] = segment
            for row, digest in enumerate(segment.hashes):
                # First write wins: deterministic sims make duplicates
                # byte-identical, so keeping the earliest is arbitrary but
                # stable.
                self._index.setdefault(digest, (segment, row))
            new += 1
        return new

    def _lookup(self, digest: str) -> Optional[Tuple[_Segment, int]]:
        hit = self._index.get(digest)
        if hit is None:
            self.refresh()
            hit = self._index.get(digest)
        return hit

    def __contains__(self, digest: str) -> bool:
        return self._lookup(digest) is not None

    def __len__(self) -> int:
        self.refresh()
        return len(self._index)

    def hashes(self) -> List[str]:
        """All row keys currently in the store (sorted)."""
        self.refresh()
        return sorted(self._index)

    # -- reads ---------------------------------------------------------- #
    def get(self, digest: str) -> Optional[SimulationResults]:
        """The result stored under ``digest``, or ``None``."""
        hit = self._lookup(digest)
        if hit is None:
            return None
        segment, row = hit
        return SimulationResults.from_dict(
            {
                name: column[row]
                for name, column in segment.columns.items()
                if column[row] is not None
            }
        )

    def load_table(self, digests: Sequence[str]) -> StoreTable:
        """A columnar :class:`StoreTable` over ``digests``, in that order.

        Raises :class:`KeyError` naming the missing hashes if any digest is
        absent (after a refresh), so callers can distinguish "cold store"
        from an empty answer.
        """
        self.refresh()
        missing = [digest for digest in digests if digest not in self._index]
        if missing:
            raise KeyError(
                f"{len(missing)} of {len(digests)} row(s) missing from store "
                f"{self.root} (first: {missing[0]})"
            )
        hits = [self._index[digest] for digest in digests]
        names = sorted({name for segment, _ in hits for name in segment.columns})
        columns: Dict[str, list] = {
            name: [segment.columns.get(name, _NONE_COLUMN)[row] for segment, row in hits]
            for name in names
        }
        return StoreTable(hashes=tuple(digests), columns=columns)

    # -- writes --------------------------------------------------------- #
    def _new_segment_path(self) -> Path:
        # time_ns (17 hex digits covers year-2500 nanoseconds) keeps lexical
        # order chronological; pid + per-instance seq make concurrent
        # writers collision-free.
        self._append_seq += 1
        stamp = f"{time.time_ns():017x}"
        return self.segment_dir / (
            f"seg-{stamp}-{os.getpid():x}-{self._append_seq}.json"
        )

    def append(self, rows: Iterable[Tuple[str, Mapping]]) -> Optional[Path]:
        """Atomically append one segment holding ``(hash, result_dict)`` rows.

        ``result_dict`` is :meth:`SimulationResults.to_dict` output (or its
        JSON round-trip — both store identically).  Returns the segment
        path, or ``None`` when ``rows`` is empty.
        """
        rows = list(rows)
        if not rows:
            return None
        if not self._manifest_checked or not self.manifest_path.exists():
            self._check_manifest()
            self._write_manifest()
        hashes = [digest for digest, _ in rows]
        payload = {
            "schema": SEGMENT_SCHEMA_VERSION,
            "count": len(rows),
            "hashes": hashes,
            "columns": _rows_to_columns([dict(row) for _, row in rows]),
        }
        path = self._new_segment_path()
        _atomic_write_json(self.segment_dir, path, payload)
        return path

    def append_results(
        self, rows: Iterable[Tuple[str, SimulationResults]]
    ) -> Optional[Path]:
        """:meth:`append` for in-memory :class:`SimulationResults` rows."""
        return self.append((digest, result.to_dict()) for digest, result in rows)

    # -- compaction ----------------------------------------------------- #
    def compact(self) -> CompactStats:
        """Fold every segment into one deduplicated, hash-sorted segment.

        Byte-stable: the output depends only on the set of rows, not on
        segment arrival order (first-write-wins dedup + sort by hash +
        canonical JSON).  Removes the input segments on success; a crash
        between the write and the removals leaves duplicates that the next
        compact folds away.
        """
        self.refresh()
        stats = CompactStats(
            segments_in=len(self._segments),
            rows_in=sum(len(s.hashes) for s in self._segments.values()),
        )
        if not self._index:
            return stats
        ordered = sorted(self._index)
        rows = []
        for digest in ordered:
            segment, row = self._index[digest]
            rows.append(
                (
                    digest,
                    {
                        name: column[row]
                        for name, column in segment.columns.items()
                        if column[row] is not None
                    },
                )
            )
        old_names = list(self._segments)
        new_path = self.append(rows)
        for name in old_names:
            if name == new_path.name:
                continue
            try:
                (self.segment_dir / name).unlink()
            except OSError:
                pass
        # Rebuild the in-memory view from disk truth.
        self._segments.clear()
        self._index.clear()
        self.refresh()
        stats.segments_out = len(self._segments)
        stats.rows_out = len(self._index)
        return stats


#: Shared all-None "column" used when a segment lacks a field another
#: segment has; indexing it at any row yields None.  (Defined at module
#: level so load_table never allocates per-call filler lists.)
class _NoneColumn:
    def __getitem__(self, index):
        return None


_NONE_COLUMN = _NoneColumn()
