"""Columnar result store: the fleet-shaped result path.

The experiment engine's original cache is a directory of per-point JSON
blobs — fine for one machine, the wrong shape for serving heavy query
traffic from a warm store.  This package promotes results to an
**append-only columnar segment store** (stdlib-only):

* :mod:`repro.store.columnar` — the segment format and
  :class:`ColumnarStore` (atomic appends, ``compact()`` folding, columnar
  :class:`StoreTable` reads);
* :mod:`repro.store.cache` — :class:`ColumnarResultCache`, the store
  mounted behind the engine's :class:`~repro.experiments.engine.ResultCache`
  API (selected by ``REPRO_STORE=columnar``);
* :mod:`repro.store.migrate` — one-shot importer from a legacy JSON cache
  directory (``python -m repro.store.migrate``);
* :mod:`repro.store.farm` — lease-based sweep farm: N workers claim
  uncached points from a shared queue with crash-safe lease expiry and
  append segments concurrently (``python -m repro.store.farm``);
* :mod:`repro.store.query` — the serving CLI: any registered figure or
  pivot query answered from the warm store without touching the simulator
  (``python -m repro.store.query``);
* :mod:`repro.store.specs` — the registry of figure sweep specs the farm
  fills and the query CLI serves.

See the "result path" section of ``docs/architecture.md`` for the segment
format and lease lifecycle, and ``docs/experiments.md`` for recipes.
"""

from repro.store.columnar import (
    SEGMENT_SCHEMA_VERSION,
    ColumnarStore,
    CompactStats,
    StoreError,
    StoreTable,
)

__all__ = [
    "SEGMENT_SCHEMA_VERSION",
    "ColumnarStore",
    "CompactStats",
    "StoreError",
    "StoreTable",
]
