"""The columnar store mounted behind the engine's ``ResultCache`` API.

``ResultCache(...)`` returns an instance of this class when the
``REPRO_STORE=columnar`` environment variable (or ``backend="columnar"``)
selects the columnar backend — see
:class:`repro.experiments.engine.ResultCache` for the dispatch.  The same
cache keys (``ExperimentPoint.content_hash``) and the same result values
flow through both backends, so switching backends never invalidates or
alters a result; only the on-disk shape changes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.chip.chip import SimulationResults
from repro.experiments.engine import ExperimentPoint, ResultCache
from repro.store.columnar import ColumnarStore


class ColumnarResultCache(ResultCache):
    """:class:`ResultCache` backed by a :class:`ColumnarStore` directory.

    Differences from the JSON-directory backend, by design:

    * ``store()`` appends a one-row segment (atomic, concurrency-free);
      batch writers (the farm, the migrator) append multi-row segments
      through :attr:`store` directly and ``compact()`` afterwards.
    * ``max_bytes`` / ``REPRO_CACHE_MAX_MB`` does not apply — the store is
      an append-only archive, not an LRU cache; prune by compacting or
      deleting the directory.
    * ``path_for`` has no meaning (a point lives in some row of some
      segment, not in a file of its own).
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(root=root, max_bytes=None, backend="columnar")
        self.store_backend = ColumnarStore(self.root)

    def path_for(self, point: ExperimentPoint) -> Path:
        raise NotImplementedError(
            "the columnar backend stores rows inside segments, not one file "
            "per point; use load()/store() (or ColumnarStore.load_table)"
        )

    def load(self, point: ExperimentPoint) -> Optional[SimulationResults]:
        return self.store_backend.get(point.content_hash())

    def store(self, point: ExperimentPoint, result: SimulationResults) -> Path:
        return self.store_backend.append_results([(point.content_hash(), result)])
