"""One-shot importer: legacy JSON cache directory -> columnar store.

Reads every ``<sha256>.json`` entry of a :class:`ResultCache` directory,
validates it, and appends the results to a :class:`ColumnarStore` as
columnar segments (batched), compacting at the end.  Content hashes are
the row keys on both sides, so a migrated store serves exactly the points
the JSON directory did — ``python -m repro.reporting`` against the
migrated store (``REPRO_STORE=columnar REPRO_CACHE_DIR=<store>`` or
``--store``) performs zero simulations and regenerates the report
byte-identically.

This is also the columnar replacement for the shard-merge step of the
two-machine recipe: import each shard cache into one store (collisions
dedupe on compact) instead of ``python -m repro.scenarios.merge``.

Usage::

    python -m repro.store.migrate ~/.cache/repro results-store
    python -m repro.store.migrate shard-a-cache results-store   # repeatable
    python -m repro.store.migrate shard-b-cache results-store
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.store.columnar import ColumnarStore

#: Cache entries are ``<64 hex chars>.json``; anything else is not a result.
_HASH_HEX_LENGTH = 64

#: Rows appended per segment during import (the final compact folds them).
DEFAULT_BATCH = 256


@dataclass
class MigrateStats:
    """What one :func:`migrate_cache` call did."""

    imported: int = 0
    already_stored: int = 0
    skipped_invalid: int = 0
    ignored_files: int = 0

    def summary(self) -> str:
        return (
            f"imported {self.imported}, {self.already_stored} already in "
            f"store, skipped {self.skipped_invalid} invalid entr(y/ies), "
            f"ignored {self.ignored_files} non-result file(s)"
        )


def _is_result_file(path: Path) -> bool:
    stem = path.stem
    return (
        path.suffix == ".json"
        and len(stem) == _HASH_HEX_LENGTH
        and all(ch in "0123456789abcdef" for ch in stem)
    )


def migrate_cache(
    source,
    store: ColumnarStore,
    batch: int = DEFAULT_BATCH,
    compact: bool = True,
) -> MigrateStats:
    """Import every valid result of JSON cache dir ``source`` into ``store``.

    Entries already present (same content hash) are skipped — simulations
    are deterministic, so both copies are identical.  Invalid entries
    (wrong schema, unparseable, missing result) are counted and skipped,
    never imported half-read.
    """
    from repro.experiments.engine import CACHE_SCHEMA_VERSION

    source = Path(source)
    if not source.is_dir():
        raise FileNotFoundError(f"source cache directory {source} does not exist")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")

    stats = MigrateStats()
    rows = []
    for path in sorted(source.iterdir()):
        if not path.is_file() or not _is_result_file(path):
            stats.ignored_files += 1
            continue
        digest = path.stem
        if digest in store:
            stats.already_stored += 1
            continue
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache schema mismatch")
            result = payload["result"]
            if not isinstance(result, dict):
                raise ValueError("result is not an object")
        except (OSError, ValueError, KeyError):
            stats.skipped_invalid += 1
            continue
        rows.append((digest, result))
        stats.imported += 1
        if len(rows) >= batch:
            store.append(rows)
            rows = []
    store.append(rows)
    if compact:
        store.compact()
    return stats


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.migrate",
        description="Import a JSON result-cache directory into a columnar store.",
    )
    parser.add_argument("source", help="JSON cache directory (e.g. ~/.cache/repro)")
    parser.add_argument("store", help="columnar store directory (created if missing)")
    parser.add_argument(
        "--batch",
        type=int,
        default=DEFAULT_BATCH,
        help=f"rows per imported segment (default {DEFAULT_BATCH})",
    )
    parser.add_argument(
        "--no-compact",
        action="store_true",
        help="skip the final compaction (leave the import batches as-is)",
    )
    args = parser.parse_args(argv)
    store = ColumnarStore(args.store)
    try:
        stats = migrate_cache(
            args.source, store, batch=args.batch, compact=not args.no_compact
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{args.source} -> {args.store}: {stats.summary()}")
    print(f"store now holds {len(store)} row(s) in {len(store.segment_paths())} segment(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
