"""Registry of the figure sweep specs the store layer fills and serves.

Maps the reportable figure names (the keys of
:data:`repro.reporting.figures.REPORTERS`, minus the purely analytic
``fig8``) plus the on-demand ``scale_out`` and ``colocation`` chapters to
their ``*_spec()`` factories, so the farm
(``python -m repro.store.farm --figure fig7``) and the query CLI
(``python -m repro.store.query pivot fig7 ...``) can resolve a sweep by
name.  ``power`` reuses the Figure-7 sweep — the power analysis
post-processes those very records.

Imports are lazy for the same reason as :mod:`repro.reporting.figures`:
:mod:`repro.experiments` imports the reporting package at module level,
so an eager import in the other direction would cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.scenarios.spec import SweepSpec


def _fig1(settings):
    from repro.experiments.fig1_scaling import figure1_spec

    return figure1_spec(settings=settings)


def _fig4(settings):
    from repro.experiments.fig4_snoops import figure4_spec

    return figure4_spec(settings=settings)


def _fig7(settings):
    from repro.experiments.fig7_performance import figure7_spec

    return figure7_spec(settings=settings)


def _fig9(settings):
    from repro.experiments.fig9_area_normalized import figure9_spec

    return figure9_spec(settings=settings)


def _power(settings):
    # The Section-6.4 power summary is post-processing over the Figure-7
    # sweep; filling fig7 warms power too.
    return _fig7(settings)


def _ablation_banking(settings):
    from repro.experiments.ablations import llc_banking_spec

    return llc_banking_spec(settings=settings)


def _ablation_arbitration(settings):
    from repro.experiments.ablations import tree_arbitration_spec

    return tree_arbitration_spec(settings=settings)


def _ablation_scaling(settings):
    from repro.experiments.ablations import scaling_spec

    return scaling_spec(settings=settings)


def _scale_out(settings):
    from repro.experiments.scale_out import scale_out_spec

    return scale_out_spec(settings=settings)


def _colocation(settings):
    from repro.experiments.colocation import colocation_spec

    return colocation_spec(settings=settings)


#: Figure name -> spec factory taking ``settings`` (None = honour the
#: environment via each factory's ``RunSettings.from_env()`` default).
SPEC_FACTORIES: Dict[str, Callable[[Optional[object]], SweepSpec]] = {
    "fig1": _fig1,
    "fig4": _fig4,
    "fig7": _fig7,
    "fig9": _fig9,
    "power": _power,
    "ablation_banking": _ablation_banking,
    "ablation_arbitration": _ablation_arbitration,
    "ablation_scaling": _ablation_scaling,
    "scale_out": _scale_out,
    "colocation": _colocation,
}


def spec_names() -> List[str]:
    """All registered sweep names, in registration order."""
    return list(SPEC_FACTORIES)


def figure_spec(name: str, settings=None) -> SweepSpec:
    """The registered sweep spec for ``name`` (KeyError lists what exists)."""
    try:
        factory = SPEC_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; available: {spec_names()}"
        ) from None
    return factory(settings)


def report_points(settings=None):
    """Every :class:`SweepPoint` any default report figure needs, deduplicated.

    The union of all registered specs' expansions (first occurrence wins),
    i.e. the full warm-store working set behind ``python -m
    repro.reporting``.  ``scale_out`` and ``colocation`` are on-demand
    chapters — fill them by passing their names to :func:`figure_spec`
    yourself; this helper covers only the committed-report set.
    """
    seen = {}
    for name in spec_names():
        if name in ("scale_out", "colocation"):
            continue
        for sweep_point in figure_spec(name, settings).expand():
            seen.setdefault(sweep_point.content_hash(), sweep_point)
    return list(seen.values())
