"""Compatibility re-export: the report tables moved to :mod:`repro.reporting`.

:class:`~repro.reporting.tables.ReportTable` and friends now live in
:mod:`repro.reporting.tables`, next to the Markdown/ASCII report layer that
grew around them.  This module survives so existing imports keep working;
new code should import from :mod:`repro.reporting.tables` directly.
"""

from repro.reporting.tables import (  # noqa: F401
    Cell,
    ReportTable,
    format_float,
    markdown_table,
    print_table,
    rows_from_dict,
)

__all__ = [
    "Cell",
    "ReportTable",
    "format_float",
    "markdown_table",
    "print_table",
    "rows_from_dict",
]
