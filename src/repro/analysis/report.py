"""Plain-text tables for reproducing the paper's figures on the console."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_float(value: float, digits: int = 3) -> str:
    """Uniform float formatting used across benchmark output."""
    return f"{value:.{digits}f}"


class ReportTable:
    """A small aligned-column text table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: Cell) -> str:
        if isinstance(cell, float):
            return format_float(cell)
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def print_table(table: ReportTable) -> None:
    """Print a table with a leading/trailing blank line for readability."""
    print()
    print(table.render())
    print()


def rows_from_dict(mapping: dict) -> Iterable[tuple]:
    """Convenience: (key, value) rows sorted by key."""
    return sorted(mapping.items())
