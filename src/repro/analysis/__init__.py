"""Analysis helpers: performance metrics and plain-text report tables."""

from repro.analysis.metrics import geometric_mean, normalize, speedup
from repro.analysis.report import ReportTable, format_float

__all__ = ["geometric_mean", "normalize", "speedup", "ReportTable", "format_float"]
