"""Analysis helpers: performance metrics (plus legacy table re-exports).

The report tables moved to :mod:`repro.reporting.tables`;
:mod:`repro.analysis.report` re-exports them for compatibility.
"""

from repro.analysis.metrics import geometric_mean, normalize, speedup
from repro.analysis.report import ReportTable, format_float

__all__ = ["geometric_mean", "normalize", "speedup", "ReportTable", "format_float"]
