"""Analysis helpers: performance metrics.

The report tables live in :mod:`repro.reporting.tables` (the
``repro.analysis.report`` compatibility re-export was retired after its
one grace release).
"""

from repro.analysis.metrics import geometric_mean, normalize, speedup

__all__ = ["geometric_mean", "normalize", "speedup"]
