"""Performance metrics used by the paper's evaluation."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used for the GMean bars of Figures 7 and 9."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalise a mapping of measurements to one baseline entry."""
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("cannot normalise to a zero baseline")
    return {key: value / baseline for key, value in values.items()}


def speedup(new: float, old: float) -> float:
    """Relative speedup of ``new`` over ``old``."""
    if old == 0:
        raise ValueError("cannot compute speedup over zero")
    return new / old


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (useful for rate-type metrics)."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


def percentile_key(p: float) -> str:
    """Canonical dict key for the ``p``-th percentile: ``p50``, ``p99.9``."""
    return f"p{int(p)}" if float(p).is_integer() else f"p{p:g}"


def tail_summary(
    histogram, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """Summarise a latency histogram as count/mean plus tail percentiles.

    Returns ``{"count", "mean", "p50", "p95", "p99"}`` (keys per
    ``percentiles``).  An empty histogram summarises to zero count/mean
    with *no* percentile keys — a missing key reads as "not measured",
    never as a fabricated 0.0 tail.  A non-empty histogram that discarded
    its samples (``keep_samples=False``) raises
    :class:`repro.sim.stats.StatError`, preserving the percentile
    contract.
    """
    summary: Dict[str, float] = {
        "count": float(histogram.count),
        "mean": float(histogram.mean),
    }
    if histogram.count:
        for p in percentiles:
            summary[percentile_key(p)] = float(histogram.percentile(p))
    return summary
