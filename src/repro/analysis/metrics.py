"""Performance metrics used by the paper's evaluation."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used for the GMean bars of Figures 7 and 9."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalise a mapping of measurements to one baseline entry."""
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("cannot normalise to a zero baseline")
    return {key: value / baseline for key, value in values.items()}


def speedup(new: float, old: float) -> float:
    """Relative speedup of ``new`` over ``old``."""
    if old == 0:
        raise ValueError("cannot compute speedup over zero")
    return new / old


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (useful for rate-type metrics)."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)
