"""Private first-level caches (32 KB L1-I and L1-D, Table 1)."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.set_assoc import CacheLineState, SetAssociativeCache
from repro.config.cache import CacheConfig


class L1Cache:
    """A private L1 cache: a tag/state array plus access statistics.

    The L1 is a purely functional structure; its hit latency is charged by
    the core timing model and misses are turned into coherence requests by
    :class:`repro.cpu.core_node.CoreNode`.
    """

    def __init__(self, config: CacheConfig, name: str, is_instruction: bool = False) -> None:
        self.config = config
        self.name = name
        self.is_instruction = is_instruction
        self.array = SetAssociativeCache(config, name=name)
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.upgrade_misses = 0
        self.snoop_invalidations = 0
        self.snoop_downgrades = 0

    # ------------------------------------------------------------------ #
    # Core-side accesses
    # ------------------------------------------------------------------ #
    def read(self, addr: int) -> bool:
        """Look up ``addr`` for a read; returns ``True`` on a hit."""
        state = self.array.lookup(addr)
        if state is not None and state.is_valid:
            self.read_hits += 1
            return True
        self.read_misses += 1
        return False

    def write(self, addr: int) -> Tuple[bool, bool]:
        """Look up ``addr`` for a write.

        Returns ``(hit, needs_upgrade)``: a hit requires write permission;
        a resident-but-shared line is a miss that only needs an upgrade.
        """
        if self.is_instruction:
            raise RuntimeError(f"{self.name}: writes to the instruction cache are not allowed")
        state = self.array.lookup(addr)
        if state is None:
            self.write_misses += 1
            return False, False
        if state.is_writable:
            if state == CacheLineState.EXCLUSIVE:
                self.array.update_state(addr, CacheLineState.MODIFIED)
            self.write_hits += 1
            return True, False
        self.write_misses += 1
        self.upgrade_misses += 1
        return False, True

    def fill(self, addr: int, writable: bool) -> Optional[Tuple[int, CacheLineState]]:
        """Install a block returned by the directory; returns the victim."""
        state = CacheLineState.MODIFIED if writable else CacheLineState.SHARED
        if self.is_instruction:
            state = CacheLineState.SHARED
        return self.array.insert(addr, state)

    # ------------------------------------------------------------------ #
    # Snoop-side accesses
    # ------------------------------------------------------------------ #
    def snoop_invalidate(self, addr: int) -> Optional[CacheLineState]:
        """Invalidate ``addr``; returns the previous state, if resident."""
        previous = self.array.invalidate(addr)
        if previous is not None:
            self.snoop_invalidations += 1
        return previous

    def snoop_downgrade(self, addr: int) -> Optional[CacheLineState]:
        """Downgrade ``addr`` to shared; returns the previous state."""
        previous = self.array.probe(addr)
        if previous is not None and previous.is_writable:
            self.array.update_state(addr, CacheLineState.SHARED)
            self.snoop_downgrades += 1
        return previous

    # ------------------------------------------------------------------ #
    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
