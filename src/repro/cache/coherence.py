"""Coherence protocol message payloads and directory state.

The protocol is a directory-based MESI-style protocol reduced to the three
stable directory states the paper's traffic analysis needs (I, S, M) and
the three network message classes it relies on for deadlock freedom:

* **requests** (core -> directory): GetS, GetX, PutM;
* **snoops** (directory -> core): invalidate, forward, forward-invalidate;
* **responses** (both directions): data, invalidation acks, forwarded data,
  and memory fills.

Cache-to-cache transfers are resolved through the directory (3-hop), which
matches the paper's observation that such transfers are triggered by fewer
than 2 % of LLC accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Set


class CoherenceRequestType(Enum):
    """Core-originated request types."""

    GETS = "GetS"  # read (instruction fetch or load)
    GETX = "GetX"  # write / upgrade
    PUTM = "PutM"  # dirty writeback


class SnoopType(Enum):
    """Directory-originated snoop types."""

    INVALIDATE = "Inv"
    FORWARD = "Fwd"          # owner supplies data and downgrades to shared
    FORWARD_INV = "FwdInv"   # owner supplies data and invalidates


class ResponseType(Enum):
    """Response types (shared network class)."""

    DATA = "Data"            # directory -> requesting core (carries a block)
    INV_ACK = "InvAck"       # core -> directory
    FWD_DATA = "FwdData"     # owner core -> directory (carries a block)
    MEM_DATA = "MemData"     # memory controller -> directory (carries a block)
    WB_ACK = "WbAck"         # directory -> core (writeback acknowledged)


@dataclass
class CacheRequest:
    """A request from a core's L1 to the home directory."""

    req_type: CoherenceRequestType
    addr: int
    requester_node: int
    requester_core: int
    is_instruction: bool = False


@dataclass
class SnoopRequest:
    """A snoop from the home directory to a core's L1."""

    snoop_type: SnoopType
    addr: int
    home_node: int
    target_core: int


@dataclass
class Response:
    """A response message (data or acknowledgement)."""

    resp_type: ResponseType
    addr: int
    target_core: Optional[int] = None
    is_instruction: bool = False
    grants_exclusive: bool = False


@dataclass
class MemoryRequest:
    """A fill request from the home directory to a memory controller."""

    addr: int
    home_node: int


class DirectoryState(Enum):
    """Stable directory states."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class DirectoryEntry:
    """Directory bookkeeping for one cache block."""

    state: DirectoryState = DirectoryState.INVALID
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None

    def check_invariants(self) -> None:
        """Raise if the entry violates the protocol invariants."""
        if self.state == DirectoryState.MODIFIED:
            if self.owner is None:
                raise AssertionError("M state requires an owner")
            if self.sharers - {self.owner}:
                raise AssertionError("M state cannot have other sharers")
        if self.state == DirectoryState.INVALID and (self.sharers or self.owner is not None):
            raise AssertionError("I state cannot have sharers or an owner")
        if self.state == DirectoryState.SHARED and self.owner is not None:
            raise AssertionError("S state cannot have an owner")
