"""Directory controller: the home node logic of the coherence protocol.

Each LLC tile (NOC-Out) or LLC slice (tiled chips) embeds a directory that
tracks which cores hold each block.  The directory services GetS/GetX
requests, fetches blocks from memory on LLC misses, and — rarely, for the
scale-out workloads the paper studies — sends snoop messages to cores that
hold conflicting copies.  The fraction of LLC accesses that trigger a snoop
is the statistic reported in Figure 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.cache.address import AddressMapper
from repro.cache.coherence import (
    CacheRequest,
    CoherenceRequestType,
    DirectoryEntry,
    DirectoryState,
    MemoryRequest,
    Response,
    ResponseType,
    SnoopRequest,
    SnoopType,
)
from repro.cache.llc import LLCBank
from repro.config.cache import CacheConfig
from repro.noc.message import MessageClass
from repro.sim.component import Component
from repro.sim.kernel import Simulator

#: send(dst_node, msg_class, payload, carries_data)
SendFunction = Callable[[int, MessageClass, object, bool], None]


@dataclass
class Transaction:
    """Bookkeeping for one in-flight request at the home directory."""

    request: CacheRequest
    acks_needed: int = 0
    acks_received: int = 0
    waiting_for_forward: bool = False
    waiting_for_memory: bool = False
    have_data: bool = False
    forwarded_from: Optional[int] = None
    triggered_snoop: bool = False
    start_cycle: int = 0

    @property
    def complete(self) -> bool:
        return (
            self.have_data
            and not self.waiting_for_forward
            and not self.waiting_for_memory
            and self.acks_received >= self.acks_needed
        )


class DirectoryController(Component):
    """The directory + LLC slice logic of one home node."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node_id: int,
        bank_configs: List[CacheConfig],
        mapper: AddressMapper,
        send: SendFunction,
        core_node_for: Callable[[int], int],
        mc_node_for: Callable[[int], int],
    ) -> None:
        super().__init__(sim, name)
        if not bank_configs:
            raise ValueError("a directory needs at least one LLC bank")
        self.node_id = node_id
        self.mapper = mapper
        self._send = send
        self._core_node_for = core_node_for
        self._mc_node_for = mc_node_for
        self.banks = [
            LLCBank(config, name=f"{name}.bank{index}", index_divisor=mapper.num_llc_banks)
            for index, config in enumerate(bank_configs)
        ]
        self.entries: Dict[int, DirectoryEntry] = {}
        self.transactions: Dict[int, Transaction] = {}
        self._deferred: Dict[int, Deque[CacheRequest]] = {}

        stats = self.stats
        self.llc_accesses = stats.counter("llc_accesses")
        self.llc_hits = stats.counter("llc_hits")
        self.llc_misses = stats.counter("llc_misses")
        self.snoop_triggering_accesses = stats.counter("snoop_triggering_accesses")
        self.snoops_sent = stats.counter("snoops_sent")
        self.memory_fetches = stats.counter("memory_fetches")
        self.writebacks = stats.counter("writebacks")
        self.request_latency = stats.histogram("request_latency", keep_samples=False)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def bank_for(self, addr: int) -> LLCBank:
        """The internal bank servicing ``addr``."""
        return self.banks[self.mapper.home_bank(addr) % len(self.banks)]

    def _entry(self, addr: int) -> DirectoryEntry:
        return self.entries.setdefault(addr, DirectoryEntry())

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def handle_request(self, request: CacheRequest) -> None:
        """Entry point for GetS / GetX / PutM messages."""
        addr = self.mapper.block_address(request.addr)
        request.addr = addr
        if request.req_type == CoherenceRequestType.PUTM:
            self._handle_writeback(request)
            return
        if addr in self.transactions:
            self._deferred.setdefault(addr, deque()).append(request)
            return
        self._start_transaction(request)

    def _start_transaction(self, request: CacheRequest) -> None:
        addr = request.addr
        transaction = Transaction(request=request, start_cycle=self.sim.cycle)
        self.transactions[addr] = transaction
        completion = self.bank_for(addr).schedule_access(self.sim.cycle)
        self.sim.schedule_at(lambda r=request: self._process_request(r), completion)

    def _handle_writeback(self, request: CacheRequest) -> None:
        addr = request.addr
        self.writebacks.add()
        entry = self._entry(addr)
        if entry.state == DirectoryState.MODIFIED and entry.owner == request.requester_core:
            entry.state = DirectoryState.INVALID
            entry.owner = None
            entry.sharers.clear()
        else:
            entry.sharers.discard(request.requester_core)
        self.bank_for(addr).writeback(addr)

    def _process_request(self, request: CacheRequest) -> None:
        addr = request.addr
        transaction = self.transactions[addr]
        entry = self._entry(addr)
        self.llc_accesses.add()

        if request.req_type == CoherenceRequestType.GETS:
            self._process_gets(request, transaction, entry)
        elif request.req_type == CoherenceRequestType.GETX:
            self._process_getx(request, transaction, entry)
        else:  # pragma: no cover - PutM never reaches here
            raise RuntimeError(f"unexpected request type {request.req_type}")

        self._maybe_complete(addr)

    def _process_gets(
        self, request: CacheRequest, transaction: Transaction, entry: DirectoryEntry
    ) -> None:
        addr = request.addr
        requester = request.requester_core
        if entry.state == DirectoryState.MODIFIED and entry.owner != requester:
            self._send_snoop(SnoopType.FORWARD, addr, entry.owner, transaction)
            transaction.waiting_for_forward = True
            transaction.forwarded_from = entry.owner
            return
        if self.bank_for(addr).contains(addr):
            self.llc_hits.add()
            transaction.have_data = True
        else:
            self.llc_misses.add()
            self._fetch_from_memory(addr, transaction)

    def _process_getx(
        self, request: CacheRequest, transaction: Transaction, entry: DirectoryEntry
    ) -> None:
        addr = request.addr
        requester = request.requester_core
        if entry.state == DirectoryState.MODIFIED and entry.owner != requester:
            self._send_snoop(SnoopType.FORWARD_INV, addr, entry.owner, transaction)
            transaction.waiting_for_forward = True
            transaction.forwarded_from = entry.owner
            return
        other_sharers = entry.sharers - {requester}
        if entry.state == DirectoryState.SHARED and other_sharers:
            for sharer in sorted(other_sharers):
                self._send_snoop(SnoopType.INVALIDATE, addr, sharer, transaction)
            transaction.acks_needed = len(other_sharers)
        if self.bank_for(addr).contains(addr):
            self.llc_hits.add()
            transaction.have_data = True
        else:
            self.llc_misses.add()
            self._fetch_from_memory(addr, transaction)

    # ------------------------------------------------------------------ #
    # Snoops and memory fills
    # ------------------------------------------------------------------ #
    def _send_snoop(self, snoop_type: SnoopType, addr: int, target_core: int, transaction: Transaction) -> None:
        if target_core is None:
            raise RuntimeError(f"{self.name}: snoop with no target for {addr:#x}")
        snoop = SnoopRequest(snoop_type, addr, home_node=self.node_id, target_core=target_core)
        self._send(self._core_node_for(target_core), MessageClass.SNOOP, snoop, False)
        self.snoops_sent.add()
        if not transaction.triggered_snoop:
            transaction.triggered_snoop = True
            self.snoop_triggering_accesses.add()

    def _fetch_from_memory(self, addr: int, transaction: Transaction) -> None:
        transaction.waiting_for_memory = True
        self.memory_fetches.add()
        request = MemoryRequest(addr=addr, home_node=self.node_id)
        self._send(self._mc_node_for(addr), MessageClass.REQUEST, request, False)

    # ------------------------------------------------------------------ #
    # Response path
    # ------------------------------------------------------------------ #
    def handle_response(self, response: Response) -> None:
        """Entry point for InvAck / FwdData / MemData messages."""
        addr = self.mapper.block_address(response.addr)
        transaction = self.transactions.get(addr)
        if transaction is None:
            return  # stale response from a race resolved by a silent eviction
        if response.resp_type == ResponseType.INV_ACK:
            transaction.acks_received += 1
        elif response.resp_type == ResponseType.FWD_DATA:
            transaction.waiting_for_forward = False
            transaction.have_data = True
            self.bank_for(addr).writeback(addr)
        elif response.resp_type == ResponseType.MEM_DATA:
            transaction.waiting_for_memory = False
            transaction.have_data = True
            self.bank_for(addr).fill(addr)
        else:  # pragma: no cover - cores never send DATA to the directory
            raise RuntimeError(f"unexpected response {response.resp_type}")
        self._maybe_complete(addr)

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def _maybe_complete(self, addr: int) -> None:
        transaction = self.transactions.get(addr)
        if transaction is None or not transaction.complete:
            return
        request = transaction.request
        entry = self._entry(addr)
        requester = request.requester_core
        exclusive = request.req_type == CoherenceRequestType.GETX

        if exclusive:
            entry.state = DirectoryState.MODIFIED
            entry.owner = requester
            entry.sharers = {requester}
        else:
            if entry.state == DirectoryState.MODIFIED and entry.owner == requester:
                pass  # owner re-reading its own modified block
            else:
                entry.state = DirectoryState.SHARED
                entry.owner = None
                entry.sharers.add(requester)
                if transaction.forwarded_from is not None:
                    entry.sharers.add(transaction.forwarded_from)
        entry.check_invariants()

        response = Response(
            ResponseType.DATA,
            addr,
            target_core=requester,
            is_instruction=request.is_instruction,
            grants_exclusive=exclusive,
        )
        self._send(request.requester_node, MessageClass.RESPONSE, response, True)
        self.request_latency.add(self.sim.cycle - transaction.start_cycle)

        del self.transactions[addr]
        deferred = self._deferred.get(addr)
        if deferred:
            next_request = deferred.popleft()
            if not deferred:
                del self._deferred[addr]
            self._start_transaction(next_request)

    # ------------------------------------------------------------------ #
    # Warm-up support and statistics
    # ------------------------------------------------------------------ #
    def warm_fill(self, addr: int, sharer: Optional[int] = None, writable: bool = False) -> None:
        """Functionally install a block (and optionally a sharer) during warm-up."""
        addr = self.mapper.block_address(addr)
        self.bank_for(addr).array.insert(addr)
        if sharer is None:
            return
        entry = self._entry(addr)
        if writable:
            entry.state = DirectoryState.MODIFIED
            entry.owner = sharer
            entry.sharers = {sharer}
        elif entry.state != DirectoryState.MODIFIED:
            entry.state = DirectoryState.SHARED
            entry.owner = None
            entry.sharers.add(sharer)

    def reset_statistics(self) -> None:
        """Clear measurement counters (used after warm-up)."""
        self.stats.reset()
        for bank in self.banks:
            bank.accesses = 0
            bank.hits = 0
            bank.misses = 0
            bank.busy_conflicts = 0
            bank.array.hits = 0
            bank.array.misses = 0
            bank.array.evictions = 0

    @property
    def snoop_rate(self) -> float:
        """Fraction of LLC accesses that triggered at least one snoop (Figure 4)."""
        accesses = self.llc_accesses.value
        return self.snoop_triggering_accesses.value / accesses if accesses else 0.0

    def _tick(self) -> None:  # pragma: no cover - event driven, never ticks
        pass
