"""Last-level cache banks.

An LLC bank is a slice of the shared NUCA cache: a tag array plus a simple
bank-occupancy model (one access at a time, ``hit_latency`` cycles each)
that creates the bank contention the paper observes on Data Serving when
the LLC is concentrated into a few NOC-Out tiles.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.set_assoc import CacheLineState, SetAssociativeCache
from repro.config.cache import CacheConfig


class LLCBank:
    """One internally banked slice of the shared last-level cache."""

    def __init__(self, config: CacheConfig, name: str, index_divisor: int = 1) -> None:
        self.config = config
        self.name = name
        self.array = SetAssociativeCache(config, name=name, index_divisor=index_divisor)
        self.access_latency = config.hit_latency
        self._busy_until = 0
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.busy_conflicts = 0

    # ------------------------------------------------------------------ #
    def schedule_access(self, now: int) -> int:
        """Reserve the bank for one access starting at ``now``.

        Returns the cycle at which the access completes; back-to-back
        accesses serialize on the bank, modelling bank contention.
        """
        start = max(now, self._busy_until)
        if start > now:
            self.busy_conflicts += 1
        self._busy_until = start + self.access_latency
        self.accesses += 1
        return self._busy_until

    # ------------------------------------------------------------------ #
    def contains(self, addr: int) -> bool:
        """Whether the block is resident (records hit/miss statistics)."""
        present = self.array.lookup(addr) is not None
        if present:
            self.hits += 1
        else:
            self.misses += 1
        return present

    def probe(self, addr: int) -> bool:
        """Presence check without statistics or LRU update."""
        return self.array.probe(addr) is not None

    def fill(self, addr: int) -> Optional[Tuple[int, CacheLineState]]:
        """Install a block fetched from memory; returns the victim, if any."""
        return self.array.insert(addr, CacheLineState.SHARED)

    def writeback(self, addr: int) -> None:
        """Absorb a dirty writeback from a core."""
        self.array.insert(addr, CacheLineState.MODIFIED)

    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def busy_until(self) -> int:
        return self._busy_until
