"""Miss status holding registers (MSHRs) for the private caches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MshrEntry:
    """An outstanding miss for one cache block."""

    addr: int
    is_instruction: bool
    wants_exclusive: bool = False
    issue_cycle: int = 0
    merged_accesses: int = 1
    waiters: List[object] = field(default_factory=list)


class MshrFile:
    """A small fully-associative file of outstanding misses.

    Requests to a block that already has an outstanding miss are merged into
    the existing entry instead of generating duplicate network traffic.
    """

    def __init__(self, num_entries: int, name: str = "mshr") -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.name = name
        self.num_entries = num_entries
        self._entries: Dict[int, MshrEntry] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    # ------------------------------------------------------------------ #
    def lookup(self, addr: int) -> Optional[MshrEntry]:
        return self._entries.get(addr)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def allocate(
        self,
        addr: int,
        is_instruction: bool,
        wants_exclusive: bool,
        issue_cycle: int,
    ) -> MshrEntry:
        """Allocate a new entry (the caller must check :attr:`full` first)."""
        if addr in self._entries:
            raise RuntimeError(f"{self.name}: entry for {addr:#x} already exists")
        if self.full:
            self.full_stalls += 1
            raise RuntimeError(f"{self.name}: MSHR file full")
        entry = MshrEntry(
            addr=addr,
            is_instruction=is_instruction,
            wants_exclusive=wants_exclusive,
            issue_cycle=issue_cycle,
        )
        self._entries[addr] = entry
        self.allocations += 1
        return entry

    def merge(self, addr: int, wants_exclusive: bool = False) -> MshrEntry:
        """Merge another access into an existing outstanding miss."""
        entry = self._entries[addr]
        entry.merged_accesses += 1
        entry.wants_exclusive = entry.wants_exclusive or wants_exclusive
        self.merges += 1
        return entry

    def release(self, addr: int) -> MshrEntry:
        """Retire the outstanding miss for ``addr``."""
        try:
            return self._entries.pop(addr)
        except KeyError:
            raise KeyError(f"{self.name}: no outstanding miss for {addr:#x}") from None

    # ------------------------------------------------------------------ #
    @property
    def outstanding(self) -> int:
        return len(self._entries)

    def outstanding_addresses(self) -> List[int]:
        return list(self._entries)
