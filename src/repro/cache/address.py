"""Physical address manipulation and NUCA interleaving."""

from __future__ import annotations


class AddressMapper:
    """Block-granular address arithmetic and home-bank interleaving.

    Cache blocks are interleaved across the LLC banks/slices (block i lives
    in bank ``i mod num_banks``), and memory traffic is interleaved across
    the memory channels at a coarser 4 KB granularity, as is customary for
    DDR3 systems.
    """

    def __init__(self, block_size: int = 64, num_llc_banks: int = 16, num_memory_channels: int = 4) -> None:
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if num_llc_banks < 1 or num_memory_channels < 1:
            raise ValueError("bank and channel counts must be >= 1")
        self.block_size = block_size
        self.num_llc_banks = num_llc_banks
        self.num_memory_channels = num_memory_channels
        self._block_shift = block_size.bit_length() - 1
        self._page_shift = 12  # 4 KB memory-channel interleaving

    # ------------------------------------------------------------------ #
    def block_address(self, addr: int) -> int:
        """Align ``addr`` down to its cache-block base address."""
        return (addr >> self._block_shift) << self._block_shift

    def block_number(self, addr: int) -> int:
        """Sequential index of the cache block containing ``addr``."""
        return addr >> self._block_shift

    def home_bank(self, addr: int) -> int:
        """LLC bank (or slice) index owning ``addr``."""
        return self.block_number(addr) % self.num_llc_banks

    def memory_channel(self, addr: int) -> int:
        """Memory channel servicing ``addr``."""
        return (addr >> self._page_shift) % self.num_memory_channels

    def same_block(self, addr_a: int, addr_b: int) -> bool:
        """Whether two addresses fall in the same cache block."""
        return self.block_number(addr_a) == self.block_number(addr_b)
