"""A simple DDR3 channel timing model."""

from __future__ import annotations


class DramChannel:
    """One memory channel: fixed access latency plus bandwidth occupancy.

    Each block transfer occupies the channel for ``occupancy_cycles``
    (block size divided by channel bandwidth); requests that arrive while
    the channel is busy queue behind it.  The access latency models the
    DRAM core (row activation, CAS) and is not pipelined away.
    """

    def __init__(self, latency_cycles: int, occupancy_cycles: float, name: str = "dram") -> None:
        if latency_cycles < 1:
            raise ValueError("latency_cycles must be >= 1")
        if occupancy_cycles <= 0:
            raise ValueError("occupancy_cycles must be positive")
        self.name = name
        self.latency_cycles = latency_cycles
        self.occupancy_cycles = occupancy_cycles
        self._free_at = 0.0
        self.requests = 0
        self.total_queue_cycles = 0.0

    def schedule(self, now: int) -> int:
        """Admit a block transfer at cycle ``now``; returns its completion cycle."""
        start = max(float(now), self._free_at)
        self.total_queue_cycles += start - now
        self._free_at = start + self.occupancy_cycles
        self.requests += 1
        return int(round(start + self.latency_cycles))

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_cycles / self.requests if self.requests else 0.0

    @property
    def free_at(self) -> float:
        return self._free_at
