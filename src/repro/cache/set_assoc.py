"""Set-associative cache arrays with true LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.config.cache import CacheConfig


class CacheLineState(Enum):
    """MESI-style stable states tracked in the private caches."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    @property
    def is_valid(self) -> bool:
        return self != CacheLineState.INVALID

    @property
    def is_writable(self) -> bool:
        return self in (CacheLineState.EXCLUSIVE, CacheLineState.MODIFIED)


class SetAssociativeCache:
    """A tag array with per-line state and true-LRU replacement.

    Only tags and states are modelled (no data values); the simulator tracks
    timing and protocol behaviour, not program semantics.
    """

    def __init__(self, config: CacheConfig, name: str = "cache", index_divisor: int = 1) -> None:
        if index_divisor < 1:
            raise ValueError("index_divisor must be >= 1")
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self._block_shift = config.block_size.bit_length() - 1
        # Banked caches (the NUCA LLC) interleave consecutive blocks across
        # banks; dividing the block number by the bank count before indexing
        # keeps all sets of each bank usable.
        self._index_divisor = index_divisor
        # One ordered dict per set: tag -> state, ordered from LRU to MRU.
        self._sets: List["OrderedDict[int, CacheLineState]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def _index_and_tag(self, addr: int) -> Tuple[int, int]:
        """Set index and line key for ``addr``.

        The "tag" returned here is the full block number, which keeps victim
        address reconstruction exact even for banked (interleaved) caches.
        """
        block = addr >> self._block_shift
        local = block // self._index_divisor
        return local % self.num_sets, block

    def block_address(self, addr: int) -> int:
        return (addr >> self._block_shift) << self._block_shift

    # ------------------------------------------------------------------ #
    def lookup(self, addr: int, update_lru: bool = True) -> Optional[CacheLineState]:
        """Return the line state if ``addr`` is present, else ``None``."""
        index, tag = self._index_and_tag(addr)
        cache_set = self._sets[index]
        if tag not in cache_set:
            self.misses += 1
            return None
        if update_lru:
            cache_set.move_to_end(tag)
        self.hits += 1
        return cache_set[tag]

    def probe(self, addr: int) -> Optional[CacheLineState]:
        """Like :meth:`lookup` but without touching LRU or statistics."""
        index, tag = self._index_and_tag(addr)
        return self._sets[index].get(tag)

    def insert(
        self, addr: int, state: CacheLineState = CacheLineState.SHARED
    ) -> Optional[Tuple[int, CacheLineState]]:
        """Install ``addr`` with ``state``; returns the victim, if any.

        The victim is reported as ``(block_address, state)`` so the caller
        can issue a writeback for modified lines.
        """
        if state == CacheLineState.INVALID:
            raise ValueError("cannot insert a line in the INVALID state")
        index, tag = self._index_and_tag(addr)
        cache_set = self._sets[index]
        victim = None
        if tag in cache_set:
            cache_set[tag] = state
            cache_set.move_to_end(tag)
            return None
        if len(cache_set) >= self.associativity:
            victim_tag, victim_state = cache_set.popitem(last=False)
            victim = (victim_tag << self._block_shift, victim_state)
            self.evictions += 1
        cache_set[tag] = state
        return victim

    def update_state(self, addr: int, state: CacheLineState) -> None:
        """Change the state of a resident line (or invalidate it)."""
        index, tag = self._index_and_tag(addr)
        cache_set = self._sets[index]
        if tag not in cache_set:
            return
        if state == CacheLineState.INVALID:
            del cache_set[tag]
        else:
            cache_set[tag] = state

    def invalidate(self, addr: int) -> Optional[CacheLineState]:
        """Remove ``addr`` if present; returns its previous state."""
        index, tag = self._index_and_tag(addr)
        cache_set = self._sets[index]
        return cache_set.pop(tag, None)

    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.associativity

    def resident_blocks(self) -> Dict[int, CacheLineState]:
        """All resident blocks and their states (for invariant checking)."""
        result: Dict[int, CacheLineState] = {}
        for cache_set in self._sets:
            for tag, state in cache_set.items():
                result[tag << self._block_shift] = state
        return result

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
