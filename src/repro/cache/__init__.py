"""Cache hierarchy and coherence substrate.

The paper's chips have per-core L1-I/L1-D caches, a shared NUCA LLC with an
embedded directory, and four memory channels.  This package provides all of
those pieces plus the MESI-style directory protocol with the three message
classes (requests, snoops, responses) the NOC designs rely on for deadlock
freedom.
"""

from repro.cache.address import AddressMapper
from repro.cache.set_assoc import CacheLineState, SetAssociativeCache
from repro.cache.mshr import MshrFile
from repro.cache.l1 import L1Cache
from repro.cache.llc import LLCBank
from repro.cache.coherence import (
    CacheRequest,
    CoherenceRequestType,
    MemoryRequest,
    Response,
    ResponseType,
    SnoopRequest,
    SnoopType,
)
from repro.cache.directory import DirectoryController
from repro.cache.dram import DramChannel
from repro.cache.memory_controller import MemoryController

__all__ = [
    "AddressMapper",
    "CacheLineState",
    "SetAssociativeCache",
    "MshrFile",
    "L1Cache",
    "LLCBank",
    "CacheRequest",
    "CoherenceRequestType",
    "MemoryRequest",
    "Response",
    "ResponseType",
    "SnoopRequest",
    "SnoopType",
    "DirectoryController",
    "DramChannel",
    "MemoryController",
]
