"""Memory controller endpoints (one per DDR3 channel)."""

from __future__ import annotations

from typing import Callable

from repro.cache.coherence import MemoryRequest, Response, ResponseType
from repro.cache.dram import DramChannel
from repro.config.cache import CacheHierarchyConfig
from repro.noc.message import MessageClass
from repro.sim.component import Component
from repro.sim.kernel import Simulator

#: send(dst_node, msg_class, payload, carries_data)
SendFunction = Callable[[int, MessageClass, object, bool], None]


class MemoryController(Component):
    """Services LLC fill requests from one DDR3-1667 channel."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node_id: int,
        config: CacheHierarchyConfig,
        send: SendFunction,
    ) -> None:
        super().__init__(sim, name)
        self.node_id = node_id
        self._send = send
        occupancy = config.block_size / config.dram_bandwidth_bytes_per_cycle
        self.channel = DramChannel(config.dram_latency_cycles, occupancy, name=f"{name}.chan")
        self.requests_serviced = self.stats.counter("requests_serviced")
        self.read_latency = self.stats.histogram("read_latency", keep_samples=False)

    # ------------------------------------------------------------------ #
    def handle_memory_request(self, request: MemoryRequest) -> None:
        """Admit a fill request and schedule its response."""
        arrival = self.sim.cycle
        completion = self.channel.schedule(arrival)
        self.sim.schedule_at(lambda r=request, a=arrival: self._complete(r, a), completion)

    def _complete(self, request: MemoryRequest, arrival: int) -> None:
        self.requests_serviced.add()
        self.read_latency.add(self.sim.cycle - arrival)
        response = Response(ResponseType.MEM_DATA, request.addr)
        self._send(request.home_node, MessageClass.RESPONSE, response, True)

    def _tick(self) -> None:  # pragma: no cover - event driven, never ticks
        pass
