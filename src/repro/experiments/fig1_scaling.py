"""Figure 1: per-core performance vs. core count, ideal vs. mesh interconnect.

An 8 MB LLC is shared by all cores; growing the core count grows the die
and therefore the average core-to-LLC distance.  With an ideal (wire-only)
interconnect per-core performance degrades slowly; with a mesh the extra
router traversals cost ~22 % at 64 cores.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.report import ReportTable
from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.engine import run_experiments
from repro.experiments.harness import RunSettings, point_for

#: Core counts swept in Figure 1.
CORE_COUNTS = (1, 2, 4, 8, 16, 32, 64)
#: The two workloads shown in Figure 1.
WORKLOADS = tuple(presets.FIGURE1_WORKLOADS)
#: Paper reference: at 64 cores the mesh loses ~22 % vs. the ideal fabric.
PAPER_MESH_PENALTY_AT_64 = 0.22


def run_figure1(
    workload_names: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Per-core performance normalised to the single-core run.

    Returns ``{workload: {"ideal"|"mesh": {core_count: normalised per-core perf}}}``.
    All workload x fabric x core-count points run as one engine batch.
    """
    names = list(workload_names) if workload_names is not None else list(WORKLOADS)
    settings = settings or RunSettings.from_env()
    series = ((Topology.IDEAL, "ideal"), (Topology.MESH, "mesh"))

    keys = []
    points = []
    for name in names:
        workload = presets.workload(name)
        for topology, label in series:
            for count in core_counts:
                keys.append((name, label, count))
                points.append(
                    point_for(topology, workload, num_cores=count, settings=settings)
                )
    per_core = dict(
        zip(keys, (result.per_core_ipc for result in run_experiments(points, jobs=jobs)))
    )

    curves: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name in names:
        curves[name] = {}
        for _, label in series:
            baseline = per_core[(name, label, core_counts[0])]
            curves[name][label] = {
                count: (per_core[(name, label, count)] / baseline if baseline else 0.0)
                for count in core_counts
            }
    return curves


def mesh_penalty(curves: Dict[str, Dict[str, Dict[int, float]]], core_count: int = 64) -> float:
    """Average performance loss of the mesh vs. ideal at ``core_count`` cores."""
    penalties = []
    for name, data in curves.items():
        ideal = data["ideal"].get(core_count)
        mesh = data["mesh"].get(core_count)
        if ideal and mesh:
            penalties.append(1.0 - mesh / ideal)
    return sum(penalties) / len(penalties) if penalties else 0.0


def render_figure1(curves: Dict[str, Dict[str, Dict[int, float]]]) -> ReportTable:
    """Text rendition of Figure 1."""
    core_counts = sorted(next(iter(curves.values()))["ideal"])
    table = ReportTable(
        ["Series"] + [str(c) for c in core_counts],
        title="Figure 1: per-core performance normalised to 1 core",
    )
    for name, data in curves.items():
        for label in ("ideal", "mesh"):
            series = data[label]
            table.add_row(
                f"{name} ({label.capitalize()})",
                *[series[count] for count in core_counts],
            )
    return table
