"""Figure 1: per-core performance vs. core count, ideal vs. mesh interconnect.

An 8 MB LLC is shared by all cores; growing the core count grows the die
and therefore the average core-to-LLC distance.  With an ideal (wire-only)
interconnect per-core performance degrades slowly; with a mesh the extra
router traversals cost ~22 % at 64 cores.

The sweep is declared as a :class:`~repro.scenarios.spec.SweepSpec`
(workload x fabric x core count) and executed with
:func:`~repro.scenarios.run.run_sweep`; :func:`run_figure1` then pivots the
records into the figure's ``{workload: {series: {cores: value}}}`` shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.config import presets
from repro.experiments.harness import RunSettings
from repro.reporting import baselines
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import ResultSet, SweepSpec, run_sweep

#: Core counts swept in Figure 1.
CORE_COUNTS = (1, 2, 4, 8, 16, 32, 64)
#: The two workloads shown in Figure 1.
WORKLOADS = tuple(presets.FIGURE1_WORKLOADS)
#: The two fabric series of the figure (topology preset names).
SERIES = ("ideal", "mesh")
#: Paper reference: at 64 cores the mesh loses ~22 % vs. the ideal fabric
#: (digitized in :mod:`repro.reporting.baselines`).
PAPER_MESH_PENALTY_AT_64 = (
    baselines.FIG1.value("mesh penalty vs ideal @ 64 cores") / 100.0
)


def figure1_spec(
    workload_names: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    """The Figure-1 sweep as declarative data."""
    names = tuple(workload_names) if workload_names is not None else WORKLOADS
    return SweepSpec(
        axes={
            "workload": names,
            "topology": SERIES,
            "num_cores": tuple(core_counts),
        },
        settings=settings or RunSettings.from_env(),
    )


def normalise_figure1(results: ResultSet) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Pivot sweep records into the figure's normalised nested-dict shape."""
    curves: Dict[str, Dict[str, Dict[int, float]]] = {}
    core_counts = results.axis_values("num_cores")
    for name in results.axis_values("workload"):
        curves[name] = {}
        for label in results.axis_values("topology"):
            series = {
                count: results.value(
                    "per_core_ipc", workload=name, topology=label, num_cores=count
                )
                for count in core_counts
            }
            baseline = series[core_counts[0]]
            curves[name][label] = {
                count: (value / baseline if baseline else 0.0)
                for count, value in series.items()
            }
    return curves


def run_figure1(
    workload_names: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Per-core performance normalised to the single-core run.

    Returns ``{workload: {"ideal"|"mesh": {core_count: normalised per-core perf}}}``.
    All workload x fabric x core-count points run as one engine batch.
    """
    spec = figure1_spec(workload_names, core_counts, settings)
    return normalise_figure1(
        run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)
    )


def mesh_penalty(curves: Dict[str, Dict[str, Dict[int, float]]], core_count: int = 64) -> float:
    """Average performance loss of the mesh vs. ideal at ``core_count`` cores."""
    penalties = []
    for name, data in curves.items():
        ideal = data["ideal"].get(core_count)
        mesh = data["mesh"].get(core_count)
        if ideal and mesh:
            penalties.append(1.0 - mesh / ideal)
    return sum(penalties) / len(penalties) if penalties else 0.0


def figure1_report(
    workload_names: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for Figure 1.

    Runs (or cache-resolves) :func:`figure1_spec` and compares the measured
    mesh penalty at 64 cores against the paper's ~22 %.  The comparison
    only engages when 64 cores was swept **and** both figure workloads were
    measured (and then averages over exactly those two, like the sibling
    reports' mean gating); a reduced run still renders its curves but
    leaves the baseline point unmeasured rather than wrong.
    """
    # Materialise once: both arguments may be single-pass iterables.
    names = tuple(workload_names) if workload_names is not None else None
    core_counts = tuple(core_counts)
    curves = run_figure1(names, core_counts, settings, jobs=jobs, executor=executor)
    measured = {}
    notes = ""
    full_set = names is None or set(names) >= set(WORKLOADS)
    if 64 in core_counts and full_set:
        figure_curves = {name: curves[name] for name in WORKLOADS}
        measured["mesh penalty vs ideal @ 64 cores"] = 100.0 * mesh_penalty(
            figure_curves, 64
        )
    elif not full_set:
        notes = (
            "Penalty not compared: reduced workload set, the paper's figure "
            f"covers {list(WORKLOADS)}."
        )
    if core_counts != CORE_COUNTS or names is not None:
        notes = (notes + " " if notes else "") + (
            "Reduced sweep: core counts "
            f"{sorted(core_counts)}, workloads "
            f"{list(names) if names is not None else list(WORKLOADS)}."
        )
    return FigureReport(
        comparison=compare(baselines.FIG1, measured),
        measured_table=render_figure1(curves).render(),
        notes=notes,
    )


def render_figure1(curves: Dict[str, Dict[str, Dict[int, float]]]) -> ReportTable:
    """Text rendition of Figure 1."""
    core_counts = sorted(next(iter(curves.values()))["ideal"])
    table = ReportTable(
        ["Series"] + [str(c) for c in core_counts],
        title="Figure 1: per-core performance normalised to 1 core",
    )
    for name, data in curves.items():
        for label in SERIES:
            series = data[label]
            table.add_row(
                f"{name} ({label.capitalize()})",
                *[series[count] for count in core_counts],
            )
    return table
