"""Figure 9: performance under a fixed NoC area budget.

The mesh and flattened-butterfly link widths are reduced until their total
NoC area matches NOC-Out's (~2.5 mm2).  The mesh degrades only slightly
(serialisation stays small relative to header latency) while the flattened
butterfly, whose links shrink by roughly 7x, loses heavily to serialisation.
The paper reports NOC-Out ahead of the area-normalised mesh by ~19 % and
ahead of the area-normalised flattened butterfly by ~65 %.

Because each fabric carries its own link width, the spec uses a *zipped*
``fabric`` axis whose values set ``topology`` and ``link_width_bits``
together (see :mod:`repro.scenarios.spec`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.metrics import geometric_mean
from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.harness import RunSettings
from repro.experiments.fig7_performance import normalise_to_mesh
from repro.power.area_model import NocAreaModel, link_width_for_area_budget
from repro.reporting import baselines
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import SweepSpec, run_sweep

#: Paper reference (geometric mean, normalised to the area-budgeted mesh),
#: digitized in :mod:`repro.reporting.baselines`.
PAPER_REFERENCE = dict(baselines.FIG9.values)

TOPOLOGIES = (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT)


def area_budget_link_widths(
    num_cores: int = 64, area_model: Optional[NocAreaModel] = None
) -> Tuple[float, Dict[Topology, int]]:
    """NOC-Out's area budget and the link widths that fit the other NoCs in it."""
    model = area_model or NocAreaModel()
    nocout_config = presets.nocout_system(num_cores=num_cores)
    budget = model.total_area_mm2(nocout_config)
    widths = {Topology.NOC_OUT: 128}
    for topology in (Topology.MESH, Topology.FLATTENED_BUTTERFLY):
        config = presets.baseline_system(topology, num_cores=num_cores)
        widths[topology] = link_width_for_area_budget(config, budget, area_model=model)
    return budget, widths


def figure9_spec(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    link_widths: Optional[Dict[Topology, int]] = None,
) -> SweepSpec:
    """The Figure-9 sweep: workloads x area-budgeted fabrics.

    ``link_widths`` defaults to the widths that fit each fabric into
    NOC-Out's area budget (:func:`area_budget_link_widths`).
    """
    names = tuple(workload_names) if workload_names is not None else tuple(presets.WORKLOAD_NAMES)
    if link_widths is None:
        _, link_widths = area_budget_link_widths(num_cores=num_cores)
    fabrics = tuple(
        {"topology": topology.value, "link_width_bits": link_widths[topology]}
        for topology in TOPOLOGIES
    )
    return SweepSpec(
        axes={"workload": names, "fabric": fabrics},
        settings=settings or RunSettings.from_env(),
        fixed={"num_cores": num_cores},
    )


def run_figure9(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[str, object]:
    """Run the area-normalised comparison.

    Returns a dictionary with the area budget, the chosen link widths and
    per-workload performance normalised to the area-budgeted mesh.
    """
    budget, widths = area_budget_link_widths(num_cores=num_cores)
    spec = figure9_spec(workload_names, num_cores, settings, link_widths=widths)
    results = run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)
    return {
        "area_budget_mm2": budget,
        "link_widths": {topology.value: width for topology, width in widths.items()},
        "normalised_performance": normalise_to_mesh(results),
    }


def figure9_report(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for Figure 9 (area-budgeted fabrics).

    The baseline digitizes the geometric-mean bars, so the comparison only
    engages when all six paper workloads were measured (and is then
    computed over exactly those six, ignoring extra registered workloads);
    a reduced run still renders its measured table but reads as
    ``no-data``.
    """
    # Materialise once: the argument may be a single-pass iterable.
    names = tuple(workload_names) if workload_names is not None else None
    outcome = run_figure9(names, num_cores, settings, jobs=jobs, executor=executor)
    normalised = outcome["normalised_performance"]
    paper_workloads = sorted(presets.WORKLOAD_NAMES)
    full_set = names is None or set(names) >= set(paper_workloads)
    measured = (
        {
            topology: geometric_mean(
                [normalised[name][topology] for name in paper_workloads]
            )
            for topology in normalised["GMean"]
        }
        if full_set
        else {}
    )
    notes = "" if full_set else (
        "GMean not compared: reduced workload set, the paper's geometric "
        "mean covers all six workloads."
    )
    return FigureReport(
        comparison=compare(baselines.FIG9, measured),
        measured_table=render_figure9(outcome).render(),
        notes=notes,
    )


def render_figure9(outcome: Dict[str, object]) -> ReportTable:
    """Text rendition of Figure 9."""
    widths = outcome["link_widths"]
    table = ReportTable(
        ["Workload", "Mesh", "Flattened Butterfly", "NOC-Out"],
        title=(
            "Figure 9: performance under a "
            f"{outcome['area_budget_mm2']:.2f} mm2 NoC budget "
            f"(link widths: mesh={widths['mesh']}b, "
            f"fbfly={widths['flattened_butterfly']}b, noc_out={widths['noc_out']}b)"
        ),
    )
    for name, row in outcome["normalised_performance"].items():
        table.add_row(
            name,
            row[Topology.MESH.value],
            row[Topology.FLATTENED_BUTTERFLY.value],
            row[Topology.NOC_OUT.value],
        )
    return table
