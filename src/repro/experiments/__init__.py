"""Experiment harnesses: one module per table / figure in the paper.

Each module exposes a ``run_*`` function returning plain dictionaries plus
a ``render_*`` helper producing the text table the benchmarks print.  The
benchmark suite under ``benchmarks/`` is a thin wrapper around these
functions, so the full evaluation can also be driven programmatically (see
``examples/``).
"""

from repro.experiments.harness import RunSettings, run_single, run_topology_sweep
from repro.experiments import (
    ablations,
    fig1_scaling,
    fig4_snoops,
    fig7_performance,
    fig8_area,
    fig9_area_normalized,
    power_analysis,
    table1,
)

__all__ = [
    "RunSettings",
    "run_single",
    "run_topology_sweep",
    "ablations",
    "fig1_scaling",
    "fig4_snoops",
    "fig7_performance",
    "fig8_area",
    "fig9_area_normalized",
    "power_analysis",
    "table1",
]
