"""Experiment harnesses: one module per table / figure in the paper.

Each figure module declares its sweep as a
:class:`~repro.scenarios.spec.SweepSpec` (a ``*_spec`` function) and keeps
a ``run_*`` entry point that executes the spec with
:func:`~repro.scenarios.run.run_sweep` and pivots the resulting
:class:`~repro.scenarios.results.ResultSet` into the figure's table shape,
plus a ``render_*`` helper producing the text table the benchmarks print
and a ``*_report`` hook producing the paper-vs-measured
:class:`~repro.reporting.compare.FigureReport` consumed by
``python -m repro.reporting`` (see :mod:`repro.reporting`).
The benchmark suite under ``benchmarks/`` is a thin wrapper around these
functions, so the full evaluation can also be driven programmatically (see
``examples/`` and :mod:`repro.scenarios`).

All simulation sweeps execute through :mod:`repro.experiments.engine`: a
parallel, cache-aware executor that deduplicates identical points, serves
repeats from an on-disk result cache, and fans the remainder out over
worker processes (``REPRO_JOBS``).  See ``docs/experiments.md``.
"""

from repro.experiments.engine import (
    MODEL_VERSION,
    ExperimentPoint,
    ResultCache,
    SweepExecutor,
    run_experiments,
)
from repro.experiments.harness import RunSettings, point_for
from repro.experiments import (
    ablations,
    engine,
    fig1_scaling,
    fig4_snoops,
    fig7_performance,
    fig8_area,
    fig9_area_normalized,
    power_analysis,
    scale_out,
    table1,
)

__all__ = [
    "MODEL_VERSION",
    "ExperimentPoint",
    "ResultCache",
    "RunSettings",
    "SweepExecutor",
    "engine",
    "point_for",
    "run_experiments",
    "ablations",
    "fig1_scaling",
    "fig4_snoops",
    "fig7_performance",
    "fig8_area",
    "fig9_area_normalized",
    "power_analysis",
    "scale_out",
    "table1",
]
