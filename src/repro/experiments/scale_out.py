"""Scale-out sweep: mesh vs. cmesh vs. NOC-Out vs. chiplet at 64-2048 cores.

The paper evaluates 64-core chips and argues (Sections 2 and 7.1) that the
fabric's cost grows with core count — meshes accumulate router traversals,
while concentrated and tree-based organizations keep hop counts in check.
This sweep extends that argument past the paper's evaluated sizes: the
four scale-out-relevant fabrics at 64-2048 cores.  The headline pivot is
the flat mesh vs. the chiplet/NoI fabric at 1024 and 2048 cores, exactly
where a monolithic mesh's diameter (and die) falls over and a two-level
organisation becomes the realistic design point.

There is no published chart to digitize (the paper stops at 64 cores with
a 128-core discussion), so :data:`SCALE_OUT_BASELINE` encodes the *model's
expected fabric ordering at scale* as a qualitative baseline with generous
bands — a regression tripwire, not a reproduction target.  It is therefore
deliberately not part of :data:`repro.reporting.baselines.BASELINES`: the
default ``python -m repro.reporting`` run must stay resolvable from the
committed warm cache, and this sweep's points are not in it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.config import presets
from repro.experiments.harness import RunSettings
from repro.reporting.baselines import Baseline
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import ResultSet, SweepSpec, run_sweep

#: Core counts swept (the paper's 64 plus the scale-out sizes up to the
#: chiplet-era 1024/2048 points).
CORE_COUNTS = (64, 128, 256, 512, 1024, 2048)
#: The fabrics compared: the baseline mesh, the concentrated mesh plugin,
#: the paper's NOC-Out, and the chiplet/NoI plugin (registry names).
FABRICS = ("mesh", "cmesh", "noc_out", "chiplet")
#: Workloads swept by default (the Figure 1 pair: one latency-bound, one
#: batch workload).
WORKLOADS = tuple(presets.FIGURE1_WORKLOADS)

#: ``(fabric, core count)`` points whose throughput-vs-mesh ratio the
#: qualitative baseline tracks.
RATIO_POINTS = (
    ("cmesh", 512),
    ("noc_out", 512),
    ("chiplet", 1024),
    ("chiplet", 2048),
)

#: Model-expectation baseline (no paper data exists past 64 cores): at 512
#: cores NOC-Out should lead clearly and the concentrated mesh should sit
#: between NOC-Out and the mesh; the chiplet fabric pays its die-crossing
#: and bisection cost at 1024 cores (slightly behind the flat mesh) and
#: crosses over to parity-or-better by 2048 cores, where the monolithic
#: mesh's diameter dominates.  Bands are wide — this guards the
#: *ordering*, not a digitized value.
SCALE_OUT_BASELINE = Baseline(
    figure="scale_out",
    title="Scale-out: fabric comparison at 64-2048 cores",
    quantity="throughput relative to the mesh at the same core count",
    unit="x",
    values={
        "cmesh vs mesh @ 512 cores": 1.5,
        "noc_out vs mesh @ 512 cores": 2.0,
        "chiplet vs mesh @ 1024 cores": 0.85,
        "chiplet vs mesh @ 2048 cores": 1.0,
    },
    rel_tolerance=0.45,
    source="qualitative (Sections 2, 7.1; extension beyond the paper)",
    notes=(
        "The paper charts nothing past 64 cores; these are the model's own "
        "expected fabric orderings at scale, tracked so the scale-out "
        "path cannot silently regress."
    ),
)


def scale_out_spec(
    workload_names: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    fabrics: Sequence[str] = FABRICS,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    """The scale-out sweep as declarative data (workload x fabric x cores)."""
    names = tuple(workload_names) if workload_names is not None else WORKLOADS
    return SweepSpec(
        axes={
            "workload": names,
            "topology": tuple(fabrics),
            "num_cores": tuple(core_counts),
        },
        settings=settings or RunSettings.from_env(),
    )


def run_scale_out(
    workload_names: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    fabrics: Sequence[str] = FABRICS,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> ResultSet:
    """Run (or cache-resolve) the scale-out sweep and return its records."""
    spec = scale_out_spec(workload_names, core_counts, fabrics, settings)
    return run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)


def scale_out_pivot(results: ResultSet) -> Dict[str, Dict[object, Dict[object, float]]]:
    """Per-workload ``{fabric: {core count: throughput}}`` pivot tables."""
    return {
        name: results.filter(workload=name).pivot(
            "topology", "num_cores", metric="throughput_ipc"
        )
        for name in results.axis_values("workload")
    }


def render_scale_out(results: ResultSet) -> ReportTable:
    """Text rendition: one row per workload x fabric, one column per size."""
    core_counts = results.axis_values("num_cores")
    table = ReportTable(
        ["Workload / fabric"] + [f"{count} cores" for count in core_counts],
        title="Scale-out: system throughput (IPC) by fabric and core count",
    )
    for name, by_fabric in scale_out_pivot(results).items():
        for fabric, by_count in by_fabric.items():
            table.add_row(
                f"{name} ({fabric})",
                *[by_count.get(count, 0.0) for count in core_counts],
            )
    return table


def scale_out_report(
    workload_names: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = CORE_COUNTS,
    fabrics: Sequence[str] = FABRICS,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Report hook: measured pivot plus the qualitative ordering check.

    Each :data:`RATIO_POINTS` ratio is compared only when its core count,
    the mesh, and the fabric in question were all swept (averaged over the
    swept workloads); a reduced sweep still renders its pivot and leaves
    the missing ratios unmeasured.
    """
    core_counts = tuple(core_counts)
    fabrics = tuple(fabrics)
    results = run_scale_out(
        workload_names, core_counts, fabrics, settings, jobs=jobs, executor=executor
    )
    measured: Dict[str, float] = {}
    for fabric, count in RATIO_POINTS:
        if fabric not in fabrics or count not in core_counts or "mesh" not in fabrics:
            continue
        ratios = []
        for name in results.axis_values("workload"):
            mesh = results.value(
                "throughput_ipc", workload=name, topology="mesh", num_cores=count
            )
            other = results.value(
                "throughput_ipc", workload=name, topology=fabric, num_cores=count
            )
            if mesh:
                ratios.append(other / mesh)
        if ratios:
            measured[f"{fabric} vs mesh @ {count} cores"] = sum(ratios) / len(ratios)
    notes = "Extension beyond the paper: no published data past 64 cores."
    if core_counts != CORE_COUNTS or set(fabrics) != set(FABRICS):
        notes += (
            f" Reduced sweep: core counts {sorted(core_counts)}, "
            f"fabrics {list(fabrics)}."
        )
    return FigureReport(
        comparison=compare(SCALE_OUT_BASELINE, measured),
        measured_table=render_scale_out(results).render(),
        notes=notes,
    )
