"""Table 1: evaluation parameters."""

from __future__ import annotations

from typing import Dict

from repro.config import presets
from repro.reporting.tables import ReportTable


def run_table1() -> Dict[str, str]:
    """The evaluation parameters as (parameter, value) pairs."""
    return presets.table1_summary()


def render_table1(parameters: Dict[str, str]) -> ReportTable:
    """Text rendition of Table 1."""
    table = ReportTable(["Parameter", "Value"], title="Table 1: evaluation parameters")
    for key, value in parameters.items():
        table.add_row(key, value)
    return table
