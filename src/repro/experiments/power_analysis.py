"""Section 6.4: NoC power analysis.

The paper reports that the NoC consumes well under 2 W in all three
organizations (cores alone exceed 60 W), that most of the energy is spent
in the links, and that NOC-Out is the most efficient (~1.3 W) thanks to the
shorter average core-to-LLC distance, followed by the flattened butterfly
(~1.6 W) and the mesh (~1.8 W).

The sweep is the same workload x topology spec as Figure 7; the energy
model reads each record's full :class:`SimulationResults` (the
``network_activity`` switching counters), so the sweep runs with
``keep_results=True``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.fig7_performance import TOPOLOGY_NAMES, figure7_spec
from repro.experiments.harness import RunSettings
from repro.power.energy_model import NocEnergyModel, NocPowerReport
from repro.reporting import baselines
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import run_sweep

#: NoC power reported by the paper (averaged over workloads) in watts,
#: digitized in :mod:`repro.reporting.baselines`.
PAPER_REFERENCE = dict(baselines.POWER.values)

TOPOLOGIES = (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT)


def run_power_analysis(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    energy_model: Optional[NocEnergyModel] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[str, Dict[str, NocPowerReport]]:
    """NoC power per (workload, topology) from recorded switching activity."""
    names = list(workload_names) if workload_names is not None else list(presets.WORKLOAD_NAMES)
    model = energy_model or NocEnergyModel()
    spec = figure7_spec(names, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, executor=executor)
    reports: Dict[str, Dict[str, NocPowerReport]] = {}
    for name in names:
        reports[name] = {}
        for topology in TOPOLOGY_NAMES:
            record = results.filter(workload=name, topology=topology)[0]
            reports[name][topology] = model.report(
                record.result.network_activity, record.result.cycles
            )
    return reports


def average_power(reports: Dict[str, Dict[str, NocPowerReport]]) -> Dict[str, float]:
    """Average NoC power per topology across workloads (the paper's summary)."""
    averages: Dict[str, float] = {}
    for topology in TOPOLOGIES:
        values = [reports[name][topology.value].total_power_w for name in reports]
        averages[topology.value] = sum(values) / len(values) if values else 0.0
    return averages


def power_report(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for the Section 6.4 NoC power summary.

    The baseline is the per-fabric power *averaged over the six workloads*,
    so the comparison only engages on the full workload set and then
    averages over exactly those six (extra registered workloads are shown
    in the table but excluded from the compared average); reduced runs
    still render their measured table but read as ``no-data``.
    """
    # Materialise once: the argument may be a single-pass iterable.
    names = list(workload_names) if workload_names is not None else None
    reports = run_power_analysis(
        names, num_cores, settings, jobs=jobs, executor=executor
    )
    paper_workloads = list(presets.WORKLOAD_NAMES)
    full_set = names is None or set(names) >= set(paper_workloads)
    measured = (
        average_power({name: reports[name] for name in paper_workloads})
        if full_set
        else {}
    )
    notes = "" if full_set else (
        "Average not compared: reduced workload set, the paper averages "
        "over all six workloads."
    )
    return FigureReport(
        comparison=compare(baselines.POWER, measured),
        measured_table=render_power(reports).render(),
        notes=notes,
    )


def render_power(reports: Dict[str, Dict[str, NocPowerReport]]) -> ReportTable:
    """Text rendition of the Section 6.4 power summary."""
    table = ReportTable(
        ["Workload", "Mesh (W)", "Flattened Butterfly (W)", "NOC-Out (W)"],
        title="Section 6.4: NoC power",
    )
    for name, row in reports.items():
        table.add_row(
            name,
            row[Topology.MESH.value].total_power_w,
            row[Topology.FLATTENED_BUTTERFLY.value].total_power_w,
            row[Topology.NOC_OUT.value].total_power_w,
        )
    averages = average_power(reports)
    table.add_row(
        "Average",
        averages[Topology.MESH.value],
        averages[Topology.FLATTENED_BUTTERFLY.value],
        averages[Topology.NOC_OUT.value],
    )
    return table
