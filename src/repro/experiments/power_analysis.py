"""Section 6.4: NoC power analysis.

The paper reports that the NoC consumes well under 2 W in all three
organizations (cores alone exceed 60 W), that most of the energy is spent
in the links, and that NOC-Out is the most efficient (~1.3 W) thanks to the
shorter average core-to-LLC distance, followed by the flattened butterfly
(~1.6 W) and the mesh (~1.8 W).

The sweep is the same workload x topology spec as Figure 7; the energy
model reads each record's full :class:`SimulationResults` (the
``network_activity`` switching counters), so the sweep runs with
``keep_results=True``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.report import ReportTable
from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.fig7_performance import TOPOLOGY_NAMES, figure7_spec
from repro.experiments.harness import RunSettings
from repro.power.energy_model import NocEnergyModel, NocPowerReport
from repro.scenarios import run_sweep

#: NoC power reported by the paper (averaged over workloads), in watts.
PAPER_REFERENCE = {
    "mesh": 1.8,
    "flattened_butterfly": 1.6,
    "noc_out": 1.3,
}

TOPOLOGIES = (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT)


def run_power_analysis(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    energy_model: Optional[NocEnergyModel] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, NocPowerReport]]:
    """NoC power per (workload, topology) from recorded switching activity."""
    names = list(workload_names) if workload_names is not None else list(presets.WORKLOAD_NAMES)
    model = energy_model or NocEnergyModel()
    spec = figure7_spec(names, num_cores, settings)
    results = run_sweep(spec, jobs=jobs)
    reports: Dict[str, Dict[str, NocPowerReport]] = {}
    for name in names:
        reports[name] = {}
        for topology in TOPOLOGY_NAMES:
            record = results.filter(workload=name, topology=topology)[0]
            reports[name][topology] = model.report(
                record.result.network_activity, record.result.cycles
            )
    return reports


def average_power(reports: Dict[str, Dict[str, NocPowerReport]]) -> Dict[str, float]:
    """Average NoC power per topology across workloads (the paper's summary)."""
    averages: Dict[str, float] = {}
    for topology in TOPOLOGIES:
        values = [reports[name][topology.value].total_power_w for name in reports]
        averages[topology.value] = sum(values) / len(values) if values else 0.0
    return averages


def render_power(reports: Dict[str, Dict[str, NocPowerReport]]) -> ReportTable:
    """Text rendition of the Section 6.4 power summary."""
    table = ReportTable(
        ["Workload", "Mesh (W)", "Flattened Butterfly (W)", "NOC-Out (W)"],
        title="Section 6.4: NoC power",
    )
    for name, row in reports.items():
        table.add_row(
            name,
            row[Topology.MESH.value].total_power_w,
            row[Topology.FLATTENED_BUTTERFLY.value].total_power_w,
            row[Topology.NOC_OUT.value].total_power_w,
        )
    averages = average_power(reports)
    table.add_row(
        "Average",
        averages[Topology.MESH.value],
        averages[Topology.FLATTENED_BUTTERFLY.value],
        averages[Topology.NOC_OUT.value],
    )
    return table
