"""Ablation studies for NOC-Out's design choices.

Three studies back the design decisions called out in the paper:

* **LLC banking** (Section 4.3): four cores per LLC bank performs within a
  couple of percent of one core per bank, so the LLC region can stay small.
* **Tree arbitration** (Section 4.1): static priority (network over local,
  responses over requests) versus round-robin in the reduction/dispersion
  trees.
* **Scaling extensions** (Section 7.1): concentration and express links for
  configurations beyond 64 cores.

Each study is a :class:`~repro.scenarios.spec.SweepSpec` whose axes are
NoC-override coordinates (``llc_banks_per_tile``, ``tree_arbitration``,
``tree_concentration`` x ``tree_express_links``) on the NOC-Out fabric.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.report import ReportTable
from repro.experiments.harness import RunSettings
from repro.scenarios import SweepSpec, run_sweep

#: Banks-per-tile sweep: 8 tiles x {1, 2, 4, 8} banks = 8..64 LLC banks,
#: i.e. from 8 cores per bank down to 1 core per bank on a 64-core chip.
BANKING_SWEEP = (1, 2, 4, 8)

#: The four 128-core tree variants of the scaling study, as (label ->
#: (tree_concentration, tree_express_links)).  The spec sweeps the two
#: override axes' cross product; this mapping names the combinations.
SCALING_VARIANTS = {
    "tall trees": (1, False),
    "concentration x2": (2, False),
    "express links": (1, True),
    "concentration + express": (2, True),
}


def llc_banking_spec(
    workload_name: str = "Data Serving",
    banks_per_tile: Sequence[int] = BANKING_SWEEP,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    return SweepSpec(
        axes={"llc_banks_per_tile": tuple(banks_per_tile)},
        settings=settings or RunSettings.from_env(),
        fixed={"workload": workload_name, "topology": "noc_out", "num_cores": num_cores},
    )


def run_llc_banking_ablation(
    workload_name: str = "Data Serving",
    banks_per_tile: Sequence[int] = BANKING_SWEEP,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[int, float]:
    """NOC-Out throughput as a function of LLC banks per tile."""
    spec = llc_banking_spec(workload_name, banks_per_tile, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, keep_results=False)
    return {
        banks: results.value("throughput_ipc", llc_banks_per_tile=banks)
        for banks in banks_per_tile
    }


def tree_arbitration_spec(
    workload_name: str = "Data Serving",
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    return SweepSpec(
        axes={"tree_arbitration": ("static_priority", "round_robin")},
        settings=settings or RunSettings.from_env(),
        fixed={"workload": workload_name, "topology": "noc_out", "num_cores": num_cores},
    )


def run_tree_arbitration_ablation(
    workload_name: str = "Data Serving",
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """NOC-Out throughput with static-priority vs. round-robin tree arbiters."""
    spec = tree_arbitration_spec(workload_name, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, keep_results=False)
    return {
        policy: results.value("throughput_ipc", tree_arbitration=policy)
        for policy in ("static_priority", "round_robin")
    }


def scaling_spec(
    workload_name: str = "MapReduce-W",
    num_cores: int = 128,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    return SweepSpec(
        axes={
            "tree_concentration": (1, 2),
            "tree_express_links": (False, True),
        },
        settings=settings or RunSettings.from_env(),
        fixed={"workload": workload_name, "topology": "noc_out", "num_cores": num_cores},
    )


def run_scaling_ablation(
    workload_name: str = "MapReduce-W",
    num_cores: int = 128,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """128-core NOC-Out: baseline trees vs. concentration vs. express links."""
    spec = scaling_spec(workload_name, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, keep_results=False)
    return {
        label: results.value(
            "throughput_ipc",
            tree_concentration=concentration,
            tree_express_links=express,
        )
        for label, (concentration, express) in SCALING_VARIANTS.items()
    }


def render_ablation(results: Dict, title: str, key_label: str) -> ReportTable:
    """Generic two-column rendition of an ablation sweep."""
    table = ReportTable([key_label, "Throughput (IPC)", "Relative"], title=title)
    baseline = None
    for key, value in results.items():
        if baseline is None:
            baseline = value
        table.add_row(str(key), value, value / baseline if baseline else 0.0)
    return table
