"""Ablation studies for NOC-Out's design choices.

Three studies back the design decisions called out in the paper:

* **LLC banking** (Section 4.3): four cores per LLC bank performs within a
  couple of percent of one core per bank, so the LLC region can stay small.
* **Tree arbitration** (Section 4.1): static priority (network over local,
  responses over requests) versus round-robin in the reduction/dispersion
  trees.
* **Scaling extensions** (Section 7.1): concentration and express links for
  configurations beyond 64 cores.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.report import ReportTable
from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.engine import run_experiments
from repro.experiments.harness import RunSettings, point_for

#: Banks-per-tile sweep: 8 tiles x {1, 2, 4, 8} banks = 8..64 LLC banks,
#: i.e. from 8 cores per bank down to 1 core per bank on a 64-core chip.
BANKING_SWEEP = (1, 2, 4, 8)


def run_llc_banking_ablation(
    workload_name: str = "Data Serving",
    banks_per_tile: Sequence[int] = BANKING_SWEEP,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[int, float]:
    """NOC-Out throughput as a function of LLC banks per tile."""
    workload = presets.workload(workload_name)
    settings = settings or RunSettings.from_env()
    points = [
        point_for(
            Topology.NOC_OUT,
            workload,
            num_cores=num_cores,
            settings=settings,
            noc_overrides={"llc_banks_per_tile": banks},
        )
        for banks in banks_per_tile
    ]
    results = run_experiments(points, jobs=jobs)
    return {
        banks: result.throughput_ipc for banks, result in zip(banks_per_tile, results)
    }


def run_tree_arbitration_ablation(
    workload_name: str = "Data Serving",
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """NOC-Out throughput with static-priority vs. round-robin tree arbiters."""
    workload = presets.workload(workload_name)
    settings = settings or RunSettings.from_env()
    policies = ("static_priority", "round_robin")
    points = [
        point_for(
            Topology.NOC_OUT,
            workload,
            num_cores=num_cores,
            settings=settings,
            noc_overrides={"tree_arbitration": policy},
        )
        for policy in policies
    ]
    results = run_experiments(points, jobs=jobs)
    return {policy: result.throughput_ipc for policy, result in zip(policies, results)}


def run_scaling_ablation(
    workload_name: str = "MapReduce-W",
    num_cores: int = 128,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """128-core NOC-Out: baseline trees vs. concentration vs. express links."""
    workload = presets.workload(workload_name)
    settings = settings or RunSettings.from_env()
    variants = {
        "tall trees": {},
        "concentration x2": {"tree_concentration": 2},
        "express links": {"tree_express_links": True},
        "concentration + express": {"tree_concentration": 2, "tree_express_links": True},
    }
    points = [
        point_for(
            Topology.NOC_OUT,
            workload,
            num_cores=num_cores,
            settings=settings,
            noc_overrides=overrides,
        )
        for overrides in variants.values()
    ]
    results = run_experiments(points, jobs=jobs)
    return {
        label: result.throughput_ipc for label, result in zip(variants, results)
    }


def render_ablation(results: Dict, title: str, key_label: str) -> ReportTable:
    """Generic two-column rendition of an ablation sweep."""
    table = ReportTable([key_label, "Throughput (IPC)", "Relative"], title=title)
    baseline = None
    for key, value in results.items():
        if baseline is None:
            baseline = value
        table.add_row(str(key), value, value / baseline if baseline else 0.0)
    return table
