"""Ablation studies for NOC-Out's design choices.

Three studies back the design decisions called out in the paper:

* **LLC banking** (Section 4.3): four cores per LLC bank performs within a
  couple of percent of one core per bank, so the LLC region can stay small.
* **Tree arbitration** (Section 4.1): static priority (network over local,
  responses over requests) versus round-robin in the reduction/dispersion
  trees.
* **Scaling extensions** (Section 7.1): concentration and express links for
  configurations beyond 64 cores.

Each study is a :class:`~repro.scenarios.spec.SweepSpec` whose axes are
NoC-override coordinates (``llc_banks_per_tile``, ``tree_arbitration``,
``tree_concentration`` x ``tree_express_links``) on the NOC-Out fabric.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.harness import RunSettings
from repro.reporting import baselines
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import SweepSpec, run_sweep

#: Banks-per-tile sweep: 8 tiles x {1, 2, 4, 8} banks = 8..64 LLC banks,
#: i.e. from 8 cores per bank down to 1 core per bank on a 64-core chip.
BANKING_SWEEP = (1, 2, 4, 8)

#: The four 128-core tree variants of the scaling study, as (label ->
#: (tree_concentration, tree_express_links)).  The spec sweeps the two
#: override axes' cross product; this mapping names the combinations.
SCALING_VARIANTS = {
    "tall trees": (1, False),
    "concentration x2": (2, False),
    "express links": (1, True),
    "concentration + express": (2, True),
}


def llc_banking_spec(
    workload_name: str = "Data Serving",
    banks_per_tile: Sequence[int] = BANKING_SWEEP,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    return SweepSpec(
        axes={"llc_banks_per_tile": tuple(banks_per_tile)},
        settings=settings or RunSettings.from_env(),
        fixed={"workload": workload_name, "topology": "noc_out", "num_cores": num_cores},
    )


def run_llc_banking_ablation(
    workload_name: str = "Data Serving",
    banks_per_tile: Sequence[int] = BANKING_SWEEP,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[int, float]:
    """NOC-Out throughput as a function of LLC banks per tile."""
    spec = llc_banking_spec(workload_name, banks_per_tile, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)
    return {
        banks: results.value("throughput_ipc", llc_banks_per_tile=banks)
        for banks in banks_per_tile
    }


def tree_arbitration_spec(
    workload_name: str = "Data Serving",
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    return SweepSpec(
        axes={"tree_arbitration": ("static_priority", "round_robin")},
        settings=settings or RunSettings.from_env(),
        fixed={"workload": workload_name, "topology": "noc_out", "num_cores": num_cores},
    )


def run_tree_arbitration_ablation(
    workload_name: str = "Data Serving",
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[str, float]:
    """NOC-Out throughput with static-priority vs. round-robin tree arbiters."""
    spec = tree_arbitration_spec(workload_name, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)
    return {
        policy: results.value("throughput_ipc", tree_arbitration=policy)
        for policy in ("static_priority", "round_robin")
    }


def scaling_spec(
    workload_name: str = "MapReduce-W",
    num_cores: int = 128,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    return SweepSpec(
        axes={
            "tree_concentration": (1, 2),
            "tree_express_links": (False, True),
        },
        settings=settings or RunSettings.from_env(),
        fixed={"workload": workload_name, "topology": "noc_out", "num_cores": num_cores},
    )


def run_scaling_ablation(
    workload_name: str = "MapReduce-W",
    num_cores: int = 128,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[str, float]:
    """128-core NOC-Out: baseline trees vs. concentration vs. express links."""
    spec = scaling_spec(workload_name, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)
    return {
        label: results.value(
            "throughput_ipc",
            tree_concentration=concentration,
            tree_express_links=express,
        )
        for label, (concentration, express) in SCALING_VARIANTS.items()
    }


def render_ablation(results: Dict, title: str, key_label: str) -> ReportTable:
    """Generic two-column rendition of an ablation sweep."""
    table = ReportTable([key_label, "Throughput (IPC)", "Relative"], title=title)
    baseline = None
    for key, value in results.items():
        if baseline is None:
            baseline = value
        table.add_row(str(key), value, value / baseline if baseline else 0.0)
    return table


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    return numerator / denominator if denominator else None


def llc_banking_report(
    workload_name: str = "Data Serving",
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for the LLC-banking ablation (Section 4.3).

    The paper's claim is a ratio: four cores per LLC bank (two banks per
    tile on the 64-core chip) within a couple of percent of one core per
    bank (eight banks per tile).
    """
    throughput = run_llc_banking_ablation(
        workload_name, settings=settings, jobs=jobs, executor=executor
    )
    measured = {}
    ratio = _ratio(throughput.get(2, 0.0), throughput.get(8, 0.0))
    if ratio is not None:
        measured["4 cores/bank vs 1 core/bank"] = ratio
    return FigureReport(
        comparison=compare(baselines.ABLATION_BANKING, measured),
        measured_table=render_ablation(
            throughput, "Ablation: LLC banks per tile", "banks/tile"
        ).render(),
        notes=f"Measured on {workload_name}.",
    )


def tree_arbitration_report(
    workload_name: str = "Data Serving",
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for the tree-arbitration ablation (Section 4.1)."""
    throughput = run_tree_arbitration_ablation(
        workload_name, settings=settings, jobs=jobs, executor=executor
    )
    measured = {}
    ratio = _ratio(
        throughput.get("round_robin", 0.0), throughput.get("static_priority", 0.0)
    )
    if ratio is not None:
        measured["round_robin vs static_priority"] = ratio
    return FigureReport(
        comparison=compare(baselines.ABLATION_ARBITRATION, measured),
        measured_table=render_ablation(
            throughput, "Ablation: tree arbitration policy", "policy"
        ).render(),
        notes=f"Measured on {workload_name}.",
    )


def scaling_report(
    workload_name: str = "MapReduce-W",
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for the 128-core scaling ablation (Section 7.1)."""
    throughput = run_scaling_ablation(
        workload_name, settings=settings, jobs=jobs, executor=executor
    )
    tall = throughput.get("tall trees", 0.0)
    measured = {}
    for label in ("concentration x2", "express links", "concentration + express"):
        ratio = _ratio(throughput.get(label, 0.0), tall)
        if ratio is not None:
            measured[f"{label} vs tall trees"] = ratio
    return FigureReport(
        comparison=compare(baselines.ABLATION_SCALING, measured),
        measured_table=render_ablation(
            throughput, "Ablation: 128-core tree scaling", "variant"
        ).render(),
        notes=f"Measured on {workload_name} at 128 cores.",
    )
