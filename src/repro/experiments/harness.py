"""Shared machinery for running the paper's experiments.

:class:`RunSettings` (the warm-up and measurement windows, scalable via
``REPRO_EXPERIMENT_SCALE``) plus the config/point builders the scenario
layer expands through.  Sweeps themselves are declared as
:class:`~repro.scenarios.spec.SweepSpec`\\ s and run with
:func:`~repro.scenarios.run.run_sweep`; the pre-scenario entry points
(``run_topology_sweep`` / ``run_single``) were removed after their one
deprecation release.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from repro.config.noc import Topology
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig

#: Environment variable scaling the simulated window length of every
#: experiment (1.0 = default; smaller values make the benchmarks faster but
#: noisier, larger values make them slower but smoother).
SCALE_ENV_VAR = "REPRO_EXPERIMENT_SCALE"

#: Floors applied when scaling a window down: below these the simulation
#: would not even reach steady state, so scaled settings clamp here.  The
#: warmup floor is comparatively high because a near-cold cache hierarchy
#: can stall a core for the entire (also scaled-down) measurement window,
#: reading as zero IPC.
MIN_WARMUP_REFERENCES = 1000
MIN_DETAILED_WARMUP_CYCLES = 200
MIN_MEASURE_CYCLES = 500


@dataclass(frozen=True)
class RunSettings:
    """Length of the warm-up and measurement windows for one run."""

    warmup_references: int = 2500
    detailed_warmup_cycles: int = 1500
    measure_cycles: int = 6000
    seed: int = 42

    @classmethod
    def from_env(cls, base: Optional["RunSettings"] = None) -> "RunSettings":
        """Apply the ``REPRO_EXPERIMENT_SCALE`` multiplier to a base setting."""
        settings = base or cls()
        scale = float(os.environ.get(SCALE_ENV_VAR, "1.0"))
        if scale <= 0:
            raise ValueError(f"{SCALE_ENV_VAR} must be positive")
        return settings.scaled(scale)

    def scaled(self, factor: float) -> "RunSettings":
        """Scale all three windows by ``factor``, floor-clamping each.

        ``factor == 1.0`` is an exact no-op, so explicitly-tiny settings
        (e.g. in tests) pass through ``from_env`` unclamped at the default
        scale.
        """
        if factor == 1.0:
            return self
        return replace(
            self,
            warmup_references=max(
                MIN_WARMUP_REFERENCES, int(self.warmup_references * factor)
            ),
            detailed_warmup_cycles=max(
                MIN_DETAILED_WARMUP_CYCLES, int(self.detailed_warmup_cycles * factor)
            ),
            measure_cycles=max(MIN_MEASURE_CYCLES, int(self.measure_cycles * factor)),
        )


def system_for(
    topology: Topology,
    workload: WorkloadConfig,
    num_cores: int = 64,
    link_width_bits: int = 128,
    seed: int = 42,
    noc_overrides: Optional[dict] = None,
) -> SystemConfig:
    """Build the :class:`SystemConfig` for one experimental point.

    The system is built through the topology registry
    (:mod:`repro.scenarios.registry`), so fabrics registered with
    ``@register_topology`` work here as soon as they exist.
    """
    from repro.config.noc import topology_key
    from repro.scenarios.registry import build_system

    config = build_system(
        topology_key(topology),
        num_cores=num_cores,
        link_width_bits=link_width_bits,
        seed=seed,
    )
    if noc_overrides:
        noc = config.noc
        for key, value in noc_overrides.items():
            if not hasattr(noc, key):
                raise AttributeError(f"NocConfig has no field {key!r}")
        import dataclasses

        noc = dataclasses.replace(noc, **noc_overrides)
        config = config.with_noc(noc)
    return config.with_workload(workload)


def point_for(
    topology: Topology,
    workload: WorkloadConfig,
    num_cores: int = 64,
    link_width_bits: int = 128,
    settings: Optional[RunSettings] = None,
    noc_overrides: Optional[dict] = None,
) -> "ExperimentPoint":
    """Describe one experimental point for the engine (without running it)."""
    from repro.experiments.engine import ExperimentPoint

    settings = settings or RunSettings.from_env()
    config = system_for(
        topology,
        workload,
        num_cores=num_cores,
        link_width_bits=link_width_bits,
        seed=settings.seed,
        noc_overrides=noc_overrides,
    )
    return ExperimentPoint(config=config, settings=settings)
