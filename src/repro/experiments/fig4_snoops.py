"""Figure 4: percentage of LLC accesses that trigger a snoop message.

The paper measures an average of roughly two snoop-triggering accesses per
100 LLC accesses across the six scale-out workloads, which is the empirical
basis for NOC-Out's decision to drop direct core-to-core connectivity.

Declared as a one-axis :class:`~repro.scenarios.spec.SweepSpec` (workloads
on the mesh baseline) and pivoted into the ``{workload: percent}`` shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.config import presets
from repro.experiments.harness import RunSettings
from repro.reporting import baselines
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import SweepSpec, run_sweep

#: Approximate per-workload values read off Figure 4 (percent), digitized
#: in :mod:`repro.reporting.baselines`.
PAPER_REFERENCE = dict(baselines.FIG4.values)


def figure4_spec(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    """The Figure-4 sweep: every workload on the mesh baseline."""
    names = tuple(workload_names) if workload_names is not None else tuple(presets.WORKLOAD_NAMES)
    return SweepSpec(
        axes={"workload": names},
        settings=settings or RunSettings.from_env(),
        fixed={"topology": "mesh", "num_cores": num_cores},
    )


def run_figure4(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[str, float]:
    """Snoop-triggering LLC access percentage per workload (plus the mean)."""
    spec = figure4_spec(workload_names, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)
    names = results.axis_values("workload")
    rates: Dict[str, float] = {
        name: 100.0 * results.value("snoop_rate", workload=name) for name in names
    }
    rates["Mean"] = sum(rates[n] for n in names) / len(names)
    return rates


def figure4_report(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for Figure 4 (snoop rates per workload).

    The ``Mean`` baseline point is compared only when every baseline
    workload was measured, and is then computed over exactly the paper's
    six — a restricted or extended workload set would not be the paper's
    mean.
    """
    rates = run_figure4(workload_names, num_cores, settings, jobs=jobs, executor=executor)
    names = [name for name in rates if name != "Mean"]
    baseline_workloads = [k for k in baselines.FIG4.keys() if k != "Mean"]
    measured = {name: rates[name] for name in names if name in baselines.FIG4.values}
    notes = ""
    if set(baseline_workloads) <= set(names):
        measured["Mean"] = sum(rates[n] for n in baseline_workloads) / len(
            baseline_workloads
        )
    else:
        notes = (
            f"Mean not compared: only {sorted(names)} measured, the paper's "
            "mean covers all six workloads."
        )
    return FigureReport(
        comparison=compare(baselines.FIG4, measured),
        measured_table=render_figure4(rates).render(),
        notes=notes,
    )


def render_figure4(rates: Dict[str, float]) -> ReportTable:
    """Text rendition of Figure 4."""
    table = ReportTable(
        ["Workload", "% LLC accesses triggering a snoop", "Paper (approx.)"],
        title="Figure 4: snoop-triggering LLC accesses",
    )
    for name, value in rates.items():
        table.add_row(name, value, PAPER_REFERENCE.get(name, float("nan")))
    return table
