"""Figure 4: percentage of LLC accesses that trigger a snoop message.

The paper measures an average of roughly two snoop-triggering accesses per
100 LLC accesses across the six scale-out workloads, which is the empirical
basis for NOC-Out's decision to drop direct core-to-core connectivity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.report import ReportTable
from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.engine import run_experiments
from repro.experiments.harness import RunSettings, point_for

#: Approximate per-workload values read off Figure 4 (percent).
PAPER_REFERENCE = {
    "Data Serving": 0.6,
    "MapReduce-C": 1.8,
    "MapReduce-W": 1.5,
    "SAT Solver": 2.6,
    "Web Frontend": 4.2,
    "Web Search": 1.6,
    "Mean": 2.0,
}


def run_figure4(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Snoop-triggering LLC access percentage per workload (plus the mean)."""
    names = list(workload_names) if workload_names is not None else list(presets.WORKLOAD_NAMES)
    settings = settings or RunSettings.from_env()
    points = [
        point_for(Topology.MESH, presets.workload(name), num_cores=num_cores, settings=settings)
        for name in names
    ]
    results = run_experiments(points, jobs=jobs)
    rates: Dict[str, float] = {
        name: 100.0 * result.snoop_rate for name, result in zip(names, results)
    }
    rates["Mean"] = sum(rates[n] for n in names) / len(names)
    return rates


def render_figure4(rates: Dict[str, float]) -> ReportTable:
    """Text rendition of Figure 4."""
    table = ReportTable(
        ["Workload", "% LLC accesses triggering a snoop", "Paper (approx.)"],
        title="Figure 4: snoop-triggering LLC accesses",
    )
    for name, value in rates.items():
        table.add_row(name, value, PAPER_REFERENCE.get(name, float("nan")))
    return table
