"""Figure 4: percentage of LLC accesses that trigger a snoop message.

The paper measures an average of roughly two snoop-triggering accesses per
100 LLC accesses across the six scale-out workloads, which is the empirical
basis for NOC-Out's decision to drop direct core-to-core connectivity.

Declared as a one-axis :class:`~repro.scenarios.spec.SweepSpec` (workloads
on the mesh baseline) and pivoted into the ``{workload: percent}`` shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.report import ReportTable
from repro.config import presets
from repro.experiments.harness import RunSettings
from repro.scenarios import SweepSpec, run_sweep

#: Approximate per-workload values read off Figure 4 (percent).
PAPER_REFERENCE = {
    "Data Serving": 0.6,
    "MapReduce-C": 1.8,
    "MapReduce-W": 1.5,
    "SAT Solver": 2.6,
    "Web Frontend": 4.2,
    "Web Search": 1.6,
    "Mean": 2.0,
}


def figure4_spec(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    """The Figure-4 sweep: every workload on the mesh baseline."""
    names = tuple(workload_names) if workload_names is not None else tuple(presets.WORKLOAD_NAMES)
    return SweepSpec(
        axes={"workload": names},
        settings=settings or RunSettings.from_env(),
        fixed={"topology": "mesh", "num_cores": num_cores},
    )


def run_figure4(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Snoop-triggering LLC access percentage per workload (plus the mean)."""
    spec = figure4_spec(workload_names, num_cores, settings)
    results = run_sweep(spec, jobs=jobs, keep_results=False)
    names = results.axis_values("workload")
    rates: Dict[str, float] = {
        name: 100.0 * results.value("snoop_rate", workload=name) for name in names
    }
    rates["Mean"] = sum(rates[n] for n in names) / len(names)
    return rates


def render_figure4(rates: Dict[str, float]) -> ReportTable:
    """Text rendition of Figure 4."""
    table = ReportTable(
        ["Workload", "% LLC accesses triggering a snoop", "Paper (approx.)"],
        title="Figure 4: snoop-triggering LLC accesses",
    )
    for name, value in rates.items():
        table.add_row(name, value, PAPER_REFERENCE.get(name, float("nan")))
    return table
