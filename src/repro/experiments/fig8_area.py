"""Figure 8: NoC area breakdown (links, buffers, crossbars).

The paper reports ~3.5 mm2 for the mesh, ~23 mm2 for the flattened
butterfly (~7x the mesh) and ~2.5 mm2 for NOC-Out (28 % below the mesh and
over 9x below the flattened butterfly).

Unlike the other figures this one is purely analytic — the area model reads
static topology descriptors, no simulation runs — so there is no
:class:`~repro.scenarios.spec.SweepSpec` to declare and nothing to cache;
the configs are built straight from the topology registry.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config.noc import Topology
from repro.power.area_model import AreaBreakdown, NocAreaModel
from repro.reporting import baselines
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import build_system

#: Total NoC areas reported by the paper (mm2), digitized in
#: :mod:`repro.reporting.baselines`.
PAPER_REFERENCE = dict(baselines.FIG8.values)

TOPOLOGIES = (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT)


def run_figure8(
    num_cores: int = 64,
    link_width_bits: int = 128,
    area_model: Optional[NocAreaModel] = None,
) -> Dict[str, AreaBreakdown]:
    """Area breakdown for the three evaluated NoC organizations."""
    model = area_model or NocAreaModel()
    breakdowns: Dict[str, AreaBreakdown] = {}
    for topology in TOPOLOGIES:
        config = build_system(
            topology.value, num_cores=num_cores, link_width_bits=link_width_bits
        )
        breakdowns[topology.value] = model.breakdown(config)
    return breakdowns


def figure8_report(
    num_cores: int = 64,
    link_width_bits: int = 128,
    area_model: Optional[NocAreaModel] = None,
) -> FigureReport:
    """Paper-vs-measured report for Figure 8 (total NoC area per fabric).

    Purely analytic — the area model reads static topology descriptors, so
    this report never simulates and needs no cache.
    """
    breakdowns = run_figure8(num_cores, link_width_bits, area_model)
    measured = {name: breakdown.total_mm2 for name, breakdown in breakdowns.items()}
    return FigureReport(
        comparison=compare(baselines.FIG8, measured),
        measured_table=render_figure8(breakdowns).render(),
    )


def render_figure8(breakdowns: Dict[str, AreaBreakdown]) -> ReportTable:
    """Text rendition of Figure 8."""
    table = ReportTable(
        ["Organization", "Links (mm2)", "Buffers (mm2)", "Crossbars (mm2)", "Total (mm2)", "Paper total"],
        title="Figure 8: NoC area breakdown",
    )
    for name, breakdown in breakdowns.items():
        table.add_row(
            name,
            breakdown.links_mm2,
            breakdown.buffers_mm2,
            breakdown.crossbars_mm2,
            breakdown.total_mm2,
            PAPER_REFERENCE.get(name, float("nan")),
        )
    return table
