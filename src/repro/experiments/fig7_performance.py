"""Figure 7: system performance normalised to the mesh baseline.

The paper reports that the flattened butterfly outperforms the mesh by
7-31 % (geometric mean 17 %), and that NOC-Out matches the flattened
butterfly on average: slightly behind on Data Serving (bank contention),
slightly ahead on Web Search (shorter core-to-LLC distance).

Declared as a workload x topology :class:`~repro.scenarios.spec.SweepSpec`
and pivoted into the mesh-normalised ``{workload: {topology: value}}``
shape (plus the geometric-mean row).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.metrics import geometric_mean
from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.harness import RunSettings
from repro.reporting import baselines
from repro.reporting.baselines import KEY_SEPARATOR
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import ResultSet, SweepSpec, run_sweep

#: Approximate values read off Figure 7 (normalised to mesh = 1.0),
#: digitized in :mod:`repro.reporting.baselines`.
PAPER_REFERENCE = baselines.FIG7.nested()

TOPOLOGIES = (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT)
#: Topology preset names, in the figure's column order.
TOPOLOGY_NAMES = tuple(topology.value for topology in TOPOLOGIES)


def figure7_spec(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    """The Figure-7 sweep: every workload on the three evaluated fabrics."""
    names = tuple(workload_names) if workload_names is not None else tuple(presets.WORKLOAD_NAMES)
    return SweepSpec(
        axes={"workload": names, "topology": TOPOLOGY_NAMES},
        settings=settings or RunSettings.from_env(),
        fixed={"num_cores": num_cores},
    )


def normalise_to_mesh(results: ResultSet) -> Dict[str, Dict[str, float]]:
    """Mesh-normalised throughput pivot, with a geometric-mean summary row."""
    names = results.axis_values("workload")
    topologies = results.axis_values("topology")
    normalised: Dict[str, Dict[str, float]] = {}
    for name in names:
        mesh = results.value("throughput_ipc", workload=name, topology="mesh")
        normalised[name] = {
            topology: (
                results.value("throughput_ipc", workload=name, topology=topology) / mesh
                if mesh
                else 0.0
            )
            for topology in topologies
        }
    normalised["GMean"] = {
        topology: geometric_mean([normalised[name][topology] for name in names])
        for topology in topologies
    }
    return normalised


def run_figure7(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict[str, Dict[str, float]]:
    """Run the Figure-7 sweep; returns normalised performance per workload."""
    spec = figure7_spec(workload_names, num_cores, settings)
    return normalise_to_mesh(
        run_sweep(spec, jobs=jobs, executor=executor, keep_results=False)
    )


def figure7_report(
    workload_names: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Paper-vs-measured report for Figure 7 (throughput vs. the mesh).

    Each measured ``workload / fabric`` cell is compared against its
    digitized bar.  The ``GMean`` rows are only compared when all six
    baseline workloads were measured, and are then recomputed over exactly
    those six — a run with extra registered workloads would otherwise score
    a different mean against the paper's.
    """
    normalised = run_figure7(
        workload_names, num_cores, settings, jobs=jobs, executor=executor
    )
    baseline_workloads = {
        key.split(KEY_SEPARATOR)[0] for key in baselines.FIG7.keys()
    } - {"GMean"}
    measured_workloads = set(normalised) - {"GMean"}
    measured: Dict[str, float] = {}
    for name, row in normalised.items():
        if name == "GMean":
            continue
        for topology, value in row.items():
            measured[f"{name}{KEY_SEPARATOR}{topology}"] = value
    notes = ""
    if baseline_workloads <= measured_workloads:
        for topology in normalised["GMean"]:
            measured[f"GMean{KEY_SEPARATOR}{topology}"] = geometric_mean(
                [normalised[name][topology] for name in sorted(baseline_workloads)]
            )
    else:
        notes = (
            f"GMean not compared: only {sorted(measured_workloads)} measured, "
            "the paper's geometric mean covers all six workloads."
        )
    return FigureReport(
        comparison=compare(baselines.FIG7, measured),
        measured_table=render_figure7(normalised).render(),
        notes=notes,
    )


def render_figure7(normalised: Dict[str, Dict[str, float]]) -> ReportTable:
    """Text rendition of Figure 7."""
    table = ReportTable(
        ["Workload", "Mesh", "Flattened Butterfly", "NOC-Out"],
        title="Figure 7: system performance normalised to mesh",
    )
    for name, row in normalised.items():
        table.add_row(
            name,
            row.get(Topology.MESH.value, 1.0),
            row.get(Topology.FLATTENED_BUTTERFLY.value, 0.0),
            row.get(Topology.NOC_OUT.value, 0.0),
        )
    return table
