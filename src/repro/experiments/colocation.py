"""Co-location sweep: placement x arrival process x load, per-tenant tails.

The scenarios the paper never measured (its sweeps are homogeneous): two
scale-out workloads sharing one 64-core mesh under a
:class:`~repro.tenancy.WorkloadMap`, with each tenant injecting open-loop
probe traffic shaped by an arrival process.  The figures of merit are
*per-tenant* delivery-latency tails (p50/p95/p99) and the interference
ratio — how much a tenant's p99 inflates when a neighbour moves onto the
chip, relative to running the same offered load homogeneously.

Like :mod:`repro.experiments.scale_out`, the baseline here is a
qualitative model-expectation tripwire (there is no paper chart to
digitize), and the report is deliberately *not* registered in
:data:`repro.reporting.figures.REPORTERS`: the default report must stay
resolvable from the committed warm cache, and this sweep's points are not
in it.  Fill/serve it explicitly via ``python -m repro.store.farm
--figure colocation`` and ``python -m repro.store.query``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.experiments.harness import RunSettings
from repro.reporting.baselines import Baseline
from repro.reporting.compare import FigureReport, compare
from repro.reporting.tables import ReportTable
from repro.scenarios import ResultSet, SweepSpec, run_sweep

#: The three built-in placements, homogeneous first (the baseline the
#: interference ratios normalise to).
PLACEMENTS = ("homogeneous", "split_half", "checkerboard")
#: Arrival processes swept (same mean load, different temporal shape).
ARRIVALS = ("poisson", "bursty", "diurnal")
#: Per-core probe injection rates.  The top value pushes the 64-core mesh
#: toward saturation, where placement differences show up in the tails.
LOADS = (0.02, 0.06, 0.12)
#: The co-located pair: a latency-sensitive victim (Data Serving is the
#: paper's most latency-bound workload) beside a batch antagonist.
TENANTS = ("Data Serving", "MapReduce-C")
#: Chip swept: the paper's 64-core mesh baseline.
NUM_CORES = 64

#: Model-expectation baseline, calibrated at full scale: the victim
#: (Data Serving) is the *heavier* workload, so at the mid load a chip
#: shared with the lighter MapReduce-C antagonist relieves its p99 versus
#: a homogeneous chip of pure victim (ratio < 1), and checkerboard
#: interleaving — which shares every mesh link with the antagonist —
#: relieves less than split_half.  Bands are wide: this guards the
#: *direction*, not a digitized value, and only at the default
#: full-scale windows (reduced ``REPRO_EXPERIMENT_SCALE`` runs report the
#: comparison informationally).
COLOCATION_BASELINE = Baseline(
    figure="colocation",
    title="Co-location: victim p99 shift under placement",
    quantity=f"victim p99 latency relative to homogeneous (bursty @ {LOADS[1]:g})",
    unit="x",
    values={
        f"split_half p99 ratio (bursty @ {LOADS[1]:g})": 0.5,
        f"checkerboard p99 ratio (bursty @ {LOADS[1]:g})": 0.65,
    },
    rel_tolerance=0.45,
    source="qualitative (extension beyond the paper; no published data)",
    notes=(
        "The paper measures only homogeneous chips; these are the model's "
        "own expected interference directions, tracked so the tenancy "
        "path cannot silently regress.  At the top load the mesh "
        "saturates and all placements converge near parity."
    ),
)


def colocation_spec(
    placements: Sequence[str] = PLACEMENTS,
    arrivals: Sequence[str] = ARRIVALS,
    loads: Sequence[float] = LOADS,
    tenants: Iterable[str] = TENANTS,
    num_cores: int = NUM_CORES,
    matrix: str = "uniform",
    settings: Optional[RunSettings] = None,
) -> SweepSpec:
    """The co-location sweep as declarative data.

    Scalar coordinates only (``placement``/``arrival``/``load`` axes,
    ``tenants``/``matrix`` fixed): each point builds its
    :class:`~repro.tenancy.WorkloadMap` in
    :func:`~repro.scenarios.spec.point_for_coords`, so results pivot by
    plain scalars and the spec JSON stays trivially shippable.
    """
    return SweepSpec(
        axes={
            "placement": tuple(placements),
            "arrival": tuple(arrivals),
            "load": tuple(loads),
        },
        fixed={
            "tenants": tuple(tenants),
            "matrix": matrix,
            "topology": "mesh",
            "num_cores": num_cores,
        },
        settings=settings or RunSettings.from_env(),
    )


def run_colocation(
    placements: Sequence[str] = PLACEMENTS,
    arrivals: Sequence[str] = ARRIVALS,
    loads: Sequence[float] = LOADS,
    tenants: Iterable[str] = TENANTS,
    num_cores: int = NUM_CORES,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> ResultSet:
    """Run (or cache-resolve) the co-location sweep and return its records.

    ``keep_results=True`` on purpose: the per-tenant latency summaries
    live on the full :class:`SimulationResults`, not the scalar metrics.
    """
    spec = colocation_spec(placements, arrivals, loads, tenants, num_cores, settings=settings)
    return run_sweep(spec, jobs=jobs, executor=executor, keep_results=True)


def _tenant_tails(record) -> Dict[str, float]:
    """Tenant label -> p99 for one record (tenants without samples skipped)."""
    result = record.full_result()
    if result is None:
        raise ValueError(
            "per-tenant tails need full results; run the sweep with "
            "keep_results=True or serve it from a store"
        )
    return {
        label: summary["p99"]
        for label, summary in result.per_tenant_latency.items()
        if "p99" in summary
    }


def _point_label(arrival: object, load: object) -> str:
    return f"{arrival}@{load:g}"


def colocation_pivot(
    results: ResultSet,
) -> Dict[object, Dict[str, Dict[str, float]]]:
    """Per-placement, per-tenant p99 tables: ``{placement: {tenant: {"bursty@0.12": p99}}}``."""
    table: Dict[object, Dict[str, Dict[str, float]]] = {}
    for record in results:
        placement = record.coords.get("placement")
        point = _point_label(record.coords.get("arrival"), record.coords.get("load"))
        for tenant, p99 in _tenant_tails(record).items():
            table.setdefault(placement, {}).setdefault(tenant, {})[point] = p99
    return table


def interference_pivot(results: ResultSet) -> Dict[object, Dict[str, float]]:
    """Victim p99 inflation per placement: ``{placement: {"bursty@0.12": ratio}}``.

    The victim is the first swept tenant (present under every placement,
    including homogeneous); each cell divides its p99 under the placement
    by its p99 under ``homogeneous`` at the same arrival process and load.
    Points without a homogeneous reference (or a zero one) are omitted.
    """
    pivot = colocation_pivot(results)
    victims = {
        tenant
        for by_tenant in pivot.values()
        for tenant in by_tenant
    }
    baseline_tenants = pivot.get("homogeneous", {})
    if not baseline_tenants:
        return {}
    victim = next(iter(baseline_tenants))
    if victim not in victims:
        return {}
    baseline = baseline_tenants[victim]
    table: Dict[object, Dict[str, float]] = {}
    for placement, by_tenant in pivot.items():
        if placement == "homogeneous":
            continue
        for point, p99 in by_tenant.get(victim, {}).items():
            reference = baseline.get(point)
            if reference:
                table.setdefault(placement, {})[point] = p99 / reference
    return table


def render_colocation(results: ResultSet) -> ReportTable:
    """Text rendition: one row per placement x tenant, one column per point."""
    points = [
        _point_label(arrival, load)
        for arrival in results.axis_values("arrival")
        for load in results.axis_values("load")
    ]
    table = ReportTable(
        ["Placement / tenant"] + points,
        title="Co-location: per-tenant p99 network latency (cycles)",
    )
    for placement, by_tenant in colocation_pivot(results).items():
        for tenant, by_point in by_tenant.items():
            table.add_row(
                f"{placement} ({tenant})",
                *[by_point.get(point, 0.0) for point in points],
            )
    return table


def colocation_report(
    placements: Sequence[str] = PLACEMENTS,
    arrivals: Sequence[str] = ARRIVALS,
    loads: Sequence[float] = LOADS,
    tenants: Iterable[str] = TENANTS,
    num_cores: int = NUM_CORES,
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> FigureReport:
    """Report hook: per-tenant tails plus the qualitative interference check.

    The placement ratios are compared only when the sweep covers
    ``homogeneous``, bursty arrivals and the default mid load; a reduced
    sweep still renders its pivot and leaves the ratios unmeasured.
    """
    results = run_colocation(
        placements, arrivals, loads, tenants, num_cores,
        settings=settings, jobs=jobs, executor=executor,
    )
    mid_point = _point_label("bursty", LOADS[1])
    measured: Dict[str, float] = {}
    for placement, by_point in interference_pivot(results).items():
        if mid_point in by_point:
            key = f"{placement} p99 ratio (bursty @ {LOADS[1]:g})"
            measured[key] = by_point[mid_point]
    notes = "Extension beyond the paper: homogeneous chips only in the original."
    if tuple(placements) != PLACEMENTS or tuple(arrivals) != ARRIVALS or tuple(loads) != LOADS:
        notes += (
            f" Reduced sweep: placements {list(placements)}, arrivals "
            f"{list(arrivals)}, loads {list(loads)}."
        )
    return FigureReport(
        comparison=compare(COLOCATION_BASELINE, measured),
        measured_table=render_colocation(results).render(),
        notes=notes,
    )
