"""Parallel, cache-aware experiment engine.

The paper's headline results (Figures 1, 4, 7-9) are cross products of
workloads x topologies x core counts.  Every such point is an isolated,
deterministic discrete-event simulation, so the sweep is embarrassingly
parallel.  This module turns a sweep into explicit data:

* :class:`ExperimentPoint` — one (configuration, run settings) pair with a
  stable content hash that identifies the simulation it describes;
* :class:`ResultCache` — an on-disk JSON cache keyed by that hash, so
  re-running a figure script after touching only plotting code is free;
* :class:`SweepExecutor` — fans points out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (worker count from the
  ``REPRO_JOBS`` environment variable, default ``os.cpu_count()``), with a
  serial fallback for ``REPRO_JOBS=1`` that is bit-identical to the
  pre-engine behaviour.

Environment variables
---------------------
(The canonical ``REPRO_*`` reference table lives in
``docs/experiments.md``; this list covers the engine's own knobs.)

``REPRO_JOBS``
    Worker processes for a sweep.  ``1`` forces the serial path.
``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/repro``).
``REPRO_CACHE``
    Set to ``0``/``off``/``false``/``no`` to disable the result cache.
``REPRO_CACHE_MAX_MB``
    Size cap for the cache directory in megabytes (default: unlimited).
    When a store pushes the directory past the cap, least-recently-used
    result files are evicted; loading an entry refreshes its recency.
``REPRO_STORE``
    Result-store backend: ``json`` (default; one file per point) or
    ``columnar`` (append-only segment store, :mod:`repro.store`).  Both
    backends share cache keys and values, so switching never invalidates
    a result.
``REPRO_EXPERIMENT_SCALE``
    Consumed by :meth:`RunSettings.from_env` (see
    :mod:`repro.experiments.harness`); scaled settings hash differently, so
    cached results at different scales never collide.
``REPRO_PROFILE``
    Set to ``1`` to run every simulated point under :mod:`cProfile`.  Each
    point writes ``<hash>.pstats`` (raw, for ``snakeviz``/``pstats``) and
    ``<hash>.profile.txt`` (top-20 functions by cumulative time) into the
    cache directory, next to the point's cache entry — cache *hits* are
    never profiled, so delete the entry (or disable the cache) to profile
    an already-cached point.  See "Profiling a sweep" in
    ``docs/performance.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.chip.chip import Chip, SimulationResults
from repro.config.system import SystemConfig

#: Worker-count environment variable (default: ``os.cpu_count()``).
JOBS_ENV_VAR = "REPRO_JOBS"
#: Cache-directory environment variable (default: ``~/.cache/repro``).
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
#: Cache kill-switch environment variable.
CACHE_ENV_VAR = "REPRO_CACHE"
#: Cache size-cap environment variable (megabytes; unset = unlimited).
CACHE_MAX_MB_ENV_VAR = "REPRO_CACHE_MAX_MB"
#: Result-store backend environment variable (``json`` or ``columnar``).
STORE_ENV_VAR = "REPRO_STORE"
#: Per-point cProfile switch; profiles land next to the cache entries.
PROFILE_ENV_VAR = "REPRO_PROFILE"
#: How many rows of the cumulative-time table ``*.profile.txt`` keeps.
PROFILE_TOP_N = 20

#: Bump whenever the hash payload or the cache file layout changes; old
#: entries then read as misses instead of deserialisation errors.
CACHE_SCHEMA_VERSION = 2

#: Version of the *simulator model itself*, hashed into every cache key.
#:
#: The key derived from :meth:`ExperimentPoint.canonical_dict` covers the
#: full configuration and run settings but cannot see simulator source
#: changes, so without this constant a behavioural change to the kernel,
#: routers, caches or cores would silently serve stale results out of
#: ``REPRO_CACHE_DIR``.  Policy: **bump MODEL_VERSION in the same commit as
#: any change that alters simulation outputs** (timing, protocol, workload
#: generation, RNG draws...); purely cosmetic refactors keep it.  Bumping
#: invalidates every cached result, which is exactly the point.
#:
#: History:
#:   1 — seed model (poll-driven routers, stale-wake double ticks).
#:   2 — event-driven router/NI wake-ups; Component.wake stale-tick fix.
MODEL_VERSION = 2


# --------------------------------------------------------------------- #
# Canonical serialisation
# --------------------------------------------------------------------- #
def _canonical(value):
    """Reduce configs to JSON-stable primitives (enums by value, no tuples).

    Dataclass fields whose metadata carries ``canonical_omit_none`` are
    skipped while they hold ``None``: fields added after results were
    already cached (e.g. ``SystemConfig.workload_map``) use the flag so
    their default keeps every pre-existing cache key byte-identical,
    while any non-None value still hashes in.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if not (
                field.metadata.get("canonical_omit_none")
                and getattr(value, field.name) is None
            )
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


@dataclass(frozen=True)
class ExperimentPoint:
    """One point of a sweep: a complete chip config plus its run windows."""

    config: SystemConfig
    settings: "RunSettings"  # noqa: F821 — imported lazily to avoid a cycle

    def __post_init__(self) -> None:
        if self.config.workload is None:
            raise ValueError("ExperimentPoint requires a config with a workload")

    def canonical_dict(self) -> Dict[str, object]:
        """JSON-stable description of the point (what the hash covers)."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "model": MODEL_VERSION,
            "config": _canonical(self.config),
            "settings": _canonical(self.settings),
        }

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical description.

        Unlike ``hash()``, this is identical across processes and Python
        invocations, so it can key an on-disk cache shared between runs.
        """
        blob = json.dumps(self.canonical_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label (for logs and error messages)."""
        from repro.config.noc import topology_key

        workload = self.config.workload.name if self.config.workload else "?"
        return (
            f"{workload} / {topology_key(self.config.noc.topology)} / "
            f"{self.config.num_cores} cores"
        )


def profiling_enabled() -> bool:
    return os.environ.get(PROFILE_ENV_VAR, "").strip().lower() not in (
        "",
        "0",
        "off",
        "false",
        "no",
    )


def execute_point(point: ExperimentPoint) -> SimulationResults:
    """Run one point's simulation (also the process-pool worker function).

    Under ``REPRO_PROFILE=1`` the run executes inside a :mod:`cProfile`
    profiler and drops ``<hash>.pstats`` plus a rendered top-N table
    (``<hash>.profile.txt``) into the cache directory, keyed like the
    point's cache entry.  Profiling happens here — in the worker, around
    exactly one simulation — so a parallel sweep yields one clean profile
    per point instead of one blended profile per process.
    """
    if profiling_enabled():
        return _execute_point_profiled(point)
    chip = Chip(point.config)
    return chip.run_experiment(
        warmup_references=point.settings.warmup_references,
        detailed_warmup_cycles=point.settings.detailed_warmup_cycles,
        measure_cycles=point.settings.measure_cycles,
    )


def _execute_point_profiled(point: ExperimentPoint) -> SimulationResults:
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        chip = Chip(point.config)
        result = chip.run_experiment(
            warmup_references=point.settings.warmup_references,
            detailed_warmup_cycles=point.settings.detailed_warmup_cycles,
            measure_cycles=point.settings.measure_cycles,
        )
    finally:
        profiler.disable()

    root = default_cache_root()
    root.mkdir(parents=True, exist_ok=True)
    stem = point.content_hash()
    profiler.dump_stats(root / f"{stem}.pstats")
    table = io.StringIO()
    stats = pstats.Stats(profiler, stream=table).sort_stats("cumulative")
    table.write(f"# {point.describe()}\n# point hash: {stem}\n")
    stats.print_stats(PROFILE_TOP_N)
    (root / f"{stem}.profile.txt").write_text(table.getvalue())
    return result


# --------------------------------------------------------------------- #
# On-disk result cache
# --------------------------------------------------------------------- #
def default_cache_root() -> Path:
    env = os.environ.get(CACHE_DIR_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def cache_enabled() -> bool:
    return os.environ.get(CACHE_ENV_VAR, "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def default_cache_max_bytes() -> Optional[int]:
    """Size cap from ``REPRO_CACHE_MAX_MB`` in bytes (``None`` = unlimited)."""
    env = os.environ.get(CACHE_MAX_MB_ENV_VAR)
    if not env:
        return None
    try:
        max_mb = float(env)
    except ValueError as exc:
        raise ValueError(f"{CACHE_MAX_MB_ENV_VAR} must be a number, got {env!r}") from exc
    if max_mb <= 0:
        raise ValueError(f"{CACHE_MAX_MB_ENV_VAR} must be positive, got {env!r}")
    return int(max_mb * 1024 * 1024)


def resolve_store_backend(backend: Optional[str] = None) -> str:
    """Backend name: explicit argument > ``REPRO_STORE`` > ``json``."""
    if backend is None:
        backend = os.environ.get(STORE_ENV_VAR, "").strip().lower() or "json"
    if backend not in ("json", "columnar"):
        raise ValueError(
            f"{STORE_ENV_VAR}={backend!r} is not a known result-store backend "
            "(expected 'json' or 'columnar')"
        )
    return backend


class CacheCorruptionWarning(UserWarning):
    """A cache entry was unreadable and has been quarantined."""


#: ``load`` warns at most once per process about quarantined entries (a
#: sweep over a damaged cache would otherwise emit hundreds of identical
#: warnings); the quarantine itself still happens for every bad entry.
_corruption_warned = False


class ResultCache:
    """Result store keyed by :meth:`ExperimentPoint.content_hash`.

    This class is the default **JSON-directory backend** (one
    ``<hash>.json`` file per point) and the dispatch point for the
    pluggable backends: constructing ``ResultCache(...)`` returns a
    :class:`repro.store.cache.ColumnarResultCache` instead when
    ``REPRO_STORE=columnar`` is set (or ``backend="columnar"`` is passed).
    Both backends share keys and values, so a sweep can switch freely;
    ``python -m repro.store.migrate`` imports a JSON directory into a
    columnar store.

    Corrupted or schema-incompatible entries are quarantined (renamed to
    ``*.corrupt``) and treated as misses, so a crashed writer or a format
    change can never wedge a sweep — and the damaged bytes survive for
    diagnosis instead of being destroyed.

    The directory can be size-capped (``max_bytes`` argument or the
    ``REPRO_CACHE_MAX_MB`` environment variable): when a store pushes the
    total past the cap, the least-recently-used result files are evicted.
    A cache hit refreshes the entry's mtime, so recency tracking survives
    filesystems without reliable atimes.  Eviction tolerates concurrent
    writers: entries that vanish mid-scan (a sibling process evicted or
    rewrote them) are simply skipped.
    """

    def __new__(
        cls,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        if cls is ResultCache and resolve_store_backend(backend) == "columnar":
            from repro.store.cache import ColumnarResultCache

            return object.__new__(ColumnarResultCache)
        return object.__new__(cls)

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.max_bytes = max_bytes if max_bytes is not None else default_cache_max_bytes()
        # Running estimate of the directory size, so a capped sweep does not
        # re-stat the whole directory on every store (None = not yet scanned).
        self._approx_total_bytes: Optional[int] = None

    def path_for(self, point: ExperimentPoint) -> Path:
        return self.root / f"{point.content_hash()}.json"

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside (``*.corrupt``) and warn once.

        ``os.replace`` keeps this atomic; losing the race against a sibling
        process that evicted (or already quarantined) the entry is fine —
        either way the bad file no longer answers lookups.
        """
        global _corruption_warned
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            return
        if not _corruption_warned:
            _corruption_warned = True
            warnings.warn(
                f"quarantined corrupt result-cache entry {path.name} "
                f"(kept as {path.name}.corrupt; further corrupt entries "
                "will be quarantined silently)",
                CacheCorruptionWarning,
                stacklevel=3,
            )

    def load(self, point: ExperimentPoint) -> Optional[SimulationResults]:
        """Return the cached result for ``point``, or ``None`` on a miss.

        A corrupt or truncated entry (crashed writer, disk trouble, schema
        drift) is quarantined and read as a miss, so the point is simply
        re-simulated instead of aborting a sweep halfway through.
        """
        path = self.path_for(point)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache schema mismatch")
            result = SimulationResults.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, AttributeError, OSError):
            self._quarantine(path)
            return None
        try:
            os.utime(path)  # mark as recently used for the LRU size cap
        except OSError:
            pass
        return result

    def store(self, point: ExperimentPoint, result: SimulationResults) -> Path:
        """Atomically persist ``result`` under the point's hash."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(point)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "point": point.canonical_dict(),
            "result": result.to_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._enforce_size_cap(protect=path)
        return path

    def _enforce_size_cap(self, protect: Optional[Path] = None) -> None:
        """Evict least-recently-used entries until the cap is respected.

        ``protect`` (the entry just written) is never evicted, so a cap
        smaller than one result degrades to "keep only the newest" rather
        than a store that immediately forgets what it wrote.

        The directory is only re-scanned when the running size estimate
        crosses the cap (concurrent writers can make the estimate stale,
        but every enforcement starts from a fresh scan), so a sweep's cost
        stays O(points) rather than O(points x cached entries).

        Several processes may share the directory (sharded sweeps, farm
        workers), so every filesystem step tolerates entries vanishing
        underneath it: a stat or unlink that loses the race against a
        sibling's eviction/rewrite skips that entry instead of raising.
        """
        if self.max_bytes is None:
            return
        if self._approx_total_bytes is not None and protect is not None:
            try:
                self._approx_total_bytes += protect.stat().st_size
            except OSError:
                self._approx_total_bytes = None
            if (
                self._approx_total_bytes is not None
                and self._approx_total_bytes <= self.max_bytes
            ):
                return

        entries = []
        total = 0
        try:
            paths = list(self.root.glob("*.json"))
        except OSError:  # the directory itself vanished mid-listing
            self._approx_total_bytes = None
            return
        for path in paths:
            try:
                stat = path.stat()
            except OSError:  # evicted or rewritten by a sibling process
                continue
            total += stat.st_size
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        entries.sort()  # oldest mtime first; name breaks ties deterministically
        for _, _, size, path in entries:
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                pass  # a sibling evicted it first; its bytes are gone too
            except OSError:
                continue  # still on disk (permissions...): keep it in the total
            total -= size
        self._approx_total_bytes = total


# --------------------------------------------------------------------- #
# Sweep execution
# --------------------------------------------------------------------- #
def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env:
            try:
                jobs = int(env)
            except ValueError as exc:
                raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from exc
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"job count must be >= 1, got {jobs}")
    return jobs


@dataclass
class SweepStats:
    """What one :meth:`SweepExecutor.run` call actually did."""

    cache_hits: int = 0
    cache_misses: int = 0
    simulations_run: int = 0


class SweepExecutor:
    """Runs a batch of :class:`ExperimentPoint`\\ s, caching and fanning out.

    ``jobs=1`` (or ``REPRO_JOBS=1``) executes points serially in-process,
    bit-identical to the pre-engine loops; higher counts dispatch uncached
    points to a process pool.  Per-point results are independent of the
    worker count because every simulation seeds its own
    :class:`~repro.sim.kernel.Simulator`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        use_cache: Optional[bool] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if use_cache is None:
            use_cache = cache is not None or cache_enabled()
        self.cache: Optional[ResultCache] = (
            (cache if cache is not None else ResultCache()) if use_cache else None
        )
        self.last_stats = SweepStats()

    def run(self, points: Iterable[ExperimentPoint]) -> List[SimulationResults]:
        """Execute ``points`` and return their results in the same order."""
        points = list(points)
        results: List[Optional[SimulationResults]] = [None] * len(points)
        for index, result in self.run_iter(points):
            results[index] = result
        return results  # type: ignore[return-value]

    def run_iter(
        self, points: Iterable[ExperimentPoint]
    ) -> Iterator[Tuple[int, SimulationResults]]:
        """Yield ``(index, result)`` pairs as points complete.

        Cache hits are yielded first (instantly); the uncached remainder
        streams in as worker processes finish, each result stored to the
        cache the moment it lands.  Indices refer to positions in the input
        sequence; duplicate points share one simulation and yield once per
        index.  This is the engine-level primitive behind
        :func:`repro.scenarios.run.iter_results`.
        """
        points = list(points)
        stats = SweepStats()
        self.last_stats = stats

        # Identical points (same content hash) are simulated only once.
        groups: Dict[str, List[int]] = {}
        for index, point in enumerate(points):
            groups.setdefault(point.content_hash(), []).append(index)

        pending: List[ExperimentPoint] = []
        pending_indices: List[List[int]] = []
        for digest, indices in groups.items():
            point = points[indices[0]]
            cached = self.cache.load(point) if self.cache is not None else None
            if cached is not None:
                stats.cache_hits += len(indices)
                for index in indices:
                    yield index, cached
            else:
                stats.cache_misses += len(indices)
                pending.append(point)
                pending_indices.append(indices)

        if not pending:
            return
        # simulations_run counts *completed* simulations, so an abandoned
        # run_iter consumer leaves accurate stats behind.
        if self.jobs == 1 or len(pending) == 1:
            for point, indices in zip(pending, pending_indices):
                result = execute_point(point)
                stats.simulations_run += 1
                if self.cache is not None:
                    self.cache.store(point, result)
                for index in indices:
                    yield index, result
        else:
            workers = min(self.jobs, len(pending))
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = {
                pool.submit(execute_point, point): position
                for position, point in enumerate(pending)
            }
            yielded = set()
            consumed_fully = False
            try:
                for future in as_completed(futures):
                    position = futures[future]
                    result = future.result()
                    stats.simulations_run += 1
                    if self.cache is not None:
                        self.cache.store(pending[position], result)
                    yielded.add(position)
                    for index in pending_indices[position]:
                        yield index, result
                consumed_fully = True
            finally:
                # If the consumer abandoned the generator, harvest (and
                # cache) whatever already finished, cancel the queued rest,
                # and return without waiting on in-flight simulations.
                if not consumed_fully:
                    for future, position in futures.items():
                        if (
                            position not in yielded
                            and future.done()
                            and not future.cancelled()
                            and future.exception() is None
                        ):
                            stats.simulations_run += 1
                            if self.cache is not None:
                                self.cache.store(pending[position], future.result())
                pool.shutdown(wait=consumed_fully, cancel_futures=True)


def run_experiments(
    points: Sequence[ExperimentPoint],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[SimulationResults]:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(jobs=jobs, cache=cache).run(points)
