"""Structured sweep results: tidy records instead of bespoke nested dicts.

Every executed :class:`~repro.scenarios.spec.SweepPoint` becomes one
:class:`ResultRecord` — its coordinate values plus a flat dictionary of
scalar metrics — and a sweep returns a :class:`ResultSet`, which knows how
to ``filter`` by coordinates, look up a single ``value``, ``pivot`` into
the small nested tables the figures print, and round-trip through JSON.
The figure modules are therefore just a spec plus a few pivots; no more
per-figure ``{workload: {label: {cores: value}}}`` shapes invented from
scratch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Scalar metrics copied off :class:`~repro.chip.chip.SimulationResults`
#: into every record (attribute names; properties included).
METRIC_NAMES = (
    "throughput_ipc",
    "per_core_ipc",
    "cycles",
    "total_instructions",
    "messages_delivered",
    "network_mean_latency",
    "network_mean_hops",
    "llc_accesses",
    "llc_hit_rate",
    "snoop_rate",
    "l1i_mpki",
    "memory_reads",
)

_RESULTS_SCHEMA = 1


@dataclass(frozen=True)
class RecordDelta:
    """One coordinate point of :meth:`ResultSet.delta`: a value vs. another.

    ``rel_delta`` is ``(other - value) / value`` — ``None`` when the
    reference ``value`` is zero.
    """

    coords: Dict[str, object]
    value: float
    other: float

    @property
    def abs_delta(self) -> float:
        return self.other - self.value

    @property
    def rel_delta(self) -> Optional[float]:
        if self.value == 0:
            return None
        return (self.other - self.value) / self.value


@dataclass(frozen=True)
class ResultRecord:
    """One executed point: its coordinates, scalar metrics, and provenance.

    ``result`` retains the full :class:`SimulationResults` when the sweep
    was run with ``keep_results=True`` (the default) — the power analysis
    needs the per-component ``network_activity`` counters, which are not
    scalar metrics.  JSON serialisation drops it unless asked to keep it.
    """

    coords: Dict[str, object]
    metrics: Dict[str, float]
    point_hash: str
    result: Optional["SimulationResults"] = field(  # noqa: F821 — lazy import
        default=None, compare=False, repr=False
    )

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            ) from None

    def matches(self, selection: Mapping) -> bool:
        return all(self.coords.get(key) == value for key, value in selection.items())

    def full_result(self) -> Optional["SimulationResults"]:  # noqa: F821
        """The complete :class:`SimulationResults` behind this record.

        Eager records return the retained result (``None`` when the sweep
        ran with ``keep_results=False``); store-backed records
        (:meth:`ResultSet.from_store_table`) materialise their row on
        demand.  Non-scalar fields — ``per_tenant_latency``,
        ``network_activity`` — are only reachable this way.
        """
        if self.result is not None:
            return self.result
        if isinstance(self.metrics, TableMetrics):
            return self.metrics.materialise()
        return None

    def to_dict(self, include_result: bool = False) -> Dict[str, object]:
        from repro.scenarios.spec import _json_value

        data = {
            "coords": {key: _json_value(value) for key, value in self.coords.items()},
            "metrics": dict(self.metrics),
            "point_hash": self.point_hash,
        }
        if include_result and self.result is not None:
            data["result"] = self.result.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultRecord":
        from repro.scenarios.spec import _freeze_value

        result = None
        if data.get("result") is not None:
            from repro.chip.chip import SimulationResults

            result = SimulationResults.from_dict(data["result"])
        return cls(
            # _freeze_value revives workload maps (the __kind__ tag) and
            # turns JSON lists back into the hashable tuples the merge /
            # delta coordinate keys need.
            coords={key: _freeze_value(value) for key, value in data["coords"].items()},
            metrics=dict(data["metrics"]),
            point_hash=str(data["point_hash"]),
            result=result,
        )


class TableMetrics(Mapping):
    """Lazy metric view over one row of a columnar store table.

    Stands in for a :class:`ResultRecord`'s ``metrics`` dict without
    copying anything at construction: reading a metric materialises the
    row's :class:`SimulationResults` once (cached inside the table) and
    resolves the metric through the same attributes/properties
    :func:`record_for` uses, so values are identical to the eager path.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table, index: int) -> None:
        self._table = table
        self._index = index

    def __getitem__(self, name: str) -> float:
        if name not in METRIC_NAMES:
            raise KeyError(name)
        return getattr(self._table.result(self._index), name)

    def __iter__(self) -> Iterator[str]:
        return iter(METRIC_NAMES)

    def __len__(self) -> int:
        return len(METRIC_NAMES)

    def materialise(self) -> "SimulationResults":  # noqa: F821
        """The row's full :class:`SimulationResults` (cached by the table)."""
        return self._table.result(self._index)

    def __repr__(self) -> str:
        return f"TableMetrics(row {self._index})"


def record_for(sweep_point, result, keep_result: bool = True) -> ResultRecord:
    """Build the :class:`ResultRecord` for one executed sweep point."""
    return ResultRecord(
        coords=dict(sweep_point.coords),
        metrics={name: getattr(result, name) for name in METRIC_NAMES},
        point_hash=sweep_point.content_hash(),
        result=result if keep_result else None,
    )


class ResultSet(Sequence[ResultRecord]):
    """An ordered collection of :class:`ResultRecord`\\ s with query helpers.

    Supports the sequence protocol (``len`` / indexing / iteration; slices
    return a new :class:`ResultSet`) plus:

    * ``filter(**coords)`` / ``value(metric, **coords)`` /
      ``axis_values(name)`` / ``pivot(index, columns, metric)`` /
      ``iter_values(metric, **coords)`` (streaming) — queries over the
      records' coordinates;
    * ``from_store_table(sweep_points, table)`` — zero-copy construction
      over a columnar store table (:mod:`repro.store`), metrics resolved
      lazily per row;
    * ``merge(other)`` / ``summary(metric, **coords)`` / ``delta(other,
      metric)`` — combination and comparison across result sets (the
      reporting layer and before/after experiments build on these);
    * ``to_json()`` / ``from_json()`` — lossless round-trip (the full
      per-record :class:`SimulationResults` is included only on request).

    Example::

        results = run_sweep(spec)
        results.value("throughput_ipc", workload="Web Search", topology="mesh")
        results.pivot("workload", "topology", metric="throughput_ipc")
        results.summary("network_mean_latency", topology="noc_out")
    """

    def __init__(self, records: Sequence[ResultRecord], spec=None) -> None:
        self.records: List[ResultRecord] = list(records)
        self.spec = spec

    # -- sequence protocol ---------------------------------------------- #
    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.records[index], spec=self.spec)
        return self.records[index]

    def __iter__(self) -> Iterator[ResultRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"ResultSet({len(self.records)} records)"

    # -- queries -------------------------------------------------------- #
    def filter(self, **selection) -> "ResultSet":
        """Records whose coordinates match every ``name=value`` given."""
        return ResultSet(
            [record for record in self.records if record.matches(selection)],
            spec=self.spec,
        )

    def value(self, metric: str, **selection) -> float:
        """The single ``metric`` value selected by the coordinates given."""
        matches = [record for record in self.records if record.matches(selection)]
        if len(matches) != 1:
            raise LookupError(
                f"selection {selection!r} matched {len(matches)} records, expected 1"
            )
        return matches[0].metric(metric)

    def iter_values(
        self, metric: str, **selection
    ) -> Iterator[Tuple[Dict[str, object], float]]:
        """Stream ``(coords, value)`` pairs for ``metric``, lazily.

        The streaming complement of :meth:`value`/:meth:`pivot`: records
        are visited in order and metric values resolved one at a time, so
        a store-backed set (:meth:`from_store_table`) materialises only
        the rows actually consumed — a serving layer can answer "first
        matching row" queries without touching the rest of the table.
        """
        for record in self.records:
            if record.matches(selection):
                yield record.coords, record.metric(metric)

    def axis_values(self, name: str) -> List[object]:
        """Distinct values of coordinate ``name``, in first-seen order."""
        seen: Dict[object, None] = {}
        for record in self.records:
            if name in record.coords:
                seen.setdefault(record.coords[name])
        return list(seen)

    def pivot(
        self,
        index: str,
        columns: str,
        metric: str = "throughput_ipc",
        transform: Optional[Callable[[float], float]] = None,
    ) -> Dict[object, Dict[object, float]]:
        """Nested ``{index value: {column value: metric}}`` table.

        This is the shape the legacy per-figure dicts used; ``transform``
        (e.g. a normalisation) is applied to each cell if given.
        """
        table: Dict[object, Dict[object, float]] = {}
        for record in self.records:
            row = record.coords.get(index)
            column = record.coords.get(columns)
            value = record.metric(metric)
            table.setdefault(row, {})[column] = (
                transform(value) if transform is not None else value
            )
        return table

    # -- combination and summaries -------------------------------------- #
    def merge(self, other: "ResultSet") -> "ResultSet":
        """Concatenate two result sets, dropping duplicate points.

        A record is a duplicate when an earlier record carries the same
        ``(point_hash, coords)`` pair — the situation after merging two
        shard runs of the same spec, where the overlap is byte-identical
        by construction.  The spec is kept only when both sets agree on it
        (a merged cross-spec set has no single describing spec).
        """
        seen = set()
        records: List[ResultRecord] = []
        for record in list(self.records) + list(other.records):
            key = (record.point_hash, tuple(sorted(record.coords.items())))
            if key in seen:
                continue
            seen.add(key)
            records.append(record)
        spec = self.spec if self.spec == other.spec else None
        return ResultSet(records, spec=spec)

    def summary(self, metric: str, **selection) -> Dict[str, float]:
        """Descriptive statistics of ``metric`` over the selected records.

        Returns ``{"count", "mean", "min", "max"}`` (an all-zero dict when
        nothing matches), e.g. ``results.summary("throughput_ipc",
        topology="mesh")``.
        """
        values = [
            record.metric(metric)
            for record in self.records
            if record.matches(selection)
        ]
        if not values:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }

    def delta(self, other: "ResultSet", metric: str = "throughput_ipc") -> List[RecordDelta]:
        """Per-point deltas of ``metric`` against ``other``, matched by coords.

        The workhorse for before/after comparisons (two model versions, two
        settings): every coordinate point present in both sets yields a
        :class:`RecordDelta` with this set's value as the reference.
        Points missing from either side are skipped; duplicated coordinates
        in ``other`` resolve to the first occurrence.
        """
        def key(record: ResultRecord):
            return tuple(sorted(record.coords.items()))

        other_by_coords: Dict[tuple, ResultRecord] = {}
        for record in other.records:
            other_by_coords.setdefault(key(record), record)
        deltas = []
        for record in self.records:
            counterpart = other_by_coords.get(key(record))
            if counterpart is None:
                continue
            deltas.append(
                RecordDelta(
                    coords=dict(record.coords),
                    value=record.metric(metric),
                    other=counterpart.metric(metric),
                )
            )
        return deltas

    # -- store-backed construction -------------------------------------- #
    @classmethod
    def from_store_table(cls, sweep_points, table, spec=None) -> "ResultSet":
        """Zero-copy construction over a columnar store table.

        ``sweep_points`` are the expanded
        :class:`~repro.scenarios.spec.SweepPoint`\\ s of a spec and
        ``table`` a :class:`~repro.store.columnar.StoreTable` whose rows
        line up with them (``table.hashes[i] ==
        sweep_points[i].content_hash()`` — :func:`repro.store.query.load_sweep`
        builds exactly this pairing).  No metric values are copied or even
        read here: each record's ``metrics`` is a :class:`TableMetrics`
        view that materialises its row on first access.
        """
        if len(sweep_points) != len(table):
            raise ValueError(
                f"{len(sweep_points)} sweep point(s) vs {len(table)} table "
                "row(s); load the table from the same expansion"
            )
        records = []
        for index, sweep_point in enumerate(sweep_points):
            digest = table.hashes[index]
            if sweep_point.content_hash() != digest:
                raise ValueError(
                    f"row {index} is keyed {digest[:12]}..., expected "
                    f"{sweep_point.content_hash()[:12]}... — table and "
                    "expansion are misaligned"
                )
            records.append(
                ResultRecord(
                    coords=dict(sweep_point.coords),
                    metrics=TableMetrics(table, index),
                    point_hash=digest,
                )
            )
        return cls(records, spec=spec)

    # -- serialisation -------------------------------------------------- #
    def to_dict(self, include_results: bool = False) -> Dict[str, object]:
        return {
            "schema": _RESULTS_SCHEMA,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "records": [record.to_dict(include_results) for record in self.records],
        }

    def to_json(self, include_results: bool = False, indent=None) -> str:
        return json.dumps(self.to_dict(include_results), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultSet":
        if data.get("schema") != _RESULTS_SCHEMA:
            raise ValueError(f"unsupported ResultSet schema: {data.get('schema')!r}")
        spec = None
        if data.get("spec") is not None:
            from repro.scenarios.spec import SweepSpec

            spec = SweepSpec.from_dict(data["spec"])
        return cls([ResultRecord.from_dict(item) for item in data["records"]], spec=spec)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))
