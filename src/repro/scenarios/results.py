"""Structured sweep results: tidy records instead of bespoke nested dicts.

Every executed :class:`~repro.scenarios.spec.SweepPoint` becomes one
:class:`ResultRecord` — its coordinate values plus a flat dictionary of
scalar metrics — and a sweep returns a :class:`ResultSet`, which knows how
to ``filter`` by coordinates, look up a single ``value``, ``pivot`` into
the small nested tables the figures print, and round-trip through JSON.
The figure modules are therefore just a spec plus a few pivots; no more
per-figure ``{workload: {label: {cores: value}}}`` shapes invented from
scratch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

#: Scalar metrics copied off :class:`~repro.chip.chip.SimulationResults`
#: into every record (attribute names; properties included).
METRIC_NAMES = (
    "throughput_ipc",
    "per_core_ipc",
    "cycles",
    "total_instructions",
    "messages_delivered",
    "network_mean_latency",
    "network_mean_hops",
    "llc_accesses",
    "llc_hit_rate",
    "snoop_rate",
    "l1i_mpki",
    "memory_reads",
)

_RESULTS_SCHEMA = 1


@dataclass(frozen=True)
class ResultRecord:
    """One executed point: its coordinates, scalar metrics, and provenance.

    ``result`` retains the full :class:`SimulationResults` when the sweep
    was run with ``keep_results=True`` (the default) — the power analysis
    needs the per-component ``network_activity`` counters, which are not
    scalar metrics.  JSON serialisation drops it unless asked to keep it.
    """

    coords: Dict[str, object]
    metrics: Dict[str, float]
    point_hash: str
    result: Optional["SimulationResults"] = field(  # noqa: F821 — lazy import
        default=None, compare=False, repr=False
    )

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            ) from None

    def matches(self, selection: Mapping) -> bool:
        return all(self.coords.get(key) == value for key, value in selection.items())

    def to_dict(self, include_result: bool = False) -> Dict[str, object]:
        data = {
            "coords": dict(self.coords),
            "metrics": dict(self.metrics),
            "point_hash": self.point_hash,
        }
        if include_result and self.result is not None:
            data["result"] = self.result.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultRecord":
        result = None
        if data.get("result") is not None:
            from repro.chip.chip import SimulationResults

            result = SimulationResults.from_dict(data["result"])
        return cls(
            coords=dict(data["coords"]),
            metrics=dict(data["metrics"]),
            point_hash=str(data["point_hash"]),
            result=result,
        )


def record_for(sweep_point, result, keep_result: bool = True) -> ResultRecord:
    """Build the :class:`ResultRecord` for one executed sweep point."""
    return ResultRecord(
        coords=dict(sweep_point.coords),
        metrics={name: getattr(result, name) for name in METRIC_NAMES},
        point_hash=sweep_point.content_hash(),
        result=result if keep_result else None,
    )


class ResultSet(Sequence[ResultRecord]):
    """An ordered collection of :class:`ResultRecord`\\ s with query helpers."""

    def __init__(self, records: Sequence[ResultRecord], spec=None) -> None:
        self.records: List[ResultRecord] = list(records)
        self.spec = spec

    # -- sequence protocol ---------------------------------------------- #
    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.records[index], spec=self.spec)
        return self.records[index]

    def __iter__(self) -> Iterator[ResultRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"ResultSet({len(self.records)} records)"

    # -- queries -------------------------------------------------------- #
    def filter(self, **selection) -> "ResultSet":
        """Records whose coordinates match every ``name=value`` given."""
        return ResultSet(
            [record for record in self.records if record.matches(selection)],
            spec=self.spec,
        )

    def value(self, metric: str, **selection) -> float:
        """The single ``metric`` value selected by the coordinates given."""
        matches = [record for record in self.records if record.matches(selection)]
        if len(matches) != 1:
            raise LookupError(
                f"selection {selection!r} matched {len(matches)} records, expected 1"
            )
        return matches[0].metric(metric)

    def axis_values(self, name: str) -> List[object]:
        """Distinct values of coordinate ``name``, in first-seen order."""
        seen: Dict[object, None] = {}
        for record in self.records:
            if name in record.coords:
                seen.setdefault(record.coords[name])
        return list(seen)

    def pivot(
        self,
        index: str,
        columns: str,
        metric: str = "throughput_ipc",
        transform: Optional[Callable[[float], float]] = None,
    ) -> Dict[object, Dict[object, float]]:
        """Nested ``{index value: {column value: metric}}`` table.

        This is the shape the legacy per-figure dicts used; ``transform``
        (e.g. a normalisation) is applied to each cell if given.
        """
        table: Dict[object, Dict[object, float]] = {}
        for record in self.records:
            row = record.coords.get(index)
            column = record.coords.get(columns)
            value = record.metric(metric)
            table.setdefault(row, {})[column] = (
                transform(value) if transform is not None else value
            )
        return table

    # -- serialisation -------------------------------------------------- #
    def to_dict(self, include_results: bool = False) -> Dict[str, object]:
        return {
            "schema": _RESULTS_SCHEMA,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "records": [record.to_dict(include_results) for record in self.records],
        }

    def to_json(self, include_results: bool = False, indent=None) -> str:
        return json.dumps(self.to_dict(include_results), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultSet":
        if data.get("schema") != _RESULTS_SCHEMA:
            raise ValueError(f"unsupported ResultSet schema: {data.get('schema')!r}")
        spec = None
        if data.get("spec") is not None:
            from repro.scenarios.spec import SweepSpec

            spec = SweepSpec.from_dict(data["spec"])
        return cls([ResultRecord.from_dict(item) for item in data["records"]], spec=spec)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))
