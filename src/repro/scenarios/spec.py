"""Declarative sweep descriptions.

A :class:`SweepSpec` is *data*: named axes (each a tuple of values), the
base :class:`~repro.experiments.harness.RunSettings`, and fixed coordinate
overrides shared by every point.  Expanding a spec yields
:class:`SweepPoint`\\ s — flat coordinate dictionaries paired with the
:class:`~repro.experiments.engine.ExperimentPoint` they describe — via the
same content-hashed configs the engine has always used, so a spec-driven
sweep hits exactly the same cache keys as the hand-rolled loops it
replaces.

Coordinates
-----------
Recognised coordinate names (whether used as an axis or in ``fixed``):

``workload``
    A workload preset name (resolved through the workload registry).
``topology``
    A topology preset name (default ``"mesh"``, resolved through the
    topology registry).
``num_cores`` / ``link_width_bits`` / ``seed``
    System parameters (defaults 64 / 128 / the settings' seed).
``workload_map``
    A :class:`~repro.tenancy.WorkloadMap` (or its ``to_dict()`` form —
    the ``__kind__`` tag distinguishes it from zipped-axis mappings),
    attached to the config verbatim.  When present, ``workload`` may be
    omitted; it defaults to the map's first tenant.
``placement`` (+ ``tenants``, ``arrival``, ``load``, ``matrix``)
    Scalar tenancy coordinates: ``placement`` names a registered
    placement, ``tenants`` is the tuple of tenant workload names, and
    ``arrival``/``load``/``matrix`` shape every tenant's open-loop
    traffic (defaults ``poisson``/``0.0``/``uniform``).  The point builds
    the :class:`WorkloadMap` itself — this keeps co-location sweeps
    pivotable by plain scalars.  Mutually exclusive with ``workload_map``.
anything else
    Must be a :class:`~repro.config.noc.NocConfig` field; applied as a NoC
    override (this is how the ablations sweep ``llc_banks_per_tile``,
    ``tree_arbitration``, ``tree_concentration``...).

An axis *value* may also be a mapping, in which case it contributes several
coordinates at once ("zipped" axes).  Figure 9 uses this for fabrics whose
link width depends on the topology::

    SweepSpec(axes={
        "workload": names,
        "fabric": ({"topology": "mesh", "link_width_bits": 55}, ...),
    }, settings=settings)

Sharding
--------
``spec.shard(i, n)`` returns a spec whose expansion keeps only the points
with ``content_hash % n == i``.  The hash is stable across processes and
machines, so ``n`` machines can each run one shard against a private cache
and the caches can be merged afterwards (:mod:`repro.scenarios.merge`);
every point of the full spec lands in exactly one shard.

Serialisation
-------------
``spec.to_json()`` / ``SweepSpec.from_json()`` round-trip the whole
description (axes, settings, fixed coordinates, shard selection), so a
sweep can be shipped to another machine as a small JSON document.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Tuple

#: Coordinate names consumed directly by the system builder; everything
#: else must name a NocConfig field.
_SYSTEM_COORDS = (
    "workload",
    "topology",
    "num_cores",
    "link_width_bits",
    "seed",
    "workload_map",
    "placement",
    "tenants",
    "arrival",
    "load",
    "matrix",
)

_SPEC_SCHEMA = 1


class FrozenCoords(Mapping):
    """Immutable, hashable mapping used for zipped-axis values.

    Pairs are stored sorted by key so equal mappings hash equally, which
    keeps a :class:`SweepSpec` containing zipped axes hashable (the
    dataclass is frozen, so ``hash(spec)`` must work).
    """

    __slots__ = ("_items",)

    def __init__(self, items) -> None:
        if isinstance(items, Mapping):
            items = items.items()
        self._items = tuple(
            sorted((str(key), _freeze_value(value)) for key, value in items)
        )

    def __getitem__(self, key):
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self):
        return iter(name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"FrozenCoords({dict(self)!r})"


def _freeze_value(value):
    """Normalise one axis value to an immutable, hashable form.

    Mappings normally become :class:`FrozenCoords` (zipped coordinates);
    the ``__kind__`` tag written by ``WorkloadMap.to_dict()`` revives a
    workload map instead, so map-valued axes survive JSON round-trips.
    """
    if isinstance(value, Mapping):
        if value.get("__kind__") == "workload_map":
            from repro.tenancy.placement import WorkloadMap

            return WorkloadMap.from_dict(value)
        return FrozenCoords(value)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    return value


def _json_value(value):
    """Undo :func:`_freeze_value` for JSON serialisation."""
    if getattr(value, "is_workload_map", False):
        return value.to_dict()
    if isinstance(value, Mapping):
        return {key: _json_value(item) for key, item in value.items()}
    if isinstance(value, tuple):
        return [_json_value(item) for item in value]
    return value


def _as_pairs(data, what: str) -> Tuple[Tuple[str, object], ...]:
    items = data.items() if isinstance(data, Mapping) else data
    return tuple((str(key), _freeze_value(value)) for key, value in items)


@dataclass(frozen=True)
class SweepPoint:
    """One expanded point: flat coordinates plus the engine point they build."""

    coords: Dict[str, object]
    point: "ExperimentPoint"  # noqa: F821 — imported lazily (see module docstring)

    def content_hash(self) -> str:
        return self.point.content_hash()


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: axes x fixed overrides, under one base settings."""

    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]
    settings: "RunSettings"  # noqa: F821 — imported lazily
    fixed: Tuple[Tuple[str, object], ...] = field(default=())
    shard_index: int = 0
    shard_count: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "axes",
            tuple((name, tuple(_freeze_value(v) for v in values))
                  for name, values in _as_pairs(self.axes, "axes")),
        )
        object.__setattr__(self, "fixed", _as_pairs(self.fixed, "fixed"))
        if not self.axes:
            raise ValueError("SweepSpec needs at least one axis")
        names = [name for name, _ in self.axes]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate axis names in {names}")
        for name, values in self.axes:
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), got {self.shard_index}"
            )

    # ------------------------------------------------------------------ #
    @property
    def axes_dict(self) -> Dict[str, Tuple[object, ...]]:
        """The axes as a plain ``{name: values}`` dictionary."""
        return dict(self.axes)

    @property
    def fixed_dict(self) -> Dict[str, object]:
        return dict(self.fixed)

    def size(self) -> int:
        """Number of points before sharding (the axes' cross product)."""
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    # ------------------------------------------------------------------ #
    def shard(self, index: int, count: int) -> "SweepSpec":
        """The sub-spec holding shard ``index`` of ``count`` (by hash range)."""
        if self.shard_count != 1:
            raise ValueError("spec is already sharded; shard the full spec instead")
        return replace(self, shard_index=index, shard_count=count)

    def expand(self) -> List[SweepPoint]:
        """All points of this spec (this shard only, if sharded), in axis order."""
        points = []
        axis_names = [name for name, _ in self.axes]
        for combo in itertools.product(*(values for _, values in self.axes)):
            coords: Dict[str, object] = {}

            def assign(key: str, value: object) -> None:
                if key in coords:
                    raise ValueError(
                        f"coordinate {key!r} set more than once (axes/fixed overlap)"
                    )
                coords[key] = value

            for name, value in zip(axis_names, combo):
                if isinstance(value, Mapping):
                    for key, item in value.items():
                        assign(str(key), item)
                else:
                    assign(name, value)
            for key, value in self.fixed:
                assign(key, value)
            points.append(SweepPoint(coords=coords, point=point_for_coords(coords, self.settings)))
        if self.shard_count > 1:
            points = [
                sp
                for sp in points
                if int(sp.content_hash(), 16) % self.shard_count == self.shard_index
            ]
        return points

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        import dataclasses as _dc

        return {
            "schema": _SPEC_SCHEMA,
            "axes": [
                [name, [_json_value(value) for value in values]]
                for name, values in self.axes
            ],
            "settings": _dc.asdict(self.settings),
            "fixed": [[name, _json_value(value)] for name, value in self.fixed],
            "shard": [self.shard_index, self.shard_count],
        }

    def to_json(self, indent=None) -> str:
        """Serialise the spec (shippable to another machine; see module docs)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        from repro.experiments.harness import RunSettings

        if data.get("schema") != _SPEC_SCHEMA:
            raise ValueError(f"unsupported SweepSpec schema: {data.get('schema')!r}")
        shard_index, shard_count = data.get("shard", (0, 1))
        return cls(
            axes=[(name, values) for name, values in data["axes"]],
            settings=RunSettings(**data["settings"]),
            fixed=[(name, value) for name, value in data.get("fixed", ())],
            shard_index=shard_index,
            shard_count=shard_count,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------- #
def point_for_coords(coords: Mapping, settings) -> "ExperimentPoint":  # noqa: F821
    """Build the :class:`ExperimentPoint` described by one coordinate dict.

    The construction mirrors ``harness.point_for`` exactly (registry system
    factory + NoC overrides + workload), so coordinate-built points hash to
    the same cache keys as the legacy per-figure loops.
    """
    import dataclasses as _dc

    from repro.config.noc import NocConfig
    from repro.experiments.engine import ExperimentPoint
    from repro.scenarios import registry

    c = dict(coords)
    workload_name = c.pop("workload", None)
    topology_name = c.pop("topology", "mesh")
    num_cores = c.pop("num_cores", 64)
    link_width_bits = c.pop("link_width_bits", 128)
    seed = c.pop("seed", settings.seed)

    # Tenancy coordinates: either a literal map or the scalar
    # placement/tenants/arrival/load/matrix quintuple that builds one.
    workload_map = c.pop("workload_map", None)
    placement_name = c.pop("placement", None)
    tenancy = {
        key: c.pop(key) for key in ("tenants", "arrival", "load", "matrix") if key in c
    }
    if workload_map is not None and placement_name is not None:
        raise ValueError(
            "coordinates set both 'workload_map' and 'placement'; use one or the other"
        )
    if placement_name is not None:
        tenants = tenancy.pop("tenants", None)
        if not tenants:
            raise ValueError(
                "a 'placement' coordinate needs a 'tenants' coordinate "
                "(tuple of workload names)"
            )
        if isinstance(tenants, str):
            tenants = (tenants,)
        from repro.tenancy.placement import build_placement

        workload_map = build_placement(
            str(placement_name),
            num_cores=int(num_cores),
            tenants=[str(name) for name in tenants],
            arrival=str(tenancy.pop("arrival", "poisson")),
            rate=float(tenancy.pop("load", 0.0)),
            matrix=str(tenancy.pop("matrix", "uniform")),
        )
    elif tenancy:
        raise ValueError(
            f"coordinate(s) {sorted(tenancy)} require a 'placement' coordinate"
        )
    if isinstance(workload_map, Mapping):
        from repro.tenancy.placement import WorkloadMap

        workload_map = WorkloadMap.from_dict(workload_map)

    if workload_name is None:
        if workload_map is None:
            raise ValueError(f"point coordinates {dict(coords)!r} lack a 'workload'")
        workload_name = workload_map.tenants[0].workload

    noc_fields = {f.name for f in _dc.fields(NocConfig)}
    unknown = sorted(key for key in c if key not in noc_fields)
    if unknown:
        raise ValueError(
            f"unknown coordinate(s) {unknown}; expected one of "
            f"{list(_SYSTEM_COORDS)} or a NocConfig field"
        )

    config = registry.build_system(
        str(topology_name),
        num_cores=num_cores,
        link_width_bits=link_width_bits,
        seed=seed,
    )
    if c:
        config = config.with_noc(_dc.replace(config.noc, **c))
    config = config.with_workload(registry.workload(str(workload_name)))
    if workload_map is not None:
        config = config.with_workload_map(workload_map)
    return ExperimentPoint(config=config, settings=settings)
