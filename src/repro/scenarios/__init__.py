"""Declarative scenario API: registries, sweep specs, structured results.

This package is the experiment-facing surface of the reproduction:

* :mod:`~repro.scenarios.registry` — ``@register_workload`` /
  ``@register_topology`` name registries (workloads seeded by
  :mod:`repro.config.presets`, fabric plugins by :mod:`repro.fabrics`), so
  fabrics and workloads are discoverable and extensible by name; a fabric
  registration carries the full build/describe protocol
  (:func:`fabric_for` dispatches chip construction through it);
* :mod:`~repro.scenarios.spec` — :class:`SweepSpec`, a frozen, JSON
  round-trippable description of a sweep (axes x fixed overrides) that
  expands to the engine's content-hashed experiment points and shards by
  hash range (``spec.shard(i, n)``);
* :mod:`~repro.scenarios.results` — :class:`ResultSet` /
  :class:`ResultRecord`, tidy records with ``filter`` / ``value`` /
  ``pivot`` / ``to_json`` queries plus ``merge`` / ``summary`` /
  ``delta`` for combining and comparing result sets (the
  paper-vs-measured layer in :mod:`repro.reporting` consumes these);
* :mod:`~repro.scenarios.run` — :func:`run_sweep` (blocking) and
  :func:`iter_results` (streams records as simulations finish);
* :mod:`~repro.scenarios.merge` — fold a shard's JSON cache directory
  into another (``python -m repro.scenarios.merge``); for the columnar
  store backend the equivalent is importing each shard with
  ``python -m repro.store.migrate`` and compacting (:mod:`repro.store`).

Typical usage::

    from repro.scenarios import SweepSpec, run_sweep
    from repro.experiments import RunSettings

    spec = SweepSpec(
        axes={"workload": ("Web Search",), "topology": ("mesh", "noc_out")},
        settings=RunSettings.from_env(),
    )
    table = run_sweep(spec).pivot("workload", "topology", "throughput_ipc")

Import-order invariant: modules here import other ``repro`` subpackages
only lazily (inside functions).  ``repro.config.presets`` imports the
registration decorators at module level to seed the registries, and the
figure modules under ``repro.experiments`` import this package at module
level; eager imports in the other direction would cycle.
"""

from repro.scenarios.registry import (
    RegistrationError,
    Registry,
    build_system,
    fabric_for,
    register_topology,
    register_workload,
    topologies,
    topology_names,
    workload,
    workload_names,
    workloads,
)
from repro.scenarios.results import (
    METRIC_NAMES,
    RecordDelta,
    ResultRecord,
    ResultSet,
    TableMetrics,
    record_for,
)
from repro.scenarios.run import iter_results, run_sweep
from repro.scenarios.spec import SweepPoint, SweepSpec, point_for_coords

__all__ = [
    "METRIC_NAMES",
    "RecordDelta",
    "RegistrationError",
    "Registry",
    "ResultRecord",
    "ResultSet",
    "SweepPoint",
    "SweepSpec",
    "TableMetrics",
    "build_system",
    "fabric_for",
    "iter_results",
    "point_for_coords",
    "record_for",
    "register_topology",
    "register_workload",
    "run_sweep",
    "topologies",
    "topology_names",
    "workload",
    "workload_names",
    "workloads",
]
