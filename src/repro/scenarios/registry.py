"""Name-based registries for workloads and topology presets.

The paper's experiments are cross products over *named* things: workload
presets ("Data Serving", "Web Search", ...) and fabric organizations
("mesh", "flattened_butterfly", "noc_out", "ideal").  The registries here
make both discoverable and extensible by name, so a new fabric preset or
workload is a one-module addition::

    from repro.scenarios import register_workload

    @register_workload("My Workload")
    def my_workload():
        return WorkloadConfig(name="My Workload", ...)

and ``SweepSpec(axes={"workload": ("My Workload",), ...})`` immediately
works.  The built-in entries are seeded by :mod:`repro.config.presets`,
whose factory functions carry the same decorators: the six CloudSuite-style
workloads populate :data:`workloads`, and the four system builders (one per
:class:`repro.config.noc.Topology` member) populate :data:`topologies`
under the enum's string values.

Import-order note: modules in ``repro.scenarios`` never import other
``repro`` subpackages at module level (``repro.config.presets`` imports the
decorators from here at *its* module level, so anything else would cycle).
Lookups call :func:`ensure_seeded`, which imports the presets module
on first use.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class RegistrationError(ValueError):
    """Raised on conflicting registrations (duplicate names)."""


class Registry:
    """A mapping from names to zero-config factories.

    Names are looked up exactly as registered; unknown names raise
    :class:`KeyError` with the list of available entries.  Registering a
    name twice raises :class:`RegistrationError` unless ``replace=True``
    is passed (useful for tests and experimentation).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    # -- registration --------------------------------------------------- #
    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator."""

        def decorator(function: Callable) -> Callable:
            if not replace and name in self._factories:
                raise RegistrationError(
                    f"{self.kind} {name!r} is already registered; pass "
                    f"replace=True to override it"
                )
            self._factories[name] = function
            return function

        if factory is not None:
            return decorator(factory)
        return decorator

    def unregister(self, name: str) -> None:
        """Remove ``name`` (KeyError if absent); mainly for test cleanup."""
        del self._factories[name]

    # -- lookup --------------------------------------------------------- #
    def get(self, name: str) -> Callable:
        """Return the factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._factories)}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Look up ``name`` and call its factory."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


#: Workload presets: name -> ``() -> WorkloadConfig``.
workloads = Registry("workload")
#: Topology/system presets: name -> ``(num_cores=..., link_width_bits=...,
#: seed=...) -> SystemConfig`` (without a workload attached).
topologies = Registry("topology")


def register_workload(name: str, factory: Optional[Callable] = None, **kwargs):
    """Register a ``() -> WorkloadConfig`` factory under ``name``."""
    return workloads.register(name, factory, **kwargs)


def register_topology(name: str, factory: Optional[Callable] = None, **kwargs):
    """Register a system factory (``**kwargs -> SystemConfig``) under ``name``."""
    return topologies.register(name, factory, **kwargs)


_seeded = False


def ensure_seeded() -> None:
    """Load the built-in presets into the registries (idempotent).

    The flag flips only after the import succeeds, so a failed seeding
    import is retried (and re-raised) on the next lookup instead of
    surfacing as a misleading empty registry.
    """
    global _seeded
    if _seeded:
        return
    # The decorators on the preset factories run at import time.
    import repro.config.presets  # noqa: F401

    _seeded = True


def workload(name: str):
    """Build the :class:`~repro.config.workload.WorkloadConfig` named ``name``."""
    ensure_seeded()
    return workloads.create(name)


def build_system(name: str, **kwargs):
    """Build the (workload-less) :class:`SystemConfig` for topology ``name``."""
    ensure_seeded()
    return topologies.create(name, **kwargs)


def workload_names() -> List[str]:
    """All registered workload names (built-ins first)."""
    ensure_seeded()
    return workloads.names()


def topology_names() -> List[str]:
    """All registered topology names (built-ins first)."""
    ensure_seeded()
    return topologies.names()
