"""Name-based registries for workloads and fabric plugins.

The paper's experiments are cross products over *named* things: workload
presets ("Data Serving", "Web Search", ...) and fabric organizations
("mesh", "flattened_butterfly", "noc_out", "ideal", "cmesh").  The
registries here make both discoverable and extensible by name, so a new
fabric or workload is a one-module addition::

    from repro.scenarios import register_workload

    @register_workload("My Workload")
    def my_workload():
        return WorkloadConfig(name="My Workload", ...)

and ``SweepSpec(axes={"workload": ("My Workload",), ...})`` immediately
works.

Fabric plugins
--------------
``@register_topology`` registers a **fabric plugin**: an object with a
``name`` plus four hooks — ``build_system(**kwargs)`` (the system preset),
``build_system_map(config)`` (node placement and address interleaving),
``build_network(sim, config, system_map)`` (the simulated interconnect)
and ``describe(config)`` (the static router/link inventory the area and
energy models read).  ``chip.builder.build_network``,
``chip.system_map.build_system_map`` and ``noc.topology.describe_topology``
are thin dispatches through :func:`fabric_for`, so registering a plugin is
the *only* step needed to wire a new fabric into chip building, the
power/area models and the scenario layer; see :mod:`repro.fabrics` for the
protocol and the built-in plugin modules.

For backwards compatibility ``@register_topology`` also accepts a bare
``**kwargs -> SystemConfig`` factory (the pre-plugin registration form);
such an entry can seed sweeps with configs whose *topology* belongs to a
full plugin, but cannot itself build chips.

The built-in entries are seeded on first lookup: the six CloudSuite-style
workloads populate :data:`workloads` via decorators in
:mod:`repro.config.presets`, and the built-in fabric plugins populate
:data:`topologies` via decorators in the :mod:`repro.fabrics` modules.

Import-order note: modules in ``repro.scenarios`` never import other
``repro`` subpackages at module level (``repro.config.presets`` and the
``repro.fabrics`` modules import the decorators from here at *their*
module level, so anything else would cycle).  Lookups call
:func:`ensure_seeded`, which imports both on first use.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class RegistrationError(ValueError):
    """Raised on conflicting registrations (duplicate names)."""


class Registry:
    """A mapping from names to zero-config factories.

    Names are looked up exactly as registered; unknown names raise
    :class:`KeyError` with the list of available entries.  Registering a
    name twice raises :class:`RegistrationError` unless ``replace=True``
    is passed (useful for tests and experimentation).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    # -- registration --------------------------------------------------- #
    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator."""

        def decorator(function: Callable) -> Callable:
            if not replace and name in self._factories:
                raise RegistrationError(
                    f"{self.kind} {name!r} is already registered; pass "
                    f"replace=True to override it"
                )
            self._factories[name] = function
            return function

        if factory is not None:
            return decorator(factory)
        return decorator

    def unregister(self, name: str) -> None:
        """Remove ``name`` (KeyError if absent); mainly for test cleanup."""
        del self._factories[name]

    # -- lookup --------------------------------------------------------- #
    def get(self, name: str) -> Callable:
        """Return the factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._factories)}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Look up ``name`` and call its factory."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


#: Workload presets: name -> ``() -> WorkloadConfig``.
workloads = Registry("workload")
#: Fabric plugins: name -> object implementing
#: :class:`repro.fabrics.base.FabricPlugin` (bare system factories are
#: wrapped in an adapter on registration).
topologies = Registry("topology")


def register_workload(name: str, factory: Optional[Callable] = None, **kwargs):
    """Register a ``() -> WorkloadConfig`` factory under ``name``."""
    return workloads.register(name, factory, **kwargs)


def register_topology(name: str, plugin=None, **kwargs):
    """Register a fabric under ``name``; usable as a decorator.

    ``plugin`` may be a :class:`~repro.fabrics.base.FabricPlugin` instance,
    a plugin class (instantiated here), or — for backwards compatibility —
    a bare ``**kwargs -> SystemConfig`` factory, which is wrapped in an
    adapter that supports :func:`build_system` but cannot build chips.
    The decorated object is returned unchanged, so stacking the decorator
    on a class or function keeps it usable directly.
    """

    def decorator(obj):
        from repro.fabrics.base import coerce_fabric_plugin

        topologies.register(name, coerce_fabric_plugin(name, obj), **kwargs)
        return obj

    if plugin is not None:
        return decorator(plugin)
    return decorator


_seeded = False


def ensure_seeded() -> None:
    """Load the built-in presets into the registries (idempotent).

    The flag flips only after the imports succeed, so a failed seeding
    import is retried (and re-raised) on the next lookup instead of
    surfacing as a misleading empty registry.
    """
    global _seeded
    if _seeded:
        return
    # The decorators on the preset factories and the built-in fabric plugin
    # modules run at import time.
    import repro.config.presets  # noqa: F401
    import repro.fabrics  # noqa: F401

    _seeded = True


def workload(name: str):
    """Build the :class:`~repro.config.workload.WorkloadConfig` named ``name``."""
    ensure_seeded()
    return workloads.create(name)


def build_system(name: str, **kwargs):
    """Build the (workload-less) :class:`SystemConfig` for fabric ``name``."""
    ensure_seeded()
    return topologies.get(name).build_system(**kwargs)


def fabric_for(config_or_topology) -> "FabricPlugin":  # noqa: F821 — lazy import
    """The fabric plugin owning a config (or bare topology identifier).

    Dispatch is keyed by :func:`repro.config.noc.topology_key` — the enum
    value for built-ins, the registered name for plugin fabrics.  Unknown
    keys raise :class:`KeyError` listing the registered fabrics.
    """
    ensure_seeded()
    from repro.config.noc import topology_key

    topology = getattr(
        getattr(config_or_topology, "noc", config_or_topology),
        "topology",
        config_or_topology,
    )
    return topologies.get(topology_key(topology))


def workload_names() -> List[str]:
    """All registered workload names (built-ins first)."""
    ensure_seeded()
    return workloads.names()


def topology_names() -> List[str]:
    """All registered topology names (built-ins first)."""
    ensure_seeded()
    return topologies.names()
