"""Execute a :class:`SweepSpec` through the experiment engine.

Two entry points:

* :func:`run_sweep` — blocking; returns a :class:`ResultSet` whose records
  follow the spec's expansion order (dedup, caching and ``REPRO_JOBS``
  fan-out all inherited from :class:`~repro.experiments.engine.SweepExecutor`).
* :func:`iter_results` — a generator yielding each :class:`ResultRecord`
  as its simulation finishes (cached points first, then in completion
  order), so figure scripts and dashboards can render incrementally
  instead of waiting on the whole-batch barrier.  It yields exactly the
  records the blocking call would return, just in a different order.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.scenarios.results import ResultRecord, ResultSet, record_for
from repro.scenarios.spec import SweepSpec


def _executor(jobs, executor):
    from repro.experiments.engine import SweepExecutor

    if executor is not None and jobs is not None:
        raise ValueError("pass either jobs or an explicit executor, not both")
    return executor if executor is not None else SweepExecutor(jobs=jobs)


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    executor=None,
    keep_results: bool = True,
) -> ResultSet:
    """Run every point of ``spec`` and return its :class:`ResultSet`.

    ``keep_results=False`` drops the full :class:`SimulationResults` from
    each record (scalar metrics only), which keeps large result sets small.
    """
    executor = _executor(jobs, executor)
    sweep_points = spec.expand()
    results = executor.run([sp.point for sp in sweep_points])
    return ResultSet(
        [
            record_for(sp, result, keep_result=keep_results)
            for sp, result in zip(sweep_points, results)
        ],
        spec=spec,
    )


def iter_results(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    executor=None,
    keep_results: bool = True,
) -> Iterator[ResultRecord]:
    """Yield ``spec``'s records as the engine completes them.

    Cache hits arrive first (instantly); uncached points stream in as
    their worker processes finish.  The union of yielded records equals
    :func:`run_sweep`'s output for the same spec.
    """
    executor = _executor(jobs, executor)
    sweep_points = spec.expand()
    for index, result in executor.run_iter([sp.point for sp in sweep_points]):
        yield record_for(sweep_points[index], result, keep_result=keep_results)
