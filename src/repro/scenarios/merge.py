"""Merge one result-cache directory into another (sharded-sweep companion).

A sharded sweep (``spec.shard(i, n)``) leaves each machine with a private
``REPRO_CACHE_DIR`` holding its shard's results.  This tool folds those
directories together so the full spec can then be served entirely from
cache on one machine::

    python -m repro.scenarios.merge shard0-cache/ merged-cache/
    python -m repro.scenarios.merge shard1-cache/ merged-cache/

Entries are keyed by content hash, so a *collision* (same file name in
source and destination) means both sides already hold the result of the
identical simulation; collisions are skipped by default and only
overwritten with ``--overwrite``.  Non-result files (anything but
``<sha256>.json``) are ignored.

This tool operates on the legacy **JSON-directory** backend only.  On the
columnar store backend (``REPRO_STORE=columnar``, :mod:`repro.store`) the
same fold is ``python -m repro.store.migrate <shard-cache> <store>`` per
shard followed by a compact — and the lease-based farm
(``python -m repro.store.farm``) removes the need to shard by hand at all.
"""

from __future__ import annotations

import argparse
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

#: Cache entries are ``<64 hex chars>.json``; anything else is not a result.
_HASH_HEX_LENGTH = 64


@dataclass
class MergeStats:
    """What one :func:`merge_caches` call did."""

    copied: int = 0
    skipped_collisions: int = 0
    ignored_files: int = 0

    def summary(self) -> str:
        return (
            f"copied {self.copied}, skipped {self.skipped_collisions} "
            f"collision(s), ignored {self.ignored_files} non-result file(s)"
        )


def _is_result_file(path: Path) -> bool:
    stem = path.stem
    return (
        path.suffix == ".json"
        and len(stem) == _HASH_HEX_LENGTH
        and all(ch in "0123456789abcdef" for ch in stem)
    )


def merge_caches(source, dest, overwrite: bool = False) -> MergeStats:
    """Copy every result file of ``source`` into ``dest``.

    Key collisions (same hash present in both) are skipped unless
    ``overwrite`` is set; timestamps are preserved so the LRU size cap
    (``REPRO_CACHE_MAX_MB``) still sees the original recency.
    """
    source = Path(source)
    dest = Path(dest)
    if not source.is_dir():
        raise FileNotFoundError(f"source cache directory {source} does not exist")
    if dest.exists() and source.resolve() == dest.resolve():
        raise ValueError("source and destination are the same directory")
    dest.mkdir(parents=True, exist_ok=True)

    stats = MergeStats()
    for path in sorted(source.iterdir()):
        if not path.is_file() or not _is_result_file(path):
            stats.ignored_files += 1
            continue
        target = dest / path.name
        if target.exists() and not overwrite:
            stats.skipped_collisions += 1
            continue
        shutil.copy2(path, target)
        stats.copied += 1
    return stats


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.merge",
        description="Merge a shard's result cache into another cache directory.",
    )
    parser.add_argument("source", help="cache directory to read (e.g. a shard's)")
    parser.add_argument("dest", help="cache directory to merge into (created if missing)")
    parser.add_argument(
        "--overwrite",
        action="store_true",
        help="replace colliding entries instead of skipping them",
    )
    args = parser.parse_args(argv)
    try:
        stats = merge_caches(args.source, args.dest, overwrite=args.overwrite)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{args.source} -> {args.dest}: {stats.summary()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
