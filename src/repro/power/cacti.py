"""Cache area/power model (CACTI-6.5-style, Section 5.2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.technology import TechnologyConfig


@dataclass
class CacheAreaModel:
    """Area and (leakage-dominated) power of LLC storage.

    The paper reports 3.2 mm2 and roughly 500 mW per megabyte of LLC at
    32 nm; those constants live in :class:`TechnologyConfig` and this model
    simply scales them by capacity.
    """

    technology: TechnologyConfig = None

    def __post_init__(self) -> None:
        if self.technology is None:
            self.technology = TechnologyConfig()

    def area_mm2(self, capacity_bytes: int) -> float:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        megabytes = capacity_bytes / (1024 * 1024)
        return megabytes * self.technology.cache_area_mm2_per_mb

    def power_w(self, capacity_bytes: int) -> float:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        megabytes = capacity_bytes / (1024 * 1024)
        return megabytes * self.technology.cache_power_w_per_mb

    def chip_storage_area_mm2(self, llc_bytes: int, num_cores: int, l1_bytes_per_core: int) -> float:
        """Total on-die SRAM area: LLC plus all private L1s."""
        return self.area_mm2(llc_bytes) + num_cores * self.area_mm2(l1_bytes_per_core)
