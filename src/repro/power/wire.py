"""Link (wire + repeater) area, delay and energy model (Section 5.2).

Links are semi-global wires with power/delay-optimised repeaters: 125 ps/mm
latency and 50 fJ/bit/mm on random data, of which repeaters contribute 19 %.
Wires are routed over logic/SRAM and therefore contribute no area; only the
repeaters occupy silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.technology import TechnologyConfig

#: Repeater silicon area per bit and per millimetre of repeated wire, in um^2.
#: Calibrated so that the mesh / flattened-butterfly / NOC-Out link areas
#: land at the values reported in Figure 8.
REPEATER_AREA_UM2_PER_BIT_MM = 6.0


@dataclass
class WireModel:
    """Per-link physical model derived from the technology parameters."""

    technology: TechnologyConfig = None

    def __post_init__(self) -> None:
        if self.technology is None:
            self.technology = TechnologyConfig()

    # ------------------------------------------------------------------ #
    def latency_cycles(self, length_mm: float) -> int:
        """Pipeline-register-free repeated-wire latency, in clock cycles."""
        return self.technology.wire_cycles(length_mm)

    def repeater_area_mm2(self, length_mm: float, width_bits: int) -> float:
        """Silicon area of the repeaters of one ``width_bits``-wide link."""
        if length_mm < 0 or width_bits < 0:
            raise ValueError("length and width must be non-negative")
        return length_mm * width_bits * REPEATER_AREA_UM2_PER_BIT_MM * 1e-6

    def energy_joules(self, bits: float, length_mm: float) -> float:
        """Energy to move ``bits`` of random data across ``length_mm``."""
        return self.technology.link_energy_joules(bits, length_mm)

    def repeater_energy_joules(self, bits: float, length_mm: float) -> float:
        """The repeater share of the link energy (19 % per the paper)."""
        return self.energy_joules(bits, length_mm) * self.technology.repeater_energy_fraction
