"""NoC area model: Figure 8 (area breakdown) and Figure 9 (area budgeting)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import SystemConfig
from repro.noc.topology import TopologyDescriptor, describe_topology
from repro.power.orion import BufferAreaModel, CrossbarAreaModel
from repro.power.wire import WireModel


@dataclass
class AreaBreakdown:
    """NoC area split the way Figure 8 reports it."""

    links_mm2: float = 0.0
    buffers_mm2: float = 0.0
    crossbars_mm2: float = 0.0

    @property
    def total_mm2(self) -> float:
        return self.links_mm2 + self.buffers_mm2 + self.crossbars_mm2

    def as_dict(self) -> dict:
        return {
            "links_mm2": self.links_mm2,
            "buffers_mm2": self.buffers_mm2,
            "crossbars_mm2": self.crossbars_mm2,
            "total_mm2": self.total_mm2,
        }


class NocAreaModel:
    """Computes the silicon area of a network from its static descriptor."""

    def __init__(
        self,
        wire_model: WireModel = None,
        buffer_model: BufferAreaModel = None,
        crossbar_model: CrossbarAreaModel = None,
    ) -> None:
        self.wire_model = wire_model or WireModel()
        self.buffer_model = buffer_model or BufferAreaModel()
        self.crossbar_model = crossbar_model or CrossbarAreaModel()

    # ------------------------------------------------------------------ #
    def breakdown_from_descriptor(self, descriptor: TopologyDescriptor) -> AreaBreakdown:
        """Area breakdown of an explicit router/link inventory."""
        breakdown = AreaBreakdown()
        for router in descriptor.routers:
            breakdown.buffers_mm2 += router.count * self.buffer_model.area_mm2(
                router.buffer_bits_per_router, uses_sram=router.uses_sram_buffers
            )
            breakdown.crossbars_mm2 += router.count * self.crossbar_model.area_mm2(
                router.ports, router.flit_width_bits
            )
        for link in descriptor.links:
            breakdown.links_mm2 += link.count * self.wire_model.repeater_area_mm2(
                link.length_mm, link.width_bits
            )
        return breakdown

    def breakdown(self, config: SystemConfig) -> AreaBreakdown:
        """Area breakdown of the network configured in ``config``."""
        return self.breakdown_from_descriptor(describe_topology(config))

    def total_area_mm2(self, config: SystemConfig) -> float:
        return self.breakdown(config).total_mm2


def link_width_for_area_budget(
    config: SystemConfig,
    budget_mm2: float,
    min_width_bits: int = 8,
    max_width_bits: int = 512,
    area_model: NocAreaModel = None,
) -> int:
    """Widest link width whose NoC area fits within ``budget_mm2`` (Figure 9).

    The paper's area-normalised study shrinks the mesh and flattened
    butterfly link width until their NoC area matches NOC-Out's 2.5 mm2.
    Area decreases monotonically with link width, so a binary search over
    integer widths suffices.
    """
    if budget_mm2 <= 0:
        raise ValueError("budget must be positive")
    model = area_model or NocAreaModel()

    def area_at(width: int) -> float:
        return model.total_area_mm2(config.with_noc(config.noc.with_link_width(width)))

    if area_at(min_width_bits) > budget_mm2:
        return min_width_bits
    low, high = min_width_bits, max_width_bits
    while low < high:
        mid = (low + high + 1) // 2
        if area_at(mid) <= budget_mm2:
            low = mid
        else:
            high = mid - 1
    return low
