"""Router buffer / crossbar area and energy models (ORION-2.0-style).

The paper models flip-flop buffers for the mesh and NOC-Out (few buffers
per port) and SRAM buffers for the flattened butterfly (large buffer
configurations), and attributes crossbar area to the internal switch
fabric that grows with the port count.  The constants below reproduce the
absolute NoC areas reported in Figure 8 for the three organizations.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Buffer cell area in um^2 per bit.
FLIP_FLOP_AREA_UM2_PER_BIT = 2.4
SRAM_AREA_UM2_PER_BIT = 1.7

#: Crossbar area per wire crossing (port-bit x port-bit), in um^2.
CROSSBAR_AREA_UM2_PER_CROSSING = 0.05

#: Energy constants (picojoules) for activity-based power estimation.
BUFFER_ENERGY_PJ_PER_BIT_ACCESS = 0.00045
CROSSBAR_ENERGY_PJ_PER_BIT_PER_PORT = 0.00023
ARBITER_ENERGY_PJ_PER_FLIT = 0.02


@dataclass(frozen=True)
class BufferAreaModel:
    """Area of a router's input buffers."""

    flip_flop_area_um2_per_bit: float = FLIP_FLOP_AREA_UM2_PER_BIT
    sram_area_um2_per_bit: float = SRAM_AREA_UM2_PER_BIT

    def area_mm2(self, buffer_bits: float, uses_sram: bool = False) -> float:
        """Silicon area of ``buffer_bits`` of packet buffering."""
        if buffer_bits < 0:
            raise ValueError("buffer_bits must be non-negative")
        per_bit = self.sram_area_um2_per_bit if uses_sram else self.flip_flop_area_um2_per_bit
        return buffer_bits * per_bit * 1e-6


@dataclass(frozen=True)
class CrossbarAreaModel:
    """Area of a router's internal switch fabric."""

    area_um2_per_crossing: float = CROSSBAR_AREA_UM2_PER_CROSSING

    def area_mm2(self, ports: int, flit_width_bits: int) -> float:
        """Area of a ``ports x ports`` crossbar of ``flit_width_bits`` wires."""
        if ports < 0 or flit_width_bits < 0:
            raise ValueError("ports and width must be non-negative")
        crossings = (ports * flit_width_bits) ** 2
        return crossings * self.area_um2_per_crossing * 1e-6


@dataclass(frozen=True)
class RouterEnergyModel:
    """Activity-based energy of buffers, crossbars and arbiters."""

    buffer_pj_per_bit_access: float = BUFFER_ENERGY_PJ_PER_BIT_ACCESS
    crossbar_pj_per_bit_per_port: float = CROSSBAR_ENERGY_PJ_PER_BIT_PER_PORT
    arbiter_pj_per_flit: float = ARBITER_ENERGY_PJ_PER_FLIT

    def buffer_energy_joules(self, flit_accesses: float, flit_width_bits: int) -> float:
        """Energy of buffer writes + reads (two accesses per buffered flit)."""
        bits = 2.0 * flit_accesses * flit_width_bits
        return bits * self.buffer_pj_per_bit_access * 1e-12

    def crossbar_energy_joules(
        self, flit_port_traversals: float, flit_width_bits: int
    ) -> float:
        """Energy of switch traversals, weighted by the router radix."""
        bits = flit_port_traversals * flit_width_bits
        return bits * self.crossbar_pj_per_bit_per_port * 1e-12

    def arbiter_energy_joules(self, flits_switched: float) -> float:
        return flits_switched * self.arbiter_pj_per_flit * 1e-12
