"""Area and energy models for the on-chip network (Figures 8, 9 and §6.4).

The models are analytic, in the spirit of ORION 2.0 and CACTI 6.5 that the
paper uses, with constants calibrated against the paper's published
figures: a 5-port 3-VC mesh NoC around 3.5 mm², a 15-port flattened
butterfly around 23 mm², and NOC-Out around 2.5 mm² at 32 nm with 128-bit
links.
"""

from repro.power.wire import WireModel
from repro.power.orion import BufferAreaModel, CrossbarAreaModel, RouterEnergyModel
from repro.power.cacti import CacheAreaModel
from repro.power.area_model import AreaBreakdown, NocAreaModel, link_width_for_area_budget
from repro.power.energy_model import NocEnergyModel, NocPowerReport

__all__ = [
    "WireModel",
    "BufferAreaModel",
    "CrossbarAreaModel",
    "RouterEnergyModel",
    "CacheAreaModel",
    "AreaBreakdown",
    "NocAreaModel",
    "link_width_for_area_budget",
    "NocEnergyModel",
    "NocPowerReport",
]
