"""Activity-based NoC energy / power model (Section 6.4).

Power is computed from the switching activity recorded by the network
during a timed window: link energy is proportional to flit-millimetres
travelled, buffer energy to flit writes+reads, and crossbar energy to flit
traversals weighted by the router radix.  The paper reports 1.3-1.8 W NoC
power across the three organizations, dominated by the links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.technology import TechnologyConfig
from repro.power.orion import RouterEnergyModel
from repro.power.wire import WireModel


@dataclass
class NocPowerReport:
    """Energy and average power of the NoC over one measurement window."""

    cycles: int
    link_energy_j: float
    buffer_energy_j: float
    crossbar_energy_j: float
    arbiter_energy_j: float
    frequency_ghz: float

    @property
    def total_energy_j(self) -> float:
        return (
            self.link_energy_j
            + self.buffer_energy_j
            + self.crossbar_energy_j
            + self.arbiter_energy_j
        )

    @property
    def window_seconds(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9) if self.cycles else 0.0

    @property
    def total_power_w(self) -> float:
        seconds = self.window_seconds
        return self.total_energy_j / seconds if seconds else 0.0

    @property
    def link_power_w(self) -> float:
        seconds = self.window_seconds
        return self.link_energy_j / seconds if seconds else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_power_w": self.total_power_w,
            "link_power_w": self.link_power_w,
            "buffer_power_w": self.buffer_energy_j / self.window_seconds if self.cycles else 0.0,
            "crossbar_power_w": self.crossbar_energy_j / self.window_seconds if self.cycles else 0.0,
            "total_energy_j": self.total_energy_j,
        }


class NocEnergyModel:
    """Turns recorded network activity into energy and power figures."""

    def __init__(
        self,
        technology: TechnologyConfig = None,
        wire_model: WireModel = None,
        router_model: RouterEnergyModel = None,
    ) -> None:
        self.technology = technology or TechnologyConfig()
        self.wire_model = wire_model or WireModel(self.technology)
        self.router_model = router_model or RouterEnergyModel()

    def report(self, activity: Dict[str, float], cycles: int) -> NocPowerReport:
        """Energy/power report for one window of recorded ``activity``.

        ``activity`` is the dictionary produced by
        :meth:`repro.noc.network.Network.activity`.
        """
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        width = activity.get("flit_width_bits", 128.0)
        link_bit_mm = activity.get("link_flit_mm", 0.0) * width
        link_energy = self.wire_model.energy_joules(link_bit_mm, 1.0)
        buffer_energy = self.router_model.buffer_energy_joules(
            activity.get("buffer_flit_writes", 0.0), int(width)
        )
        crossbar_energy = self.router_model.crossbar_energy_joules(
            activity.get("crossbar_flit_ports", 0.0), int(width)
        )
        arbiter_energy = self.router_model.arbiter_energy_joules(
            activity.get("flits_switched", 0.0)
        )
        return NocPowerReport(
            cycles=cycles,
            link_energy_j=link_energy,
            buffer_energy_j=buffer_energy,
            crossbar_energy_j=crossbar_energy,
            arbiter_energy_j=arbiter_energy,
            frequency_ghz=self.technology.frequency_ghz,
        )
