"""Open-loop tenant traffic: arrival-modulated injection over the chip NoC.

Two generators, both layered on the Bernoulli machinery of
:class:`repro.workloads.traffic._TrafficGenerator`:

* :class:`OpenLoopTrafficGenerator` — network-only (no cores/caches),
  for NoC characterisation under time-varying load; it simply swaps the
  constant injection rate for an :class:`~repro.tenancy.arrivals
  .ArrivalProcess` via the ``_rate_this_cycle`` hook.
* :class:`TenantTraffic` — the per-tenant overlay inside a full
  :class:`~repro.chip.chip.Chip`.  It injects request-class *probe*
  messages from the tenant's cores toward the LLC (per the tenant's
  traffic matrix); the receiving tile echoes a data-class response back,
  and the round-trip time lands in a reservoir histogram.  Probes share
  links, routers and virtual networks with the coherence traffic — the
  interference is fabric-borne, which is exactly what the co-location
  figures measure.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.noc.message import (
    Message,
    MessageClass,
    control_message_bits,
    data_message_bits,
)
from repro.noc.network import Network
from repro.sim.kernel import Simulator
from repro.sim.stats import DEFAULT_RESERVOIR
from repro.tenancy.arrivals import ArrivalProcess
from repro.workloads.traffic import _TrafficGenerator


class TenantProbe:
    """Payload of an open-loop probe message.

    Tiles recognise the type and hand the message straight back to the
    owning generator's :meth:`TenantTraffic.on_probe` — the probe rides
    the fabric like any coherence message but never touches cache state.
    """

    __slots__ = ("tenant", "created_cycle", "sink")

    def __init__(
        self, tenant: str, created_cycle: int, sink: Callable[[Message], None]
    ) -> None:
        self.tenant = tenant
        self.created_cycle = created_cycle
        self.sink = sink

    def __repr__(self) -> str:
        return f"TenantProbe({self.tenant!r}, created={self.created_cycle})"


class OpenLoopTrafficGenerator(_TrafficGenerator):
    """Network-only generator whose rate follows an arrival process.

    The arrival process is evaluated once per cycle (cycles counted from
    :meth:`start`) through the ``_rate_this_cycle`` hook; everything else
    — per-source Bernoulli draws, destination picking, request/response
    mix — is the parent's unchanged machinery.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sources: Sequence[int],
        arrival: ArrivalProcess,
        pick_destination: Callable[[int, random.Random], int],
        request_fraction: float = 0.5,
        seed: int = 0,
        name: str = "open_loop_traffic",
    ) -> None:
        super().__init__(
            sim,
            name,
            network,
            sources,
            injection_rate=0.0,
            pick_destination=pick_destination,
            request_fraction=request_fraction,
            seed=seed,
        )
        self.arrival = arrival
        self._start_cycle = 0

    def start(self) -> None:
        self._start_cycle = self.sim.cycle
        super().start()

    def _rate_this_cycle(self) -> float:
        return self.arrival.rate(self.sim.cycle - self._start_cycle, self.rng)


class TenantTraffic(_TrafficGenerator):
    """One tenant's open-loop probe overlay inside a full chip.

    Does *not* register endpoints (the chip's tiles own every node); the
    probes it injects are dispatched back to :meth:`on_probe` by
    :class:`repro.chip.tile.Tile`.  Request probes arriving at their
    destination are echoed as data-class responses to the originating
    core; a response arriving back closes the loop and records the
    round-trip latency.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tenant: str,
        sources: Sequence[int],
        arrival: ArrivalProcess,
        pick_destination: Callable[[int, random.Random], int],
        seed: int = 0,
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        super().__init__(
            sim,
            f"tenant_traffic[{tenant}]",
            network,
            sources,
            injection_rate=0.0,
            pick_destination=pick_destination,
            seed=seed,
            register_endpoints=False,
        )
        self.tenant = tenant
        self.arrival = arrival
        self._start_cycle = 0
        self._data_bits = data_message_bits()
        self.probes_sent = self.stats.counter("probes_sent")
        self.probes_echoed = self.stats.counter("probes_echoed")
        self.round_trip_latency = self.stats.histogram(
            "round_trip_latency", keep_samples=True, reservoir=reservoir
        )

    def start(self) -> None:
        self._start_cycle = self.sim.cycle
        super().start()

    def _rate_this_cycle(self) -> float:
        return self.arrival.rate(self.sim.cycle - self._start_cycle, self.rng)

    def _tick(self) -> None:
        if not self._running:
            return
        rng = self.rng
        rand = rng.random
        rate = self._rate_this_cycle()
        pick = self._pick_destination
        send = self.network.send
        sent = self.probes_sent
        control_bits = control_message_bits()
        cycle = self.sim.cycle
        for source in self.sources:
            if rand() >= rate:
                continue
            destination = pick(source, rng)
            if destination == source:
                continue
            probe = TenantProbe(self.tenant, cycle, self.on_probe)
            send(
                Message(
                    src=source,
                    dst=destination,
                    msg_class=MessageClass.REQUEST,
                    size_bits=control_bits,
                    payload=probe,
                )
            )
            sent.add()
            self.messages_generated.add()
        self.wake(1)

    def on_probe(self, message: Message) -> None:
        """Handle a delivered probe: echo requests, time responses."""
        probe = message.payload
        if message.msg_class is MessageClass.REQUEST:
            self.probes_echoed.add()
            self.network.send(
                Message(
                    src=message.dst,
                    dst=message.src,
                    msg_class=MessageClass.RESPONSE,
                    size_bits=self._data_bits,
                    payload=probe,
                )
            )
        else:
            self.round_trip_latency.add(self.sim.cycle - probe.created_cycle)
