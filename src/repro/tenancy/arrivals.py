"""Open-loop arrival processes: time-varying per-cycle injection rates.

Each process maps a cycle (relative to generator start) to the Bernoulli
injection probability the traffic machinery in
:mod:`repro.workloads.traffic` uses that cycle — the open-loop layer over
the existing per-cycle draw loop.  Processes are named factories in a
registry (the fabric-plugin pattern)::

    from repro.tenancy import register_arrival

    @register_arrival("my_process")
    class MyProcess(ArrivalProcess):
        def __init__(self, base_rate): ...
        def rate(self, cycle, rng): ...

Every stochastic process draws exclusively from the ``rng`` handed in by
its generator, so traces are fully determined by the generator seed —
identical across simulation kernels and process restarts.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.scenarios.registry import Registry

arrivals = Registry("arrival process")


def register_arrival(name: str, factory=None, **kwargs):
    """Register a ``(base_rate) -> ArrivalProcess`` factory."""
    return arrivals.register(name, factory, **kwargs)


def arrival_names() -> List[str]:
    """Registered arrival-process names, in registration order."""
    return list(arrivals)


def make_arrival(name: str, base_rate: float) -> "ArrivalProcess":
    """Build the registered arrival process ``name`` at ``base_rate``."""
    if not 0.0 <= base_rate <= 1.0:
        raise ValueError(
            f"arrival process {name!r}: base rate must be within [0, 1], got {base_rate}"
        )
    return arrivals.create(name, base_rate)


class ArrivalProcess:
    """Interface: per-cycle injection probability for an open-loop tenant."""

    def rate(self, cycle: int, rng: random.Random) -> float:
        """Injection probability for ``cycle`` (cycles since start).

        Stochastic processes must draw only from ``rng``; deterministic
        ones must not touch it at all (the draw sequence is part of the
        deterministic model contract).
        """
        raise NotImplementedError


@register_arrival("poisson")
class PoissonArrival(ArrivalProcess):
    """Constant rate: per-cycle Bernoulli trials, i.e. binomial arrivals
    approximating a Poisson process at low rates."""

    def __init__(self, base_rate: float) -> None:
        self.base_rate = base_rate

    def rate(self, cycle: int, rng: random.Random) -> float:
        return self.base_rate


@register_arrival("bursty")
class BurstyArrival(ArrivalProcess):
    """Two-state Markov-modulated on/off process, mean-preserving.

    The process burns at ``burst_factor`` × ``base_rate`` while ON and at
    a compensating low rate while OFF, chosen so the long-run mean equals
    ``base_rate`` exactly (same offered load as ``poisson``, different
    temporal shape).  State transitions draw one RNG sample per cycle.
    """

    def __init__(
        self,
        base_rate: float,
        burst_factor: float = 4.0,
        p_enter: float = 0.02,
        p_exit: float = 0.08,
    ) -> None:
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
        if not 0.0 < p_enter < 1.0 or not 0.0 < p_exit < 1.0:
            raise ValueError("p_enter/p_exit must be within (0, 1)")
        duty = p_enter / (p_enter + p_exit)  # long-run ON fraction
        off_factor = max(0.0, (1.0 - duty * burst_factor) / (1.0 - duty))
        self.base_rate = base_rate
        self.on_rate = min(1.0, base_rate * burst_factor)
        self.off_rate = min(1.0, base_rate * off_factor)
        self.p_enter = p_enter
        self.p_exit = p_exit
        self._on = False

    def rate(self, cycle: int, rng: random.Random) -> float:
        if self._on:
            if rng.random() < self.p_exit:
                self._on = False
        else:
            if rng.random() < self.p_enter:
                self._on = True
        return self.on_rate if self._on else self.off_rate


@register_arrival("diurnal")
class DiurnalArrival(ArrivalProcess):
    """Deterministic diurnal ramp: a sinusoid over ``period`` cycles.

    Rate swings between ``base_rate * (1 ± amplitude)``, clamped to
    [0, 1]; no RNG draws, so it never perturbs the Bernoulli sequence.
    """

    def __init__(
        self, base_rate: float, period: int = 4000, amplitude: float = 0.8
    ) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be within [0, 1], got {amplitude}")
        self.base_rate = base_rate
        self.period = period
        self.amplitude = amplitude

    def rate(self, cycle: int, rng: random.Random) -> float:
        swing = 1.0 + self.amplitude * math.sin(2.0 * math.pi * cycle / self.period)
        return min(1.0, max(0.0, self.base_rate * swing))
