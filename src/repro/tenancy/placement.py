"""WorkloadMap: ordered core-range → tenant placement for one chip.

A :class:`WorkloadMap` pins different workloads to different core groups
of a single chip — the rack-level co-location scenario the paper's
homogeneous sweeps cannot express (ROADMAP item 2).  It mirrors the
fabric-plugin pattern: placements are named factories in a registry, so

    from repro.tenancy import register_placement

    @register_placement("my_layout")
    def my_layout(num_cores, tenants):
        return WorkloadMap("my_layout", entries, tenants)

immediately makes ``"my_layout"`` usable as a ``placement`` sweep
coordinate.  Maps are frozen, validated, JSON round-trippable (the
``__kind__`` tag lets the scenario layer revive them) and content-hashed,
so they are sound cache-key material.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.scenarios.registry import Registry

#: Address-space stride between tenants (1 TiB).  Larger than any layout
#: span a single workload stream produces, so co-located tenants never
#: alias each other's instruction/private/shared regions into accidental
#: coherence sharing.
TENANT_ADDRESS_STRIDE = 0x100_0000_0000


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a workload preset plus its open-loop traffic shape.

    ``rate`` is the per-core, per-cycle probe-injection probability of the
    tenant's open-loop overlay (0.0 disables the overlay; the tenant then
    only runs its closed-loop coherence traffic).  ``arrival`` and
    ``matrix`` name entries in :mod:`repro.tenancy.arrivals` and
    :mod:`repro.tenancy.matrices`.
    """

    workload: str
    arrival: str = "poisson"
    rate: float = 0.0
    matrix: str = "uniform"
    label: str = ""

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("TenantSpec requires a workload name")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"tenant {self.workload!r}: rate must be within [0, 1], got {self.rate}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TenantSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def _as_entry(value: Sequence[int]) -> Tuple[int, int, int]:
    entry = tuple(int(v) for v in value)
    if len(entry) != 3:
        raise ValueError(f"workload-map entry must be (start, stop, tenant), got {value!r}")
    return entry


@dataclass(frozen=True)
class WorkloadMap:
    """Frozen, ordered assignment of core ranges to tenants.

    ``entries`` is a tuple of ``(start, stop, tenant_index)`` half-open
    core ranges, sorted by ``start`` and non-overlapping; cores not
    covered by any entry stay idle.  Validation against a concrete chip's
    core count happens in :meth:`validate_for` (called by
    ``SystemConfig.__post_init__``), so a map can be built once and swept
    across chip sizes that fit it.
    """

    placement: str
    entries: Tuple[Tuple[int, int, int], ...]
    tenants: Tuple[TenantSpec, ...]

    #: Marker the scenario layer uses to tell a map apart from the
    #: Mapping axis values that mean "zipped coordinates".
    is_workload_map = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(_as_entry(e) for e in self.entries))
        object.__setattr__(
            self,
            "tenants",
            tuple(
                t if isinstance(t, TenantSpec) else TenantSpec.from_dict(t)
                for t in self.tenants
            ),
        )
        if not self.placement:
            raise ValueError("WorkloadMap requires a placement name")
        if not self.tenants:
            raise ValueError("WorkloadMap requires at least one tenant")
        if not self.entries:
            raise ValueError("WorkloadMap requires at least one core range")
        used = set()
        previous_stop = 0
        previous_start = -1
        for start, stop, tenant in self.entries:
            if start < 0 or stop <= start:
                raise ValueError(
                    f"invalid core range [{start}, {stop}): ranges are "
                    f"half-open and non-empty"
                )
            if start < previous_start:
                raise ValueError(
                    f"core ranges must be sorted by start; [{start}, {stop}) "
                    f"follows a range starting at {previous_start}"
                )
            if start < previous_stop:
                raise ValueError(
                    f"core range [{start}, {stop}) overlaps the previous "
                    f"range ending at {previous_stop}"
                )
            if not 0 <= tenant < len(self.tenants):
                raise ValueError(
                    f"core range [{start}, {stop}) references tenant "
                    f"{tenant}, but only {len(self.tenants)} tenant(s) exist"
                )
            used.add(tenant)
            previous_start, previous_stop = start, stop
        missing = sorted(set(range(len(self.tenants))) - used)
        if missing:
            names = [self.tenants[i].workload for i in missing]
            raise ValueError(
                f"tenant(s) {names} are declared but own no core range; "
                f"drop them or assign them cores"
            )

    # -- geometry ------------------------------------------------------- #
    @property
    def num_cores_required(self) -> int:
        """Smallest chip core count this map fits on."""
        return max(stop for _start, stop, _tenant in self.entries)

    def validate_for(self, num_cores: int) -> None:
        """Raise ``ValueError`` unless the map fits a ``num_cores`` chip."""
        if self.num_cores_required > num_cores:
            raise ValueError(
                f"workload map {self.placement!r} needs "
                f"{self.num_cores_required} cores but the chip has {num_cores}"
            )

    def tenant_cores(self, index: int) -> List[int]:
        """Core ids owned by tenant ``index``, ascending."""
        if not 0 <= index < len(self.tenants):
            raise IndexError(f"tenant index {index} out of range")
        return [
            core
            for start, stop, tenant in self.entries
            if tenant == index
            for core in range(start, stop)
        ]

    def core_tenant(self, core_id: int) -> Optional[int]:
        """Tenant index owning ``core_id``, or ``None`` when unmapped."""
        for start, stop, tenant in self.entries:
            if start <= core_id < stop:
                return tenant
        return None

    def tenant_labels(self) -> List[str]:
        """A unique display label per tenant (workload name, ``#i`` on dups)."""
        labels: List[str] = []
        for index, tenant in enumerate(self.tenants):
            label = tenant.label or tenant.workload
            if label in labels:
                label = f"{label}#{index}"
            labels.append(label)
        return labels

    def describe(self) -> str:
        """Short human label, e.g. ``split_half[Data Serving+MapReduce-C]``."""
        return f"{self.placement}[{'+'.join(self.tenant_labels())}]"

    # -- serialization --------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict; the ``__kind__`` tag drives revival."""
        return {
            "__kind__": "workload_map",
            "placement": self.placement,
            "entries": [list(entry) for entry in self.entries],
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadMap":
        kind = data.get("__kind__", "workload_map")
        if kind != "workload_map":
            raise ValueError(f"not a workload map payload: __kind__={kind!r}")
        return cls(
            placement=str(data["placement"]),
            entries=tuple(_as_entry(e) for e in data["entries"]),
            tenants=tuple(TenantSpec.from_dict(t) for t in data["tenants"]),
        )

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON form."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def is_workload_map_dict(value: object) -> bool:
    """True for a Mapping carrying the ``__kind__`` workload-map tag."""
    return isinstance(value, Mapping) and value.get("__kind__") == "workload_map"


# -- placement registry ---------------------------------------------------- #
placements = Registry("placement")


def register_placement(name: str, factory=None, **kwargs):
    """Register a ``(num_cores, tenants) -> WorkloadMap`` factory."""
    return placements.register(name, factory, **kwargs)


def placement_names() -> List[str]:
    """Registered placement names, in registration order."""
    return list(placements)


def build_placement(
    name: str,
    num_cores: int,
    tenants: Sequence[Union[str, TenantSpec, Mapping[str, object]]],
    arrival: str = "poisson",
    rate: float = 0.0,
    matrix: str = "uniform",
) -> WorkloadMap:
    """Build the registered placement ``name`` for a ``num_cores`` chip.

    ``tenants`` entries may be :class:`TenantSpec` objects or bare
    workload names; names get the shared ``arrival``/``rate``/``matrix``
    knobs applied (the common sweep case: one traffic shape, several
    co-located workloads).
    """
    specs = tuple(
        t
        if isinstance(t, TenantSpec)
        else TenantSpec.from_dict(t)
        if isinstance(t, Mapping)
        else TenantSpec(workload=str(t), arrival=arrival, rate=rate, matrix=matrix)
        for t in tenants
    )
    if not specs:
        raise ValueError(f"placement {name!r} needs at least one tenant")
    workload_map = placements.create(name, num_cores, specs)
    workload_map.validate_for(num_cores)
    return workload_map


@register_placement("homogeneous")
def _homogeneous(num_cores: int, tenants: Tuple[TenantSpec, ...]) -> WorkloadMap:
    """Every core runs the first tenant — the co-location baseline."""
    return WorkloadMap("homogeneous", ((0, num_cores, 0),), (tenants[0],))


@register_placement("split_half")
def _split_half(num_cores: int, tenants: Tuple[TenantSpec, ...]) -> WorkloadMap:
    """First tenant on the low half of the cores, second on the high half."""
    if len(tenants) < 2:
        raise ValueError("split_half placement needs two tenants")
    if num_cores < 2:
        raise ValueError("split_half placement needs at least two cores")
    half = num_cores // 2
    return WorkloadMap(
        "split_half",
        ((0, half, 0), (half, num_cores, 1)),
        (tenants[0], tenants[1]),
    )


@register_placement("checkerboard")
def _checkerboard(num_cores: int, tenants: Tuple[TenantSpec, ...]) -> WorkloadMap:
    """Two tenants interleaved core-by-core (maximal sharing of the fabric)."""
    if len(tenants) < 2:
        raise ValueError("checkerboard placement needs two tenants")
    if num_cores < 2:
        raise ValueError("checkerboard placement needs at least two cores")
    entries = tuple((core, core + 1, core % 2) for core in range(num_cores))
    return WorkloadMap("checkerboard", entries, (tenants[0], tenants[1]))
