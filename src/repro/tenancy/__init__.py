"""Tenancy layer: multi-tenant placement, open-loop arrivals, matrices.

The subsystem behind co-location experiments: a frozen
:class:`WorkloadMap` pins workloads to core groups (placements are
registry plugins, like fabrics), arrival processes shape per-cycle
injection rates over time, and traffic matrices pick destinations per
tenant.  ``experiments/colocation.py`` sweeps all three.
"""

from repro.tenancy.arrivals import (
    ArrivalProcess,
    arrival_names,
    make_arrival,
    register_arrival,
)
from repro.tenancy.matrices import (
    MatrixContext,
    make_matrix,
    matrix_names,
    register_matrix,
)
from repro.tenancy.placement import (
    TENANT_ADDRESS_STRIDE,
    TenantSpec,
    WorkloadMap,
    build_placement,
    is_workload_map_dict,
    placement_names,
    register_placement,
)

__all__ = [
    "ArrivalProcess",
    "MatrixContext",
    "TENANT_ADDRESS_STRIDE",
    "TenantSpec",
    "WorkloadMap",
    "arrival_names",
    "build_placement",
    "is_workload_map_dict",
    "make_arrival",
    "make_matrix",
    "matrix_names",
    "placement_names",
    "register_arrival",
    "register_matrix",
    "register_placement",
]
