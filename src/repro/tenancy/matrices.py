"""Traffic matrices: per-tenant destination distributions.

A matrix factory turns a :class:`MatrixContext` (the tenant's slot among
the chip's LLC destinations) into a ``pick(source, rng) -> destination``
callable — exactly the ``pick_destination`` shape the traffic machinery
in :mod:`repro.workloads.traffic` already consumes.  Matrices are named
factories in a registry, mirroring the placement and arrival registries::

    from repro.tenancy import register_matrix

    @register_matrix("my_matrix")
    def my_matrix(context):
        def pick(source, rng): ...
        return pick
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.scenarios.registry import Registry

#: ``pick(source_node, rng) -> destination_node``
DestinationPicker = Callable[[int, random.Random], int]

matrices = Registry("traffic matrix")


def register_matrix(name: str, factory=None, **kwargs):
    """Register a ``(MatrixContext) -> picker`` factory."""
    return matrices.register(name, factory, **kwargs)


def matrix_names() -> List[str]:
    """Registered traffic-matrix names, in registration order."""
    return list(matrices)


@dataclass(frozen=True)
class MatrixContext:
    """What a matrix factory needs to know about its tenant's slot."""

    destinations: Tuple[int, ...]
    tenant_index: int = 0
    num_tenants: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "destinations", tuple(self.destinations))
        if not self.destinations:
            raise ValueError("traffic matrix needs at least one destination")
        if self.num_tenants < 1 or not 0 <= self.tenant_index < self.num_tenants:
            raise ValueError(
                f"invalid tenant slot {self.tenant_index}/{self.num_tenants}"
            )


def make_matrix(name: str, context: MatrixContext) -> DestinationPicker:
    """Build the registered traffic matrix ``name`` for ``context``."""
    return matrices.create(name, context)


@register_matrix("uniform")
def _uniform(context: MatrixContext) -> DestinationPicker:
    """Uniform over every destination — the classic baseline matrix."""
    destinations = list(context.destinations)

    def pick(_source: int, rng: random.Random) -> int:
        return rng.choice(destinations)

    return pick


@register_matrix("hotspot")
def _hotspot(context: MatrixContext) -> DestinationPicker:
    """Half the traffic converges on one hot destination.

    The hot node rotates with the tenant index, so co-located tenants
    hammer *different* hotspots and the interference is fabric-borne
    rather than a shared endpoint artifact.
    """
    destinations = list(context.destinations)
    hot = destinations[context.tenant_index % len(destinations)]

    def pick(_source: int, rng: random.Random) -> int:
        if rng.random() < 0.5:
            return hot
        return rng.choice(destinations)

    return pick


@register_matrix("partitioned")
def _partitioned(context: MatrixContext) -> DestinationPicker:
    """Each tenant keeps to its own stripe of the destinations.

    Tenant ``i`` of ``n`` uses destinations ``i, i+n, i+2n, ...`` — the
    disjoint-LLC-slice regime where tenants share only links and routers,
    never endpoints.  A stripe that comes up empty (more tenants than
    destinations) falls back to the full set rather than deadlocking.
    """
    destinations = list(context.destinations)
    stripe = [
        node
        for position, node in enumerate(destinations)
        if position % context.num_tenants == context.tenant_index
    ] or destinations

    def pick(_source: int, rng: random.Random) -> int:
        return rng.choice(stripe)

    return pick
