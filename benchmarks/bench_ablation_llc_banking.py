"""Ablation (Section 4.3): LLC banking degree in the NOC-Out organization.

The paper chooses 16 banks (two per LLC tile) after observing that four
cores per bank performs within ~2 % of one core per bank.
"""

from repro.experiments import ablations

from bench_common import emit, run_once


def test_llc_banking_ablation(benchmark, run_settings):
    throughput = run_once(
        benchmark,
        ablations.run_llc_banking_ablation,
        settings=run_settings.scaled(0.7),
    )
    emit(
        "Ablation: LLC banks per NOC-Out tile (Data Serving)",
        ablations.render_ablation(
            throughput, "NOC-Out LLC banking", "Banks per LLC tile"
        ).render(),
    )

    most_banked = throughput[max(throughput)]
    paper_choice = throughput[2]
    # Two banks per tile stays within a few percent of the most banked design.
    assert paper_choice >= 0.9 * most_banked
    # Banking never hurts by construction of bank-level parallelism.
    assert throughput[max(throughput)] >= throughput[min(throughput)] * 0.95
