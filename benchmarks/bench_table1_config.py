"""Table 1: evaluation parameters."""

from repro.experiments import table1

from bench_common import emit, run_once


def test_table1_configuration(benchmark):
    parameters = run_once(benchmark, table1.run_table1)
    emit("Table 1: evaluation parameters", table1.render_table1(parameters).render())
    assert "64 cores" in parameters["CMP features"]
    assert "8MB" in parameters["CMP features"]
