"""Ablation (Section 7.1): concentration and express links at 128 cores."""

from repro.experiments import ablations

from bench_common import emit, run_once


def test_scaling_extensions_ablation(benchmark, run_settings):
    throughput = run_once(
        benchmark,
        ablations.run_scaling_ablation,
        settings=run_settings.scaled(0.6),
    )
    emit(
        "Ablation: 128-core NOC-Out scaling extensions (MapReduce-W)",
        ablations.render_ablation(
            throughput, "NOC-Out scaling extensions", "Tree variant"
        ).render(),
    )

    baseline = throughput["tall trees"]
    # The extensions keep a 128-core chip functional and competitive: neither
    # concentration nor express links should collapse performance.
    for label, value in throughput.items():
        assert value >= 0.8 * baseline, label
    # Express links shorten the tall trees and should not hurt.
    assert throughput["express links"] >= 0.95 * baseline
