"""Fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper and prints the
corresponding rows.  Simulation windows can be scaled with the
``REPRO_EXPERIMENT_SCALE`` environment variable (e.g. ``0.5`` for a quick
pass, ``3`` for smoother numbers); parallelism and result caching are
controlled by ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_CACHE`` (see
``docs/experiments.md``).

Only pytest fixtures live here; plain helpers (``emit``, ``run_once``) are
in :mod:`bench_common` so benchmark scripts never import from ``conftest``.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import RunSettings


@pytest.fixture(scope="session")
def run_settings() -> RunSettings:
    """Measurement windows used by the simulation-based benchmarks."""
    return RunSettings.from_env()
