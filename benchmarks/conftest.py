"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper and prints the
corresponding rows.  Simulation windows can be scaled with the
``REPRO_EXPERIMENT_SCALE`` environment variable (e.g. ``0.5`` for a quick
pass, ``3`` for smoother numbers).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.harness import RunSettings


@pytest.fixture(scope="session")
def run_settings() -> RunSettings:
    """Measurement windows used by the simulation-based benchmarks."""
    return RunSettings.from_env()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are full chip simulations (seconds each), so repeating
    them for statistical timing would be wasteful; one round gives the
    wall-clock cost and the experiment's own output is deterministic.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: All rendered tables are also appended here so results survive pytest's
#: output capturing; the file is truncated at the start of each session.
RESULTS_FILE = Path(__file__).resolve().parent.parent / "benchmark_results.txt"
_results_initialised = False


def emit(title: str, text: str) -> None:
    """Print a rendered table and append it to ``benchmark_results.txt``."""
    global _results_initialised
    block = f"\n==== {title} ====\n{text}\n"
    print(block)
    mode = "a" if _results_initialised else "w"
    with open(RESULTS_FILE, mode) as handle:
        handle.write(block)
    _results_initialised = True
