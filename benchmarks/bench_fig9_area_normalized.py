"""Figure 9: performance under a fixed NoC area budget (NOC-Out's 2.5 mm2)."""

from repro.config.noc import Topology
from repro.experiments import fig9_area_normalized

from bench_common import emit, run_once


def test_figure9_area_normalized_performance(benchmark, run_settings):
    outcome = run_once(
        benchmark, fig9_area_normalized.run_figure9, settings=run_settings
    )
    emit(
        "Figure 9: performance under a fixed NoC area budget",
        fig9_area_normalized.render_figure9(outcome).render(),
    )

    widths = outcome["link_widths"]
    # The flattened butterfly must shed far more link width than the mesh to
    # fit in NOC-Out's area budget.
    assert widths["flattened_butterfly"] < widths["mesh"]

    gmean = outcome["normalised_performance"]["GMean"]
    nocout = gmean[Topology.NOC_OUT.value]
    fbfly = gmean[Topology.FLATTENED_BUTTERFLY.value]
    # Paper: NOC-Out beats the area-budgeted mesh by ~19 % and the
    # area-budgeted flattened butterfly by ~65 % (i.e. the butterfly falls
    # below the mesh once serialization bites).
    assert nocout > 1.05
    assert fbfly < nocout
    assert fbfly < 1.1
