"""Figure 4: percentage of LLC accesses that trigger a snoop message."""

from repro.experiments import fig4_snoops

from bench_common import emit, run_once


def test_figure4_snoop_rates(benchmark, run_settings):
    rates = run_once(benchmark, fig4_snoops.run_figure4, settings=run_settings)
    emit("Figure 4: snoop-triggering LLC accesses (%)", fig4_snoops.render_figure4(rates).render())

    # The paper's core observation: coherence activity is negligible, with
    # on the order of two snoop-triggering accesses per 100 LLC accesses.
    assert all(rate < 10.0 for rate in rates.values())
    assert 0.0 < rates["Mean"] < 5.0
