"""Importable helpers shared by the benchmark scripts.

These used to live in ``benchmarks/conftest.py``, but importing helpers
``from conftest`` is fragile: the bare name resolves to whichever collected
directory's ``conftest.py`` pytest put on ``sys.path`` first, and it once
shadowed ``tests/conftest.py`` badly enough to break collection of the main
suite.  A regular module with an unambiguous name has no such failure mode.

Each benchmark drives a figure module's ``run_*`` entry point, which since
the scenario-API redesign is a declarative ``SweepSpec`` executed by
``repro.scenarios.run_sweep``: repeated invocations are served from the
on-disk result cache and fresh points fan out over ``REPRO_JOBS`` worker
processes; see ``docs/experiments.md``.
"""

from __future__ import annotations

from pathlib import Path


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are full chip simulations (seconds each), so repeating
    them for statistical timing would be wasteful; one round gives the
    wall-clock cost and the experiment's own output is deterministic.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: All rendered tables are also appended here so results survive pytest's
#: output capturing; the file is truncated at the start of each session.
#: Lives under ``reports/`` (gitignored) with the other generated output —
#: never at the repo root, where it once ended up committed by accident.
RESULTS_FILE = Path(__file__).resolve().parent.parent / "reports" / "benchmark_results.txt"
_results_initialised = False


def emit(title: str, text: str) -> None:
    """Print a rendered table and append it to ``benchmark_results.txt``."""
    global _results_initialised
    block = f"\n==== {title} ====\n{text}\n"
    print(block)
    RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if _results_initialised else "w"
    with open(RESULTS_FILE, mode) as handle:
        handle.write(block)
    _results_initialised = True
