"""Tenancy overhead: a mapped chip vs. the homogeneous fast path.

The tenancy layer must be pay-as-you-go: a chip built *without* a
``WorkloadMap`` takes the exact pre-tenancy code path, and a mapped chip
adds only per-tenant stream construction, the probe overlay and the
per-tenant latency attribution.  This benchmark runs one short 64-core
mesh window each way and fails if the mapped run costs more than a small
multiple of the plain run — i.e. if per-message tenant attribution (a
dict lookup per delivery) or the overlay tick ever turns into a hot-path
regression.
"""

from __future__ import annotations

import time

from repro.chip.builder import build_chip
from repro.reporting.tables import ReportTable
from repro.scenarios import build_system, workload
from repro.tenancy import build_placement

from bench_common import emit

NUM_CORES = 64
WINDOWS = dict(warmup_references=600, detailed_warmup_cycles=400, measure_cycles=1500)


def _run_plain() -> float:
    config = build_system("mesh", num_cores=NUM_CORES).with_workload(
        workload("Data Serving")
    )
    start = time.perf_counter()
    build_chip(config).run_experiment(**WINDOWS)
    return time.perf_counter() - start


def _run_mapped() -> float:
    wmap = build_placement(
        "split_half",
        NUM_CORES,
        ["Data Serving", "MapReduce-C"],
        arrival="bursty",
        rate=0.02,
    )
    config = build_system("mesh", num_cores=NUM_CORES).with_workload_map(wmap)
    start = time.perf_counter()
    results = build_chip(config).run_experiment(**WINDOWS)
    assert results.per_tenant_latency  # the overlay actually measured tails
    return time.perf_counter() - start


def test_tenancy_overhead(benchmark):
    plain, mapped = benchmark.pedantic(
        lambda: (_run_plain(), _run_mapped()), rounds=1, iterations=1
    )

    table = ReportTable(
        ["Configuration", "wall (s)"],
        title=f"{NUM_CORES}-core mesh, short window",
    )
    table.add_row("homogeneous (no map)", plain)
    table.add_row("split_half + bursty overlay", mapped)
    emit("Tenancy overhead (mapped vs plain chip)", table.render())

    # The mapped run simulates comparable coherence traffic plus the probe
    # overlay; anything past 4x the plain run means tenant attribution or
    # the overlay tick went quadratic/hot.  Generous bound for CI noise.
    ratio = mapped / max(plain, 1e-3)
    assert ratio < 4, f"mapped chip run is {ratio:.1f}x the plain run"
