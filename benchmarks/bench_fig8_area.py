"""Figure 8: NoC area breakdown (links / buffers / crossbars)."""

from repro.experiments import fig8_area

from bench_common import emit, run_once


def test_figure8_noc_area_breakdown(benchmark):
    breakdowns = run_once(benchmark, fig8_area.run_figure8)
    emit("Figure 8: NoC area breakdown", fig8_area.render_figure8(breakdowns).render())

    mesh = breakdowns["mesh"].total_mm2
    fbfly = breakdowns["flattened_butterfly"].total_mm2
    nocout = breakdowns["noc_out"].total_mm2
    # The paper's headline area claims: NOC-Out smallest, mesh close behind,
    # flattened butterfly several times larger than both.
    assert nocout < mesh < fbfly
    assert fbfly / nocout > 6.0
    assert fbfly / mesh > 4.0
