"""Chip + network construction time at 64-2048 cores.

Large grids shift the cost centre from simulation cycles (event-driven
since PR 2) to *construction*: per-node interfaces, per-router ports and
the O(routers x nodes) routing tables all scale with the grid.  This
benchmark tracks that build path for the four scale-out fabrics — up to
the 1024/2048-core chiplet design points — so a quadratic regression
(e.g. a per-group position scan creeping back into tree construction)
shows up as a number, not an anecdote.

No simulation runs here — chips are built and discarded.
"""

from __future__ import annotations

import time

from repro.chip.builder import build_chip
from repro.reporting.tables import ReportTable
from repro.scenarios import build_system, workload

from bench_common import emit

#: Grid sizes tracked (the paper's 64 plus the scale-out sizes).
CORE_COUNTS = (64, 128, 256, 512, 1024, 2048)
#: Fabrics whose construction differs structurally.
FABRICS = ("mesh", "cmesh", "noc_out", "chiplet")


def _build_all(fabric: str, core_counts=CORE_COUNTS):
    """Build one chip per core count; returns ``{core count: seconds}``."""
    wall = {}
    base_workload = workload("MapReduce-W")
    for num_cores in core_counts:
        config = build_system(fabric, num_cores=num_cores).with_workload(base_workload)
        start = time.perf_counter()
        build_chip(config)
        wall[num_cores] = time.perf_counter() - start
    return wall


def test_chip_build_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {fabric: _build_all(fabric) for fabric in FABRICS},
        rounds=1,
        iterations=1,
    )

    table = ReportTable(
        ["Fabric"] + [f"{n} cores (s)" for n in CORE_COUNTS],
        title="Chip + network construction time",
    )
    for fabric, wall in results.items():
        table.add_row(fabric, *[wall[n] for n in CORE_COUNTS])
    emit("Chip construction time at 64-512 cores", table.render())

    largest = CORE_COUNTS[-1]
    for fabric, wall in results.items():
        # Construction must stay subquadratic: 32x the cores may cost more
        # than 32x the time (routing tables are O(routers x nodes)), but a
        # 2048-core build taking >1024x the 64-core build means something
        # quadratic-per-node crept in.  Generous floor guards noisy runners.
        ratio = wall[largest] / max(wall[64], 1e-3)
        assert ratio < (largest // 64) ** 2, (
            f"{fabric}: {largest}-core build is {ratio:.0f}x the 64-core build"
        )
