"""Section 6.4: NoC power analysis."""

from repro.config.noc import Topology
from repro.experiments import power_analysis

from bench_common import emit, run_once


def test_noc_power_analysis(benchmark, run_settings):
    reports = run_once(
        benchmark,
        power_analysis.run_power_analysis,
        settings=run_settings.scaled(0.7),
    )
    emit("Section 6.4: NoC power", power_analysis.render_power(reports).render())

    averages = power_analysis.average_power(reports)
    fbfly = averages[Topology.FLATTENED_BUTTERFLY.value]
    nocout = averages[Topology.NOC_OUT.value]
    # Paper: the NoC stays well under 2 W in every organization (cores alone
    # exceed 60 W), the links dominate the energy, and NOC-Out needs less
    # power than the richly connected flattened butterfly.  (Our mesh lands
    # below the paper's 1.8 W because its lower throughput injects fewer
    # flits per second - see EXPERIMENTS.md.)
    assert all(power < 4.0 for power in averages.values())
    assert nocout < fbfly
    # Links dominate the energy in every organization.
    for per_topology in reports.values():
        for report in per_topology.values():
            assert report.link_energy_j >= 0.4 * report.total_energy_j
