"""Figure 1: per-core performance vs. core count, ideal vs. mesh interconnect."""

from repro.experiments import fig1_scaling

from bench_common import emit, run_once


def test_figure1_core_count_scaling(benchmark, run_settings):
    curves = run_once(
        benchmark,
        fig1_scaling.run_figure1,
        settings=run_settings.scaled(0.6),
    )
    emit(
        "Figure 1: per-core performance vs. core count",
        fig1_scaling.render_figure1(curves).render(),
    )

    penalty = fig1_scaling.mesh_penalty(curves, core_count=64)
    print(f"Mesh penalty vs. ideal at 64 cores: {penalty:.1%} (paper: ~22%)")

    for workload, data in curves.items():
        # Per-core performance degrades as the chip grows...
        assert data["mesh"][64] < data["mesh"][1] * 1.05
        # ...and the mesh is never faster than the ideal fabric at scale.
        assert data["mesh"][64] <= data["ideal"][64] * 1.02
    assert penalty > 0.05
