"""Figure 7: system performance normalised to the mesh (six workloads + gmean)."""

from repro.config.noc import Topology
from repro.experiments import fig7_performance

from bench_common import emit, run_once


def test_figure7_system_performance(benchmark, run_settings):
    normalised = run_once(
        benchmark, fig7_performance.run_figure7, settings=run_settings
    )
    emit(
        "Figure 7: system performance normalised to mesh",
        fig7_performance.render_figure7(normalised).render(),
    )

    gmean = normalised["GMean"]
    fbfly = gmean[Topology.FLATTENED_BUTTERFLY.value]
    nocout = gmean[Topology.NOC_OUT.value]
    # Paper: the flattened butterfly improves on the mesh by ~17 % and
    # NOC-Out matches it.  Accept the qualitative shape with slack.
    assert 1.05 <= fbfly <= 1.40
    assert 1.05 <= nocout <= 1.45
    assert abs(nocout - fbfly) <= 0.15
    # Data Serving is the most latency-sensitive workload.
    fbfly_by_workload = {
        name: row[Topology.FLATTENED_BUTTERFLY.value]
        for name, row in normalised.items()
        if name != "GMean"
    }
    assert max(fbfly_by_workload, key=fbfly_by_workload.get) == "Data Serving"
