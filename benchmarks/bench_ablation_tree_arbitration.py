"""Ablation (Section 4.1): static-priority vs. round-robin tree arbitration."""

from repro.experiments import ablations

from bench_common import emit, run_once


def test_tree_arbitration_ablation(benchmark, run_settings):
    throughput = run_once(
        benchmark,
        ablations.run_tree_arbitration_ablation,
        settings=run_settings.scaled(0.7),
    )
    emit(
        "Ablation: reduction/dispersion tree arbitration (Data Serving)",
        ablations.render_ablation(
            throughput, "NOC-Out tree arbitration", "Arbitration policy"
        ).render(),
    )

    static = throughput["static_priority"]
    round_robin = throughput["round_robin"]
    # The paper argues static priority works well given the low MLP of
    # scale-out workloads; it should be within a few percent of round-robin.
    assert static >= 0.9 * round_robin
