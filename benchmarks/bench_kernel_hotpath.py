"""Kernel/router hot-path microbenchmark: events per second on fixed scenarios.

Unlike the figure benchmarks (which reproduce paper results through the
experiment engine), this file measures the simulator itself: how fast the
event kernel and the mesh routers chew through a fixed, deterministic
workload.  It is the regression guard for the event-driven wake-up
machinery — a change that silently reintroduces per-cycle polling shows up
here as a collapse in cycles/second and a blow-up in the event count.

Three scenarios bracket the design space:

* ``uniform_mesh``   — light uniform-random traffic on an 8x8 mesh; mostly
  idle routers, so it measures how close "idle costs nothing" gets.
* ``congested_mesh`` — heavy uniform traffic over narrow (64-bit) links on
  the same mesh; credit-blocked heads everywhere, so it measures the
  wake/credit protocol under sustained backpressure.
* ``chip_mesh``      — a 16-core chip (cores + caches + directory + NoC)
  running the synthetic test workload; the end-to-end mix.

Event counts are deterministic (asserted), wall-clock is taken as the best
of ``ROUNDS`` runs to damp scheduler noise, and each scenario must finish
under a deliberately generous ceiling so CI catches order-of-magnitude
regressions without flaking on slow runners.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import pytest

from repro.chip.builder import build_chip
from repro.config.noc import NocConfig, Topology
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.noc.mesh import MeshNetwork
from repro.noc.vector import TRANSPORT_ENV_VAR
from repro.sim.kernel import HeapSimulator, Simulator
from repro.sim.soa import HAVE_NUMPY
from repro.workloads.traffic import UniformRandomTrafficGenerator

from bench_common import emit

KB = 1024
MB = 1024 * KB

#: Wall-clock budget per scenario, in seconds.  Roughly 10-20x the time the
#: scenarios take on a 2024-vintage laptop core; trip this and either the
#: kernel hot path regressed badly or polling crept back in.
WALL_CLOCK_CEILING_S = 90.0
#: Timed repetitions per scenario (the work is deterministic; only the
#: wall-clock varies, so best-of is the right statistic).
ROUNDS = 3


@dataclass
class HotpathResult:
    name: str
    wall_s: float
    cycles: int
    events: int
    work_items: int  # packets delivered / instructions committed

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s

    @property
    def cycles_per_s(self) -> float:
        return self.cycles / self.wall_s


def _bench_workload() -> WorkloadConfig:
    return WorkloadConfig(
        name="HotpathWorkload",
        instruction_footprint_bytes=256 * KB,
        hot_instruction_fraction=0.5,
        dataset_bytes=8 * MB,
        data_reuse_fraction=0.9,
        shared_fraction=0.02,
        shared_region_bytes=16 * KB,
        write_fraction=0.3,
        loads_per_instruction=0.3,
        mean_block_instructions=12.0,
        jump_probability=0.25,
        issue_width=3,
        mlp=2,
        max_cores=64,
    )


def _run_traffic_mesh(name: str, injection_rate: float, link_width_bits: int,
                      cycles: int, kernel_cls=Simulator,
                      transport: str = None) -> HotpathResult:
    # transport=None leaves REPRO_TRANSPORT alone so the whole benchmark
    # can be driven under either transport from the environment (CI runs
    # both); the explicit comparison test pins each side.
    saved = os.environ.get(TRANSPORT_ENV_VAR)
    if transport is not None:
        os.environ[TRANSPORT_ENV_VAR] = transport
    try:
        best = None
        for _ in range(ROUNDS):
            noc = NocConfig(topology=Topology.MESH, link_width_bits=link_width_bits)
            config = SystemConfig(num_cores=64, noc=noc, seed=3)
            sim = kernel_cls(seed=3)
            coords = {i: (i % 8, i // 8) for i in range(64)}
            network = MeshNetwork(sim, config, coords)
            generator = UniformRandomTrafficGenerator(
                sim, network, list(coords), injection_rate, seed=5
            )
            generator.start()
            start = time.perf_counter()
            sim.run(cycles)
            wall = time.perf_counter() - start
            result = HotpathResult(
                name=name,
                wall_s=wall,
                cycles=cycles,
                events=sim.events_processed,
                work_items=int(network.messages_delivered.value),
            )
            if best is None:
                best = result
            else:
                # The simulation is deterministic; only the clock varies.
                assert result.events == best.events
                assert result.work_items == best.work_items
                if result.wall_s < best.wall_s:
                    best = result
        return best
    finally:
        if transport is not None:
            if saved is None:
                os.environ.pop(TRANSPORT_ENV_VAR, None)
            else:
                os.environ[TRANSPORT_ENV_VAR] = saved


def _run_chip_mesh(name: str, cycles: int) -> HotpathResult:
    best = None
    for _ in range(ROUNDS):
        noc = NocConfig(topology=Topology.MESH)
        config = SystemConfig(num_cores=16, noc=noc, seed=3).with_workload(
            _bench_workload()
        )
        chip = build_chip(config)
        chip.warmup(1000)
        chip.start_cores()
        start = time.perf_counter()
        chip.sim.run(cycles)
        wall = time.perf_counter() - start
        instructions = sum(
            int(node.core.instructions_committed.value)
            for node in chip.core_nodes.values()
        )
        result = HotpathResult(
            name=name,
            wall_s=wall,
            cycles=cycles,
            events=chip.sim.events_processed,
            work_items=instructions,
        )
        if best is None:
            best = result
        else:
            assert result.events == best.events
            assert result.work_items == best.work_items
            if result.wall_s < best.wall_s:
                best = result
    return best


def _render(results) -> str:
    header = (
        f"{'scenario':<16} {'wall s':>8} {'cycles':>9} {'events':>10} "
        f"{'events/s':>12} {'cycles/s':>10} {'work':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.name:<16} {r.wall_s:>8.3f} {r.cycles:>9} {r.events:>10} "
            f"{r.events_per_s:>12,.0f} {r.cycles_per_s:>10,.0f} {r.work_items:>8}"
        )
    return "\n".join(lines)


def test_kernel_hotpath_events_per_second():
    results = [
        _run_traffic_mesh("uniform_mesh", injection_rate=0.08,
                          link_width_bits=128, cycles=10_000),
        _run_traffic_mesh("congested_mesh", injection_rate=0.25,
                          link_width_bits=64, cycles=6_000),
        _run_chip_mesh("chip_mesh", cycles=3_000),
    ]
    emit("Kernel hot-path: events per second", _render(results))

    for r in results:
        # Forward progress sanity: the scenarios actually stress the NoC.
        assert r.work_items > 0
        assert r.events > 10_000
        # CI regression guard (generous: ~10-20x observed time).
        assert r.wall_s < WALL_CLOCK_CEILING_S, (
            f"{r.name}: {r.wall_s:.1f}s exceeds the {WALL_CLOCK_CEILING_S:.0f}s "
            "hot-path ceiling — did per-cycle polling creep back in?"
        )

    # The event-driven kernel's signature: an idle-ish mesh processes far
    # fewer events per simulated cycle than a saturated one.  Under the old
    # poll-every-cycle router loop both scenarios sat near the same
    # (events/cycle ~ routers+interfaces) floor, so this ratio is a direct
    # regression test for "blocked/idle components schedule no events".
    uniform, congested = results[0], results[1]
    assert uniform.events / uniform.cycles < congested.events / congested.cycles


def test_calendar_vs_heap_kernel_congested_mesh():
    """Calendar-queue vs reference heap kernel on the congested 8x8 mesh.

    Two gates in one measurement:

    * **Equivalence** — both kernels must process the exact same number of
      events and deliver the same packets.  They execute identical
      callbacks, so any count difference means event *order* diverged,
      which the ``MODEL_VERSION`` policy forbids shipping silently
      (``scripts/check_kernel_equivalence.py`` diffs the full statistics
      trees for the same scenario).
    * **No regression** — the calendar queue's whole point is dropping the
      per-event heap discipline, so it must never be meaningfully slower
      than the reference heap.  The floor is deliberately loose (CI
      runners are noisy); the measured speedup is emitted for tracking.
      On a quiet machine the calendar kernel wins by ~1.15x here and by
      ~1.4x on the lighter uniform mesh, where ring appends and the
      batch-drained buckets are a larger slice of the per-event cost.
    """
    if os.environ.get("REPRO_KERNEL", "").strip().lower() == "heap":
        pytest.skip("REPRO_KERNEL=heap would alias both sides to the heap kernel")
    heap = _run_traffic_mesh("heap", injection_rate=0.25,
                             link_width_bits=64, cycles=6_000,
                             kernel_cls=HeapSimulator)
    calendar = _run_traffic_mesh("calendar", injection_rate=0.25,
                                 link_width_bits=64, cycles=6_000,
                                 kernel_cls=Simulator)

    speedup = heap.wall_s / calendar.wall_s
    lines = _render([heap, calendar]).splitlines()
    lines.append(f"calendar speedup over heap kernel: {speedup:.2f}x")
    emit("Kernel comparison: calendar vs heap (congested 8x8 mesh)",
         "\n".join(lines))

    assert calendar.events == heap.events, (
        f"kernel divergence: calendar processed {calendar.events} events, "
        f"heap {heap.events} — event order differs, trace before shipping"
    )
    assert calendar.work_items == heap.work_items
    assert speedup > 0.9, (
        f"calendar queue slower than the reference heap "
        f"({calendar.wall_s:.2f}s vs {heap.wall_s:.2f}s)"
    )


def test_vector_vs_scalar_transport_congested_mesh():
    """Vector (SoA-batched) vs scalar transport on the congested 8x8 mesh.

    Two gates in one measurement:

    * **Equivalence** — both transports must process the exact same number
      of events and deliver the same packets; the vector engine never
      adds, drops or moves kernel events, it only changes how a tick's
      body computes (``scripts/check_transport_equivalence.py`` diffs the
      full statistics trees on three scenarios, including this one).
    * **Bounded overhead** — the floor below guards against the batched
      path degrading into pathology, not against it being slower than
      scalar.  Measured honestly: on this 64-router scenario the vector
      transport runs at ~0.6-0.7x scalar, because keeping the SoA mirrors
      bit-exact costs ~35-40% per event while the event-driven scalar
      baseline leaves only ~25% of its time in batchable scan work.  The
      gap narrows with router count (~0.72x at 24x24); see the measured
      tables and the overhead decomposition in docs/performance.md.
    """
    if not HAVE_NUMPY:
        pytest.skip("numpy unavailable: REPRO_TRANSPORT=vector aliases to scalar")
    scalar = _run_traffic_mesh("scalar", injection_rate=0.25,
                               link_width_bits=64, cycles=6_000,
                               transport="scalar")
    vector = _run_traffic_mesh("vector", injection_rate=0.25,
                               link_width_bits=64, cycles=6_000,
                               transport="vector")

    speedup = scalar.wall_s / vector.wall_s
    lines = _render([scalar, vector]).splitlines()
    lines.append(f"vector speedup over scalar transport: {speedup:.2f}x")
    emit("Transport comparison: vector vs scalar (congested 8x8 mesh)",
         "\n".join(lines))

    assert vector.events == scalar.events, (
        f"transport divergence: vector processed {vector.events} events, "
        f"scalar {scalar.events} — event order differs, trace before shipping"
    )
    assert vector.work_items == scalar.work_items
    assert speedup > 0.5, (
        f"vector transport pathologically slow "
        f"({vector.wall_s:.2f}s vs {scalar.wall_s:.2f}s scalar)"
    )
