"""Result-path load benchmark: columnar store vs legacy JSON directory.

The full reproduction report resolves ~98 cached points (the union of
every registered figure sweep).  This benchmark fills both backends with
that exact working set — synthetic results, no simulation — and times a
full-report load four ways:

* **cold**: a fresh backend instance reads every point (JSON: one parse
  per file; columnar: parse the compacted segment, then serve rows);
* **warm**: the same instance reads every point again (JSON: re-parse
  every file, the backend holds no state; columnar: serve from the parsed
  segment index).

The tripwire is the design's whole justification: the columnar warm read
must not be slower than the JSON directory scan.  In practice it is far
faster (one ``json.loads`` of one file vs one per point), so the bound
only fires on a real regression in the store's read path.

No simulation runs here — results are fabricated per point.
"""

from __future__ import annotations

import time

from repro.chip.chip import SimulationResults
from repro.experiments.engine import ResultCache
from repro.experiments.harness import RunSettings
from repro.reporting.tables import ReportTable
from repro.store.columnar import ColumnarStore
from repro.store.migrate import migrate_cache
from repro.store.specs import report_points

from bench_common import emit

#: Timing rounds per measurement (best-of keeps CI noise out of the bound).
ROUNDS = 3
#: The columnar warm read may be at most this multiple of the JSON scan.
WARM_SLACK = 1.5


def _fake_result(sweep_point, index: int) -> SimulationResults:
    coords = sweep_point.coords
    return SimulationResults(
        workload=str(coords.get("workload", "Web Search")),
        topology=str(coords.get("topology", "mesh")),
        num_cores=int(coords.get("num_cores", 16)),
        active_cores=int(coords.get("num_cores", 16)),
        cycles=600 + index,
        total_instructions=9000 + 13 * index,
        per_core_instructions={0: 500 + index},
        network_mean_latency=10.0 + 0.25 * index,
        llc_accesses=1000 + index,
        llc_hit_rate=0.5,
        snoop_rate=0.1,
        l1i_mpki=20.0,
        memory_reads=300,
    )


def _best_of(function, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _fill(tmp_path):
    """Fabricate the full report working set in both backends."""
    settings = RunSettings.from_env()
    sweep_points = report_points(settings)
    json_cache = ResultCache(tmp_path / "json-cache")
    for index, sweep_point in enumerate(sweep_points):
        json_cache.store(sweep_point.point, _fake_result(sweep_point, index))
    store = ColumnarStore(tmp_path / "store")
    migrate_cache(json_cache.root, store)
    points = [sweep_point.point for sweep_point in sweep_points]
    return points, json_cache.root, store.root


def _load_all(cache: ResultCache, points) -> None:
    for point in points:
        if cache.load(point) is None:
            raise AssertionError(f"benchmark backend lost {point.content_hash()}")


def _measure(tmp_path):
    points, json_root, store_root = _fill(tmp_path)

    def json_cold():
        _load_all(ResultCache(json_root), points)

    json_warm_cache = ResultCache(json_root)
    _load_all(json_warm_cache, points)

    def columnar_cold():
        _load_all(ResultCache(store_root, backend="columnar"), points)

    columnar_warm_cache = ResultCache(store_root, backend="columnar")
    _load_all(columnar_warm_cache, points)

    # The zero-copy table path skips the per-point hashing entirely (the
    # hashes are a by-product of expanding the spec once).
    warm_store = ColumnarStore(store_root)
    hashes = [point.content_hash() for point in points]
    warm_store.load_table(hashes)

    return {
        "points": len(points),
        "json cold": _best_of(json_cold),
        "json warm": _best_of(lambda: _load_all(json_warm_cache, points)),
        "columnar cold": _best_of(columnar_cold),
        "columnar warm": _best_of(lambda: _load_all(columnar_warm_cache, points)),
        "columnar table": _best_of(lambda: warm_store.load_table(hashes)),
    }


def test_store_full_report_load(benchmark, tmp_path):
    timings = benchmark.pedantic(
        lambda: _measure(tmp_path), rounds=1, iterations=1
    )

    table = ReportTable(
        ["Backend", "Cold load (ms)", "Warm load (ms)"],
        title=f"Full-report load, {timings['points']} points (best of {ROUNDS})",
    )
    table.add_row(
        "JSON directory", 1e3 * timings["json cold"], 1e3 * timings["json warm"]
    )
    table.add_row(
        "Columnar store",
        1e3 * timings["columnar cold"],
        1e3 * timings["columnar warm"],
    )
    table.add_row(
        "Columnar table (zero-copy)", "-", 1e3 * timings["columnar table"]
    )
    emit("Result store load: columnar vs JSON directory", table.render())

    # Tripwire: the columnar read path must never regress past the JSON
    # directory scan it replaced.  WARM_SLACK absorbs runner noise; the
    # expected ratio is well under 1.
    bound = WARM_SLACK * timings["json warm"]
    if timings["columnar warm"] > bound:
        raise AssertionError(
            f"columnar warm load {1e3 * timings['columnar warm']:.1f} ms exceeds "
            f"{WARM_SLACK}x the JSON directory scan "
            f"({1e3 * timings['json warm']:.1f} ms)"
        )
