"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import geometric_mean, normalize
from repro.cache.address import AddressMapper
from repro.cache.set_assoc import CacheLineState, SetAssociativeCache
from repro.config.cache import CacheConfig
from repro.noc.buffer import VirtualChannelBuffer
from repro.noc.arbiter import ArbitrationCandidate, RoundRobinArbiter, StaticPriorityArbiter
from repro.noc.message import Message, MessageClass, Packet

addresses = st.integers(min_value=0, max_value=2**40)


@given(st.lists(addresses, min_size=1, max_size=200))
def test_cache_occupancy_never_exceeds_capacity(addrs):
    cache = SetAssociativeCache(CacheConfig(4 * 1024, 4, 64), "prop")
    for addr in addrs:
        cache.insert(addr, CacheLineState.SHARED)
        assert cache.occupancy <= cache.capacity_blocks


@given(st.lists(addresses, min_size=1, max_size=100))
def test_most_recent_insert_always_hits(addrs):
    cache = SetAssociativeCache(CacheConfig(4 * 1024, 4, 64), "prop")
    for addr in addrs:
        cache.insert(addr, CacheLineState.SHARED)
        assert cache.probe(addr) is not None


@given(addresses, st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=8))
def test_home_bank_is_stable_and_in_range(addr, banks, channels):
    mapper = AddressMapper(64, num_llc_banks=banks, num_memory_channels=channels)
    bank = mapper.home_bank(addr)
    assert 0 <= bank < banks
    assert mapper.home_bank(addr) == bank
    assert 0 <= mapper.memory_channel(addr) < channels
    assert mapper.block_address(addr) % 64 == 0
    assert mapper.home_bank(mapper.block_address(addr)) == bank


@given(st.integers(min_value=1, max_value=4096), st.integers(min_value=8, max_value=512))
def test_packet_flit_count_covers_message(size_bits, width):
    message = Message(src=0, dst=1, msg_class=MessageClass.REQUEST, size_bits=size_bits)
    packet = Packet(message, width)
    assert packet.num_flits >= 1
    assert packet.num_flits * width >= size_bits
    assert (packet.num_flits - 1) * width < size_bits


@given(
    st.lists(
        st.tuples(st.sampled_from(["reserve", "pop"]), st.integers(min_value=1, max_value=6)),
        max_size=60,
    )
)
def test_vc_buffer_never_overflows_or_underflows(operations):
    vc = VirtualChannelBuffer(capacity_flits=8)
    for op, flits in operations:
        if op == "reserve":
            if vc.can_reserve(flits):
                vc.reserve(flits)
                packet = Packet(
                    Message(src=0, dst=1, msg_class=MessageClass.REQUEST, size_bits=flits * 128),
                    128,
                )
                vc.push(packet)
        else:
            if not vc.empty:
                vc.pop()
        assert 0 <= vc.occupancy_flits
        assert vc.reserved_flits >= vc.occupancy_flits - 8


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=10, unique=True))
def test_round_robin_arbiter_always_picks_a_candidate(ports):
    arbiter = RoundRobinArbiter()
    candidates = []
    for port in ports:
        packet = Packet(
            Message(src=0, dst=1, msg_class=MessageClass.REQUEST, size_bits=128), 128
        )
        candidates.append(
            ArbitrationCandidate(in_port=port, vc_index=0, buffer=None, packet=packet)
        )
    for _ in range(5):
        winner = arbiter.choose(candidates)
        assert winner in candidates


@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(MessageClass)),
            st.booleans(),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_static_priority_never_prefers_request_over_response(entries):
    arbiter = StaticPriorityArbiter()
    candidates = []
    for index, (msg_class, is_local, port) in enumerate(entries):
        packet = Packet(
            Message(src=0, dst=1, msg_class=msg_class, size_bits=128), 128
        )
        candidates.append(
            ArbitrationCandidate(
                in_port=port, vc_index=index, buffer=None, packet=packet, is_local=is_local
            )
        )
    winner = arbiter.choose(candidates)
    has_response = any(c.packet.msg_class == MessageClass.RESPONSE for c in candidates)
    if has_response:
        assert winner.packet.msg_class == MessageClass.RESPONSE


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
def test_geometric_mean_bounded_by_extremes(values):
    mean = geometric_mean(values)
    assert min(values) <= mean * 1.0000001
    assert mean <= max(values) * 1.0000001


@given(
    st.dictionaries(
        st.sampled_from(["mesh", "fbfly", "nocout", "ideal"]),
        st.floats(min_value=0.1, max_value=10.0),
        min_size=1,
    )
)
def test_normalize_sets_baseline_to_one(values):
    baseline = sorted(values)[0]
    normalised = normalize(values, baseline)
    assert normalised[baseline] == 1.0
    for key, value in values.items():
        assert normalised[key] * values[baseline] == value or abs(
            normalised[key] * values[baseline] - value
        ) < 1e-9


@settings(max_examples=25)
@given(
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=2**30),
)
def test_workload_stream_respects_regions(core_id, seed):
    from repro.config.workload import WorkloadConfig
    from repro.workloads.base import SyntheticWorkloadStream

    config = WorkloadConfig(name="prop", instruction_footprint_bytes=1024 * 1024)
    stream = SyntheticWorkloadStream(config, core_id, 64, seed=seed)
    instr_base, instr_size = stream.instruction_region
    private_base, private_size = stream.private_region
    shared_base, shared_size = stream.shared_region
    for _ in range(20):
        block = stream.next_block()
        assert instr_base <= block.iaddr < instr_base + instr_size
        for addr, _w in block.data_accesses:
            assert (
                private_base <= addr < private_base + private_size
                or shared_base <= addr < shared_base + shared_size
            )
