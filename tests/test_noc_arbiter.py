"""Unit tests for the round-robin and static-priority arbiters."""

from repro.noc.arbiter import ArbitrationCandidate, RoundRobinArbiter, StaticPriorityArbiter
from repro.noc.buffer import VirtualChannelBuffer
from repro.noc.message import Message, MessageClass, Packet


def candidate(in_port, vc_index, msg_class=MessageClass.REQUEST, is_local=False):
    packet = Packet(Message(src=0, dst=1, msg_class=msg_class, size_bits=128), 128)
    return ArbitrationCandidate(
        in_port=in_port,
        vc_index=vc_index,
        buffer=VirtualChannelBuffer(5),
        packet=packet,
        is_local=is_local,
    )


class TestRoundRobin:
    def test_empty_returns_none(self):
        assert RoundRobinArbiter().choose([]) is None

    def test_single_candidate_wins(self):
        arbiter = RoundRobinArbiter()
        only = candidate(0, 0)
        assert arbiter.choose([only]) is only

    def test_rotates_across_calls(self):
        arbiter = RoundRobinArbiter()
        a, b, c = candidate(0, 0), candidate(1, 0), candidate(2, 0)
        winners = [arbiter.choose([a, b, c]) for _ in range(4)]
        assert [w.in_port for w in winners] == [0, 1, 2, 0]

    def test_skips_missing_candidates(self):
        arbiter = RoundRobinArbiter()
        a, c = candidate(0, 0), candidate(2, 0)
        assert arbiter.choose([a, c]) is a
        assert arbiter.choose([a, c]) is c
        assert arbiter.choose([a, c]) is a


class TestStaticPriority:
    def test_empty_returns_none(self):
        assert StaticPriorityArbiter().choose([]) is None

    def test_responses_beat_requests(self):
        request = candidate(0, 0, MessageClass.REQUEST)
        response = candidate(1, 1, MessageClass.RESPONSE)
        assert StaticPriorityArbiter().choose([request, response]) is response

    def test_network_beats_local_within_class(self):
        local = candidate(0, 0, MessageClass.REQUEST, is_local=True)
        network = candidate(1, 0, MessageClass.REQUEST, is_local=False)
        assert StaticPriorityArbiter().choose([local, network]) is network

    def test_paper_priority_order(self):
        # Highest to lowest: network responses, local responses,
        # network requests, local requests (Section 4.1).
        network_response = candidate(1, 1, MessageClass.RESPONSE, is_local=False)
        local_response = candidate(0, 1, MessageClass.RESPONSE, is_local=True)
        network_request = candidate(1, 0, MessageClass.REQUEST, is_local=False)
        local_request = candidate(0, 0, MessageClass.REQUEST, is_local=True)
        pool = [local_request, network_request, local_response, network_response]
        arbiter = StaticPriorityArbiter()
        assert arbiter.choose(pool) is network_response
        pool.remove(network_response)
        assert arbiter.choose(pool) is local_response
        pool.remove(local_response)
        assert arbiter.choose(pool) is network_request
        pool.remove(network_request)
        assert arbiter.choose(pool) is local_request

    def test_snoops_share_request_priority(self):
        snoop = candidate(1, 0, MessageClass.SNOOP)
        response = candidate(0, 1, MessageClass.RESPONSE)
        assert StaticPriorityArbiter().choose([snoop, response]) is response
