"""Cross-kernel test battery for the chiplet / network-on-interposer fabric.

Covers the PR's proof obligations: knob validation with one-line errors,
two-level geometry invariants from 64 to 2048 cores, hop accounting that
matches the packets the network actually forwards, the crossing-latency
knob observed end to end, registration-only dispatch through the plugin
registry, and determinism — heap vs. calendar kernels on a 1024-core
chiplet network, both kernels on a full chip, and bit-identical results
across process restarts with different hash seeds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chip.builder import build_chip, build_network
from repro.chip.system_map import build_system_map
from repro.config.noc import NocConfig
from repro.config.system import SystemConfig
from repro.fabrics import (
    ChipletNetwork,
    ChipletSystemMap,
    chiplet_params,
    chiplet_system,
)
from repro.noc.message import Message, MessageClass, control_message_bits
from repro.noc.topology import describe_topology
from repro.scenarios import build_system, fabric_for
from repro.sim.kernel import HeapSimulator, Simulator
from repro.workloads.traffic import UniformRandomTrafficGenerator
from tests._fixtures import TINY_SETTINGS, small_workload

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The scale-out ladder the geometry invariants are proven over.
SIZES = (64, 128, 256, 512, 1024, 2048)


def chiplet_map(num_cores: int, **knobs) -> ChipletSystemMap:
    return ChipletSystemMap(chiplet_system(num_cores=num_cores, **knobs))


# --------------------------------------------------------------------- #
# Knob resolution and degenerate-geometry errors
# --------------------------------------------------------------------- #
class TestChipletParams:
    def test_bare_config_resolves_to_fabric_defaults(self):
        config = SystemConfig(num_cores=64, noc=NocConfig(topology="chiplet"))
        p = chiplet_params(config)
        assert (p.count, p.concentration, p.latency_increase, p.io_die) == (4, 16, 4, True)
        assert (p.cores_per_chiplet, p.groups) == (16, 1)
        assert (p.ccols * p.crows, p.lcols * p.lrows) == (4, 16)

    def test_cores_must_divide_over_chiplets(self):
        with pytest.raises(ValueError, match="do not divide evenly over 3 chiplets"):
            chiplet_system(num_cores=64, chiplet_count=3)

    def test_concentration_must_divide_the_chiplet(self):
        with pytest.raises(ValueError, match="divide evenly over the concentration 5"):
            chiplet_system(num_cores=64, concentration=5)

    def test_concentration_cannot_exceed_the_chiplet(self):
        with pytest.raises(ValueError, match="exceeds the 16 cores per chiplet"):
            chiplet_system(num_cores=64, concentration=32)

    def test_prime_chiplet_count_is_rejected_as_degenerate(self):
        with pytest.raises(ValueError, match="near-square"):
            chiplet_system(num_cores=320, chiplet_count=5)

    def test_noc_config_one_line_errors(self):
        with pytest.raises(ValueError, match="chiplet_count must be >= 1"):
            NocConfig(chiplet_count=0)
        with pytest.raises(ValueError, match="chiplet_concentration must be >= 1"):
            NocConfig(chiplet_concentration=0)
        with pytest.raises(ValueError, match="chiplet_latency_increase must be >= 0"):
            NocConfig(chiplet_latency_increase=-1)

    def test_unset_knobs_are_canonically_omitted(self):
        from repro.experiments.engine import ExperimentPoint

        point = ExperimentPoint(
            config=SystemConfig(num_cores=64, noc=NocConfig()).with_workload(
                small_workload()
            ),
            settings=TINY_SETTINGS,
        )
        canonical = point.canonical_dict()["config"]["noc"]
        assert not any(key.startswith("chiplet_") for key in canonical)


# --------------------------------------------------------------------- #
# Two-level geometry, 64 -> 2048 cores
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("num_cores", SIZES)
class TestChipletGeometry:
    def test_cores_partition_into_chiplets(self, num_cores):
        system_map = chiplet_map(num_cores)
        p = system_map.params
        assert p.count * p.cores_per_chiplet == num_cores
        population = {chiplet: 0 for chiplet in range(p.count)}
        for node in range(num_cores):
            population[system_map.chiplet_of(node)] += 1
        assert set(population.values()) == {p.cores_per_chiplet}

    def test_boundary_router_concentration(self, num_cores):
        system_map = chiplet_map(num_cores)
        p = system_map.params
        assert p.groups * p.concentration == p.cores_per_chiplet
        for chiplet in range(p.count):
            members = {group: 0 for group in range(p.groups)}
            for local in range(p.cores_per_chiplet):
                node = chiplet * p.cores_per_chiplet + local
                members[system_map.boundary_group(node)] += 1
            # Exactly `concentration` tiles funnel through each boundary
            # router, and the boundary tile belongs to its own group.
            assert set(members.values()) == {p.concentration}
            for group in range(p.groups):
                boundary = system_map.boundary_node(chiplet, group)
                assert system_map.chiplet_of(boundary) == chiplet
                assert system_map.boundary_group(boundary) == group

    def test_tile_coords_are_distinct_and_in_grid(self, num_cores):
        system_map = chiplet_map(num_cores)
        p = system_map.params
        cols, rows = p.ccols * p.lcols, p.crows * p.lrows
        coords = [system_map.tile_coord(node) for node in range(num_cores)]
        assert len(set(coords)) == num_cores
        assert all(0 <= x < cols and 0 <= y < rows for x, y in coords)

    def test_crossing_predicate(self, num_cores):
        system_map = chiplet_map(num_cores)
        p = system_map.params
        step = max(1, num_cores // 16)
        tiles = list(range(0, num_cores, step))
        for a in tiles:
            for b in tiles:
                assert system_map.crosses_chiplet(a, b) == (
                    system_map.chiplet_of(a) != system_map.chiplet_of(b)
                )
        mcs = system_map.mc_node_ids
        assert all(system_map.crosses_chiplet(t, mc) for t in tiles for mc in mcs)
        assert not any(system_map.crosses_chiplet(a, b) for a in mcs for b in mcs)

    def test_hop_distance_basics(self, num_cores):
        system_map = chiplet_map(num_cores)
        p = system_map.params
        assert system_map.hop_distance(0, 0) == 0
        # Local neighbours: one link, two routers.
        assert system_map.hop_distance(0, 1) == 2
        # Cross-chiplet paths pay at least ascend + NoI + descend.
        other = p.cores_per_chiplet  # first tile of chiplet 1
        assert system_map.hop_distance(0, other) >= 3


# --------------------------------------------------------------------- #
# Network structure and hop accounting
# --------------------------------------------------------------------- #
def build_chiplet_network(num_cores: int, **knobs):
    config = chiplet_system(num_cores=num_cores, **knobs)
    system_map = ChipletSystemMap(config)
    sim = Simulator(1)
    network = ChipletNetwork(sim, config, system_map)
    for node in network.node_ids:
        network.register_endpoint(node, lambda message: None)
    return sim, network, system_map


class TestChipletNetworkStructure:
    @pytest.mark.parametrize("io_die", [True, False])
    def test_every_link_is_classified(self, io_die):
        _sim, network, _map = build_chiplet_network(64, io_die=io_die)
        p = network.params
        crossing = {id(port) for port in network.crossing_ports()}
        assert len(network.uplink_ports) == p.count * p.groups
        assert len(network.downlink_ports) == p.count * p.groups
        assert len(network.io_ports) == (2 * p.count if io_die else 0)
        for router in network.routers:
            for port in router.output_ports:
                if id(port) in crossing:
                    # Every die-crossing link pays the latency increase.
                    assert port.link_latency == network.crossing_latency
                elif port.link_latency:
                    # Intra-chiplet mesh link: baseline mesh latency.
                    assert port.link_latency == network.noc.mesh_link_latency
                else:
                    assert port.link_length_mm == 0.0  # ejection into an NI
        assert network.crossing_latency == (
            network.noc.mesh_link_latency + p.latency_increase
        )

    @pytest.mark.parametrize("io_die", [True, False])
    def test_measured_hops_match_the_system_map(self, io_die):
        sim, network, system_map = build_chiplet_network(64, io_die=io_die)
        mcs = system_map.mc_node_ids
        pairs = [
            (5, 5),  # same tile: local delivery, no network hops
            (1, 9),  # same chiplet
            (5, 21),  # adjacent chiplets
            (3, 60),  # diagonal chiplets
            (17, 2),  # reverse direction
            (7, mcs[0]),  # tile -> memory controller
            (mcs[1], 40),  # memory controller -> tile
            (mcs[0], mcs[2]),  # controller to controller
        ]
        for src, dst in pairs:
            before = network.hop_histogram.total
            network.send(
                Message(
                    src=src,
                    dst=dst,
                    msg_class=MessageClass.REQUEST,
                    size_bits=control_message_bits(),
                )
            )
            sim.run_to_completion()
            measured = network.hop_histogram.total - before
            assert measured == system_map.hop_distance(src, dst), (src, dst)
        assert network.drained()

    def test_zero_load_latency_pays_the_crossing_increase(self):
        # An adjacent-chiplet path crosses exactly three links (uplink, one
        # NoI hop, downlink); raising the increase from 0 to 6 must surface
        # as exactly 3 x 6 extra cycles at zero load.
        latencies = {}
        for increase in (0, 6):
            sim, network, _map = build_chiplet_network(64, latency_increase=increase)
            network.send(
                Message(
                    src=5,
                    dst=21,
                    msg_class=MessageClass.REQUEST,
                    size_bits=control_message_bits(),
                )
            )
            sim.run_to_completion()
            histogram = network.latency_by_class[MessageClass.REQUEST]
            assert histogram.count == 1
            latencies[increase] = histogram.total
        assert latencies[6] - latencies[0] == 3 * 6


# --------------------------------------------------------------------- #
# Registration-only dispatch and the area model
# --------------------------------------------------------------------- #
class TestChipletDispatch:
    def test_registry_wires_map_network_and_describe(self):
        assert fabric_for("chiplet").name == "chiplet"
        config = build_system("chiplet", num_cores=64)
        system_map = build_system_map(config)
        assert isinstance(system_map, ChipletSystemMap)
        network = build_network(Simulator(1), config, system_map)
        assert isinstance(network, ChipletNetwork)
        assert describe_topology(config).name == "chiplet"

    def test_describe_inventory(self):
        descriptor = describe_topology(chiplet_system(num_cores=64))
        # 60 plain tile routers + 4 boundary + 4 NoI + the IO die.
        assert descriptor.num_routers == 69
        labels = {spec.label for spec in descriptor.routers}
        assert "interposer (NoI) router" in labels and "IO-die router" in labels
        link_labels = {spec.label for spec in descriptor.links}
        assert "interposer via (up/down) link" in link_labels
        no_io = describe_topology(chiplet_system(num_cores=64, io_die=False))
        assert no_io.num_routers == 68

    @pytest.mark.parametrize("num_cores", [64, 1024])
    def test_area_model_wires_through_registry(self, num_cores):
        from repro.power.area_model import NocAreaModel

        breakdown = NocAreaModel().breakdown(chiplet_system(num_cores=num_cores))
        assert breakdown.total_mm2 > 0

    @pytest.mark.parametrize("io_die", [True, False])
    def test_chip_simulates_end_to_end(self, io_die):
        config = chiplet_system(num_cores=64, io_die=io_die).with_workload(
            small_workload()
        )
        chip = build_chip(config)
        results = chip.run_experiment(
            warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
        )
        assert results.topology == "chiplet"
        assert results.total_instructions > 0
        assert results.messages_delivered > 0


# --------------------------------------------------------------------- #
# Determinism: kernels and process restarts
# --------------------------------------------------------------------- #
def _run_uniform_1024(kernel_cls) -> dict:
    sim = kernel_cls(seed=3)
    config = chiplet_system(num_cores=1024)
    network = ChipletNetwork(sim, config, ChipletSystemMap(config))
    generator = UniformRandomTrafficGenerator(
        sim, network, list(range(1024)), 0.005, seed=7
    )
    generator.start()
    sim.run(1500)
    return {
        "events": sim.events_processed,
        "network": network.stats.to_dict(),
        "generator": generator.stats.to_dict(),
    }


class TestChipletDeterminism:
    def test_kernels_agree_on_a_1024_core_network(self):
        calendar = _run_uniform_1024(Simulator)
        heap = _run_uniform_1024(HeapSimulator)
        assert calendar["events"] == heap["events"]
        assert calendar["network"] == heap["network"]
        assert calendar["generator"] == heap["generator"]

    def test_kernels_agree_on_a_chiplet_chip(self, monkeypatch):
        def run_chip():
            config = chiplet_system(num_cores=64).with_workload(small_workload())
            return build_chip(config).run_experiment(
                warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
            )

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        calendar = run_chip()
        monkeypatch.setenv("REPRO_KERNEL", "heap")
        heap = run_chip()
        assert calendar.to_dict() == heap.to_dict()

    def test_chiplet_run_is_stable_across_process_restarts(self):
        script = (
            "import hashlib, json\n"
            "from repro.chip.builder import build_chip\n"
            "from repro.config import presets\n"
            "from repro.fabrics import chiplet_system\n"
            "config = chiplet_system(num_cores=64).with_workload("
            "presets.workload('MapReduce-W'))\n"
            "results = build_chip(config).run_experiment(warmup_references=300,"
            " detailed_warmup_cycles=200, measure_cycles=600)\n"
            "blob = json.dumps(results.to_dict(), sort_keys=True, default=str)\n"
            "print(hashlib.sha256(blob.encode('utf-8')).hexdigest())\n"
        )
        digests = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            env["PYTHONHASHSEED"] = hash_seed
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(completed.stdout.strip())
        assert digests[0] == digests[1]
