"""Tests for the declarative scenario API (registries, SweepSpec, ResultSet)."""

import itertools
import json
import os
import time

import pytest

from repro.config import presets
from repro.config.noc import Topology
from repro.experiments.engine import (
    ResultCache,
    SweepExecutor,
    default_cache_max_bytes,
    run_experiments,
)
from repro.experiments.harness import (
    MIN_DETAILED_WARMUP_CYCLES,
    MIN_MEASURE_CYCLES,
    MIN_WARMUP_REFERENCES,
    RunSettings,
    point_for,
)
from repro.scenarios import (
    RegistrationError,
    Registry,
    ResultSet,
    SweepSpec,
    build_system,
    iter_results,
    point_for_coords,
    register_topology,
    register_workload,
    run_sweep,
    topologies,
    topology_names,
    workload_names,
    workloads,
)
from repro.scenarios.merge import merge_caches

from tests._fixtures import TINY_SETTINGS, small_workload


# --------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------- #
class TestRegistries:
    def test_builtin_workloads_registered(self):
        assert set(presets.WORKLOAD_NAMES) <= set(workload_names())

    def test_builtin_topologies_registered(self):
        assert set(topology_names()) >= {t.value for t in Topology}

    def test_workload_lookup_matches_presets(self):
        from repro.scenarios import workload

        assert workload("Web Search") == presets.workload("Web Search")

    def test_build_system_matches_presets(self):
        built = build_system("noc_out", num_cores=16, link_width_bits=64, seed=7)
        legacy = presets.baseline_system(
            Topology.NOC_OUT, num_cores=16, link_width_bits=64, seed=7
        )
        assert built == legacy

    def test_unknown_name_raises_keyerror_listing_available(self):
        with pytest.raises(KeyError, match="unknown workload"):
            workloads.get("HPC Linpack")
        with pytest.raises(KeyError, match="available"):
            topologies.get("torus")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", lambda: 1)
        with pytest.raises(RegistrationError, match="already registered"):
            registry.register("a", lambda: 2)
        # replace=True is the explicit override escape hatch.
        registry.register("a", lambda: 3, replace=True)
        assert registry.create("a") == 3

    def test_duplicate_workload_name_rejected(self):
        @register_workload("__temp_workload__")
        def _factory():
            return small_workload()

        try:
            with pytest.raises(RegistrationError):
                register_workload("__temp_workload__")(_factory)
        finally:
            workloads.unregister("__temp_workload__")

    def test_registered_workload_usable_in_spec(self):
        register_workload("__spec_workload__", small_workload)
        try:
            spec = SweepSpec(
                axes={"workload": ("__spec_workload__",)},
                settings=TINY_SETTINGS,
                fixed={"topology": "mesh", "num_cores": 16},
            )
            (sweep_point,) = spec.expand()
            assert sweep_point.point.config.workload.name == "TestWorkload"
        finally:
            workloads.unregister("__spec_workload__")

    def test_registered_topology_usable_in_spec(self):
        from repro.config.noc import NocConfig
        from repro.config.system import SystemConfig

        @register_topology("__narrow_mesh__")
        def _narrow_mesh(num_cores=64, link_width_bits=32, seed=42):
            noc = NocConfig(topology=Topology.MESH, link_width_bits=32)
            return SystemConfig(num_cores=num_cores, noc=noc, seed=seed)

        try:
            spec = SweepSpec(
                axes={"topology": ("__narrow_mesh__",)},
                settings=TINY_SETTINGS,
                fixed={"workload": "Web Search", "num_cores": 16},
            )
            (sweep_point,) = spec.expand()
            assert sweep_point.point.config.noc.link_width_bits == 32
        finally:
            topologies.unregister("__narrow_mesh__")

    def test_presets_shim_sees_registered_workload(self):
        register_workload("__shim_workload__", small_workload)
        try:
            assert presets.workload("__shim_workload__").name == "TestWorkload"
            assert "__shim_workload__" in presets.all_workloads()
        finally:
            workloads.unregister("__shim_workload__")


# --------------------------------------------------------------------- #
# SweepSpec
# --------------------------------------------------------------------- #
def tiny_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        axes={
            "workload": ("Web Search", "Data Serving"),
            "topology": ("mesh", "noc_out"),
            "num_cores": (4, 16),
        },
        settings=TINY_SETTINGS,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSweepSpec:
    def test_expansion_is_the_cross_product(self):
        spec = tiny_spec()
        points = spec.expand()
        assert len(points) == spec.size() == 8
        coords = [(sp.coords["workload"], sp.coords["topology"], sp.coords["num_cores"])
                  for sp in points]
        assert coords == list(
            itertools.product(
                ("Web Search", "Data Serving"), ("mesh", "noc_out"), (4, 16)
            )
        )

    def test_points_hash_like_legacy_point_for(self):
        spec = tiny_spec()
        for sweep_point in spec.expand():
            legacy = point_for(
                Topology(sweep_point.coords["topology"]),
                presets.workload(sweep_point.coords["workload"]),
                num_cores=sweep_point.coords["num_cores"],
                settings=TINY_SETTINGS,
            )
            assert sweep_point.content_hash() == legacy.content_hash()

    def test_noc_override_coordinates(self):
        spec = SweepSpec(
            axes={"llc_banks_per_tile": (1, 4)},
            settings=TINY_SETTINGS,
            fixed={"workload": "Web Search", "topology": "noc_out", "num_cores": 16},
        )
        banks = [sp.point.config.noc.llc_banks_per_tile for sp in spec.expand()]
        assert banks == [1, 4]

    def test_zipped_axis_sets_several_coordinates(self):
        spec = SweepSpec(
            axes={
                "fabric": (
                    {"topology": "mesh", "link_width_bits": 64},
                    {"topology": "noc_out", "link_width_bits": 128},
                ),
            },
            settings=TINY_SETTINGS,
            fixed={"workload": "Web Search", "num_cores": 16},
        )
        points = spec.expand()
        assert [sp.point.config.noc.link_width_bits for sp in points] == [64, 128]
        assert [sp.coords["topology"] for sp in points] == ["mesh", "noc_out"]

    def test_unknown_coordinate_rejected(self):
        spec = SweepSpec(
            axes={"bogus_knob": (1, 2)},
            settings=TINY_SETTINGS,
            fixed={"workload": "Web Search"},
        )
        with pytest.raises(ValueError, match="bogus_knob"):
            spec.expand()

    def test_axes_fixed_overlap_rejected(self):
        spec = tiny_spec(fixed={"num_cores": 16})
        with pytest.raises(ValueError, match="more than once"):
            spec.expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(axes={"workload": ()}, settings=TINY_SETTINGS)

    def test_json_round_trip(self):
        spec = tiny_spec(
            axes={
                "workload": ("Web Search",),
                "fabric": ({"topology": "mesh", "link_width_bits": 64},),
            },
            fixed={"num_cores": 16},
        ).shard(1, 3)
        clone = SweepSpec.from_json(spec.to_json())
        assert clone == spec
        assert [sp.coords for sp in clone.expand()] == [
            sp.coords for sp in spec.expand()
        ]

    def test_spec_is_hashable_even_with_zipped_axes(self):
        plain = tiny_spec()
        zipped = SweepSpec(
            axes={
                "fabric": (
                    {"topology": "mesh", "link_width_bits": 64},
                    {"link_width_bits": 128, "topology": "noc_out"},
                ),
            },
            settings=TINY_SETTINGS,
            fixed={"workload": "Web Search", "num_cores": 16},
        )
        # Frozen dataclass => usable as dict key / set member.
        assert len({plain, zipped, tiny_spec()}) == 2
        # Equal mappings hash equally regardless of key order.
        reordered = SweepSpec.from_json(zipped.to_json())
        assert hash(reordered) == hash(zipped) and reordered == zipped

    @pytest.mark.parametrize("count", [2, 3, 5])
    def test_shards_partition_points_disjointly_and_exhaustively(self, count):
        spec = tiny_spec()
        full = {sp.content_hash() for sp in spec.expand()}
        shards = [
            {sp.content_hash() for sp in spec.shard(index, count).expand()}
            for index in range(count)
        ]
        assert set().union(*shards) == full
        assert sum(len(shard) for shard in shards) == len(full)

    def test_shard_validation(self):
        spec = tiny_spec()
        with pytest.raises(ValueError):
            spec.shard(2, 2)
        with pytest.raises(ValueError):
            spec.shard(0, 0)
        with pytest.raises(ValueError, match="already sharded"):
            spec.shard(0, 2).shard(0, 2)

    def test_point_for_coords_requires_workload(self):
        with pytest.raises(ValueError, match="workload"):
            point_for_coords({"topology": "mesh"}, TINY_SETTINGS)


# --------------------------------------------------------------------- #
# run_sweep / iter_results / ResultSet
# --------------------------------------------------------------------- #
ONE_WORKLOAD_SPEC = SweepSpec(
    axes={"topology": ("mesh", "noc_out"), "num_cores": (16, 32)},
    settings=TINY_SETTINGS,
    fixed={"workload": "Web Search"},
)


class TestRunSweep:
    def test_records_follow_spec_order_and_carry_metrics(self):
        results = run_sweep(ONE_WORKLOAD_SPEC)
        assert len(results) == 4
        assert [r.coords["topology"] for r in results] == ["mesh", "mesh", "noc_out", "noc_out"]
        for record in results:
            assert record.metric("throughput_ipc") > 0
            assert record.result is not None  # keep_results defaults to True

    def test_keep_results_false_drops_full_results(self):
        results = run_sweep(ONE_WORKLOAD_SPEC, keep_results=False)
        assert all(record.result is None for record in results)
        assert all(record.metric("cycles") > 0 for record in results)

    def test_values_match_legacy_engine_run(self):
        results = run_sweep(ONE_WORKLOAD_SPEC)
        legacy = run_experiments([sp.point for sp in ONE_WORKLOAD_SPEC.expand()])
        for record, result in zip(results, legacy):
            assert record.metric("throughput_ipc") == result.throughput_ipc
            assert record.result == result

    def test_iter_results_yields_every_record_of_blocking_call(self):
        blocking = run_sweep(ONE_WORKLOAD_SPEC, keep_results=False)
        streamed = list(iter_results(ONE_WORKLOAD_SPEC, keep_results=False))
        assert {r.point_hash for r in streamed} == {r.point_hash for r in blocking}
        by_hash = {r.point_hash: r for r in streamed}
        for record in blocking:
            assert by_hash[record.point_hash].metrics == record.metrics
            assert by_hash[record.point_hash].coords == record.coords

    def test_iter_results_streams_cache_hits_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        shard = ONE_WORKLOAD_SPEC.shard(0, 2)
        run_sweep(shard, executor=SweepExecutor(cache=cache))
        cached_hashes = {sp.content_hash() for sp in shard.expand()}

        executor = SweepExecutor(jobs=1, cache=cache)
        stream = iter_results(ONE_WORKLOAD_SPEC, executor=executor)
        first = next(stream)
        assert first.point_hash in cached_hashes  # a hit, before any simulation
        list(stream)

    def test_jobs_and_executor_are_exclusive(self):
        with pytest.raises(ValueError):
            run_sweep(ONE_WORKLOAD_SPEC, jobs=2, executor=SweepExecutor(jobs=1))

    def test_sharded_union_equals_full_sweep(self, tmp_path):
        full = run_sweep(ONE_WORKLOAD_SPEC, keep_results=False)
        union = {}
        for index in range(2):
            for record in run_sweep(
                ONE_WORKLOAD_SPEC.shard(index, 2), keep_results=False
            ):
                union[record.point_hash] = record
        assert {r.point_hash for r in full} == set(union)
        for record in full:
            assert union[record.point_hash].metrics == record.metrics


class TestResultSet:
    def test_filter_and_value(self):
        results = run_sweep(ONE_WORKLOAD_SPEC, keep_results=False)
        mesh = results.filter(topology="mesh")
        assert len(mesh) == 2
        value = results.value("throughput_ipc", topology="mesh", num_cores=32)
        assert value == mesh.filter(num_cores=32)[0].metric("throughput_ipc")
        with pytest.raises(LookupError):
            results.value("throughput_ipc", topology="mesh")  # ambiguous

    def test_pivot_matches_legacy_fig1_nested_dict(self):
        """The ResultSet pivot reproduces the pre-redesign fig1 shape exactly."""
        from repro.experiments.fig1_scaling import figure1_spec, run_figure1

        names = ["Web Search"]
        core_counts = (1, 4)
        curves = run_figure1(
            workload_names=names, core_counts=core_counts, settings=TINY_SETTINGS
        )

        # Legacy computation, verbatim from the pre-redesign fig1_scaling.
        series = ((Topology.IDEAL, "ideal"), (Topology.MESH, "mesh"))
        keys, points = [], []
        for name in names:
            workload = presets.workload(name)
            for topology, label in series:
                for count in core_counts:
                    keys.append((name, label, count))
                    points.append(
                        point_for(
                            topology, workload, num_cores=count, settings=TINY_SETTINGS
                        )
                    )
        per_core = dict(
            zip(keys, (r.per_core_ipc for r in run_experiments(points)))
        )
        expected = {}
        for name in names:
            expected[name] = {}
            for _, label in series:
                baseline = per_core[(name, label, core_counts[0])]
                expected[name][label] = {
                    count: (per_core[(name, label, count)] / baseline if baseline else 0.0)
                    for count in core_counts
                }
        assert curves == expected

        # And the generic pivot helper returns the same raw table.
        results = run_sweep(
            figure1_spec(names, core_counts, TINY_SETTINGS), keep_results=False
        )
        raw = results.pivot("topology", "num_cores", "per_core_ipc")
        assert raw["ideal"][4] == per_core[("Web Search", "ideal", 4)]

    def test_axis_values_preserve_order(self):
        results = run_sweep(ONE_WORKLOAD_SPEC, keep_results=False)
        assert results.axis_values("topology") == ["mesh", "noc_out"]
        assert results.axis_values("num_cores") == [16, 32]

    def test_json_round_trip(self):
        results = run_sweep(ONE_WORKLOAD_SPEC, keep_results=False)
        clone = ResultSet.from_json(results.to_json())
        assert len(clone) == len(results)
        assert clone.spec == ONE_WORKLOAD_SPEC
        for restored, original in zip(clone, results):
            assert restored == original

    def test_json_round_trip_with_full_results(self):
        results = run_sweep(ONE_WORKLOAD_SPEC)
        clone = ResultSet.from_json(results.to_json(include_results=True))
        for restored, original in zip(clone, results):
            assert restored.result == original.result


# --------------------------------------------------------------------- #
# ResultSet combination helpers (merge / summary / delta)
# --------------------------------------------------------------------- #
class TestResultSetCombination:
    def test_merge_unions_shards_and_drops_duplicates(self):
        spec = SweepSpec(
            axes={"workload": ("Web Search",), "num_cores": (16, 32)},
            settings=TINY_SETTINGS,
            fixed={"topology": "mesh"},
        )
        full = run_sweep(spec, keep_results=False)
        shard0 = run_sweep(spec.shard(0, 2), keep_results=False)
        shard1 = run_sweep(spec.shard(1, 2), keep_results=False)
        merged = shard0.merge(shard1)
        assert sorted(r.point_hash for r in merged) == sorted(
            r.point_hash for r in full
        )
        # Merging overlapping sets drops the byte-identical duplicates.
        assert len(merged.merge(shard0)) == len(full)
        # Shards describe different specs, so the merged set keeps none.
        assert merged.spec is None
        # Merging a set with itself keeps its spec.
        assert full.merge(full).spec == spec

    def test_summary_statistics(self):
        spec = SweepSpec(
            axes={"workload": ("Web Search",), "num_cores": (16, 32)},
            settings=TINY_SETTINGS,
            fixed={"topology": "mesh"},
        )
        results = run_sweep(spec, keep_results=False)
        stats = results.summary("throughput_ipc")
        assert stats["count"] == 2
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert results.summary("throughput_ipc", num_cores=999)["count"] == 0

    def test_delta_matches_by_coords(self):
        spec = SweepSpec(
            axes={"workload": ("Web Search",), "num_cores": (16,)},
            settings=TINY_SETTINGS,
            fixed={"topology": "mesh"},
        )
        results = run_sweep(spec, keep_results=False)
        deltas = results.delta(results, "throughput_ipc")
        assert len(deltas) == 1
        assert deltas[0].abs_delta == 0.0
        assert deltas[0].rel_delta == 0.0
        # Disjoint coordinates produce no pairs.
        other_spec = SweepSpec(
            axes={"workload": ("Web Search",), "num_cores": (32,)},
            settings=TINY_SETTINGS,
            fixed={"topology": "mesh"},
        )
        assert results.delta(run_sweep(other_spec, keep_results=False)) == []


# --------------------------------------------------------------------- #
# RunSettings scaling fix
# --------------------------------------------------------------------- #
class TestRunSettingsScaling:
    def test_scaled_scales_all_three_windows(self):
        settings = RunSettings(
            warmup_references=2500, detailed_warmup_cycles=1500, measure_cycles=6000
        )
        scaled = settings.scaled(0.5)
        assert scaled.warmup_references == 1250
        assert scaled.detailed_warmup_cycles == 750
        assert scaled.measure_cycles == 3000

    def test_scaled_floor_clamps_each_window(self):
        settings = RunSettings(
            warmup_references=2500, detailed_warmup_cycles=1500, measure_cycles=6000
        )
        scaled = settings.scaled(0.01)
        assert scaled.warmup_references == MIN_WARMUP_REFERENCES
        assert scaled.detailed_warmup_cycles == MIN_DETAILED_WARMUP_CYCLES
        assert scaled.measure_cycles == MIN_MEASURE_CYCLES

    def test_from_env_scales_warmup_references(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "0.5")
        settings = RunSettings.from_env(
            RunSettings(warmup_references=2000, measure_cycles=6000)
        )
        assert settings.warmup_references == 1000
        assert settings.measure_cycles == 3000

    def test_identity_scale_changes_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
        assert RunSettings.from_env() == RunSettings()
        assert TINY_SETTINGS.scaled(1.0) == TINY_SETTINGS


# --------------------------------------------------------------------- #
# Cache LRU size cap
# --------------------------------------------------------------------- #
def _entry_size(cache: ResultCache) -> int:
    (path,) = cache.root.glob("*.json")
    return path.stat().st_size


def _set_mtimes(cache: ResultCache, points) -> None:
    """Give the points' entries strictly increasing mtimes, oldest first."""
    now = time.time()
    for offset, point in enumerate(points):
        timestamp = now - 100 + offset
        os.utime(cache.path_for(point), (timestamp, timestamp))


def _points():
    return [
        point_for(
            Topology.MESH,
            presets.workload("Web Search"),
            num_cores=cores,
            settings=TINY_SETTINGS,
        )
        for cores in (1, 2, 4)
    ]


class TestCacheSizeCap:
    def test_lru_entries_evicted_past_cap(self, tmp_path):
        points = _points()
        probe = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=probe).run(points[:1])
        size = _entry_size(probe)

        root = tmp_path / "capped"
        cache = ResultCache(root, max_bytes=int(2.5 * size))
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run(points[:2])
        _set_mtimes(cache, points[:2])  # points[0] is least recently used
        executor.run(points[2:])  # third store blows the cap

        assert cache.load(points[0]) is None  # oldest evicted
        assert cache.load(points[1]) is not None
        assert cache.load(points[2]) is not None

    def test_load_refreshes_recency(self, tmp_path):
        points = _points()
        probe = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=probe).run(points[:1])
        size = _entry_size(probe)

        root = tmp_path / "capped"
        cache = ResultCache(root, max_bytes=int(2.5 * size))
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run(points[:2])
        _set_mtimes(cache, points[:2])  # points[0] would be evicted next...
        cache.load(points[0])  # ...but a hit refreshes its recency
        executor.run(points[2:])

        assert cache.load(points[0]) is not None  # refreshed, survives
        assert cache.load(points[1]) is None  # became the LRU entry instead
        assert len(list(cache.root.glob("*.json"))) == 2

    def test_just_written_entry_is_protected(self, tmp_path):
        points = _points()
        probe = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=probe).run(points[:1])
        size = _entry_size(probe)

        cache = ResultCache(tmp_path / "tiny", max_bytes=size // 2)
        SweepExecutor(jobs=1, cache=cache).run(points[:1])
        assert cache.load(points[0]) is not None  # cap smaller than one entry

    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert default_cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1.5")
        assert default_cache_max_bytes() == int(1.5 * 1024 * 1024)
        assert ResultCache("unused").max_bytes == int(1.5 * 1024 * 1024)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "zero")
        with pytest.raises(ValueError):
            default_cache_max_bytes()
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "-1")
        with pytest.raises(ValueError):
            default_cache_max_bytes()


# --------------------------------------------------------------------- #
# Cache merging
# --------------------------------------------------------------------- #
class TestCacheMerge:
    def test_merge_combines_shard_caches(self, tmp_path):
        spec = ONE_WORKLOAD_SPEC
        for index in range(2):
            executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / f"s{index}"))
            run_sweep(spec.shard(index, 2), executor=executor)

        merged = tmp_path / "merged"
        stats0 = merge_caches(tmp_path / "s0", merged)
        stats1 = merge_caches(tmp_path / "s1", merged)
        assert stats0.copied + stats1.copied == len(spec.expand())
        assert stats0.skipped_collisions == stats1.skipped_collisions == 0

        executor = SweepExecutor(jobs=1, cache=ResultCache(merged))
        run_sweep(spec, executor=executor)
        assert executor.last_stats.simulations_run == 0

    def test_collisions_skipped_and_content_preserved(self, tmp_path):
        source = tmp_path / "src"
        dest = tmp_path / "dst"
        source.mkdir()
        dest.mkdir()
        name = "a" * 64 + ".json"
        (source / name).write_text('{"from": "source"}')
        (dest / name).write_text('{"from": "dest"}')
        (source / "notes.txt").write_text("not a result")

        stats = merge_caches(source, dest)
        assert stats.copied == 0
        assert stats.skipped_collisions == 1
        assert stats.ignored_files == 1
        assert json.loads((dest / name).read_text()) == {"from": "dest"}

        stats = merge_caches(source, dest, overwrite=True)
        assert stats.copied == 1
        assert json.loads((dest / name).read_text()) == {"from": "source"}

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_caches(tmp_path / "nope", tmp_path / "dst")

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.scenarios.merge import main

        source = tmp_path / "src"
        source.mkdir()
        (source / ("b" * 64 + ".json")).write_text("{}")
        assert main([str(source), str(tmp_path / "dst")]) == 0
        assert "copied 1" in capsys.readouterr().out
        assert main([str(tmp_path / "nope"), str(tmp_path / "dst")]) == 1
