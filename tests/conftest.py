"""Shared fixtures for the test suite.

The fixtures favour small, fast configurations (16 cores, small footprints,
short windows) so the full suite stays quick while still exercising every
subsystem end to end.  Reusable plain helpers (``small_system`` & friends)
live in :mod:`tests._fixtures`; import them from there, never from
``conftest`` (see that module's docstring for why).
"""

from __future__ import annotations

import pytest

from repro.config import presets
from repro.config.system import SystemConfig
from repro.config.noc import Topology
from repro.config.workload import WorkloadConfig
from repro.sim.kernel import Simulator

from tests._fixtures import small_system, small_workload as _small_workload

KB = 1024
MB = 1024 * KB


@pytest.fixture(autouse=True)
def _hermetic_experiment_engine(tmp_path, monkeypatch):
    """Keep tests off the user's result cache and on the serial path.

    Every test gets a private ``REPRO_CACHE_DIR`` so cached results can
    never leak between tests (or into ``~/.cache/repro``), and
    ``REPRO_JOBS=1`` so sweeps stay serial unless a test explicitly asks
    for workers.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.setenv("REPRO_JOBS", "1")


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=7)


@pytest.fixture
def small_workload() -> WorkloadConfig:
    """A fast synthetic workload for integration tests."""
    return _small_workload()


@pytest.fixture
def mesh_config(small_workload) -> SystemConfig:
    return small_system(Topology.MESH).with_workload(small_workload)


@pytest.fixture
def fbfly_config(small_workload) -> SystemConfig:
    return small_system(Topology.FLATTENED_BUTTERFLY).with_workload(small_workload)


@pytest.fixture
def nocout_config(small_workload) -> SystemConfig:
    return small_system(Topology.NOC_OUT).with_workload(small_workload)


@pytest.fixture
def ideal_config(small_workload) -> SystemConfig:
    return small_system(Topology.IDEAL).with_workload(small_workload)


@pytest.fixture
def paper_workloads():
    """The six workload presets of the paper."""
    return presets.all_workloads()
