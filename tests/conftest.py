"""Shared fixtures for the test suite.

The fixtures favour small, fast configurations (16 cores, small footprints,
short windows) so the full suite stays quick while still exercising every
subsystem end to end.
"""

from __future__ import annotations

import pytest

from repro.config import presets
from repro.config.noc import NocConfig, Topology
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.sim.kernel import Simulator

KB = 1024
MB = 1024 * KB


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=7)


@pytest.fixture
def small_workload() -> WorkloadConfig:
    """A fast synthetic workload for integration tests."""
    return WorkloadConfig(
        name="TestWorkload",
        instruction_footprint_bytes=256 * KB,
        hot_instruction_fraction=0.5,
        dataset_bytes=8 * MB,
        data_reuse_fraction=0.9,
        shared_fraction=0.02,
        shared_region_bytes=16 * KB,
        write_fraction=0.3,
        loads_per_instruction=0.3,
        mean_block_instructions=12.0,
        jump_probability=0.25,
        issue_width=3,
        mlp=2,
        max_cores=64,
    )


def small_system(topology: Topology, num_cores: int = 16, **noc_kwargs) -> SystemConfig:
    """A 16-core chip configuration suitable for quick end-to-end tests."""
    noc = NocConfig(topology=topology, **noc_kwargs)
    return SystemConfig(num_cores=num_cores, noc=noc, seed=3)


@pytest.fixture
def mesh_config(small_workload) -> SystemConfig:
    return small_system(Topology.MESH).with_workload(small_workload)


@pytest.fixture
def fbfly_config(small_workload) -> SystemConfig:
    return small_system(Topology.FLATTENED_BUTTERFLY).with_workload(small_workload)


@pytest.fixture
def nocout_config(small_workload) -> SystemConfig:
    return small_system(Topology.NOC_OUT).with_workload(small_workload)


@pytest.fixture
def ideal_config(small_workload) -> SystemConfig:
    return small_system(Topology.IDEAL).with_workload(small_workload)


@pytest.fixture
def paper_workloads():
    """The six workload presets of the paper."""
    return presets.all_workloads()
