"""Tenancy layer: WorkloadMap placements, arrivals, matrices, per-tenant tails.

Also carries the cache-key compatibility gate for this subsystem: every
pre-tenancy sweep spec must keep byte-identical content hashes (golden
file in ``tests/data/spec_hashes_v2.json``), because the ``workload_map``
config field defaults to ``None`` and is canonically *omitted* then.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chip.chip import Chip
from repro.config.noc import Topology
from repro.experiments.engine import ExperimentPoint
from repro.noc.mesh import MeshNetwork
from repro.scenarios import ResultSet, SweepSpec, run_sweep
from repro.sim.kernel import HeapSimulator, Simulator
from repro.sim.stats import DEFAULT_RESERVOIR, Histogram, StatError, StatGroup
from repro.tenancy import (
    MatrixContext,
    TenantSpec,
    WorkloadMap,
    arrival_names,
    build_placement,
    is_workload_map_dict,
    make_arrival,
    make_matrix,
    matrix_names,
    placement_names,
)
from repro.workloads.traffic import _TrafficGenerator

from tests._fixtures import TINY_SETTINGS, small_system, small_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_HASHES = Path(__file__).parent / "data" / "spec_hashes_v2.json"

PAIR = ("Data Serving", "MapReduce-C")


def split_pair(num_cores=16, rate=0.08, arrival="bursty"):
    return build_placement(
        "split_half", num_cores, list(PAIR), arrival=arrival, rate=rate
    )


# ----------------------------------------------------------------------- #
# WorkloadMap and TenantSpec
# ----------------------------------------------------------------------- #
class TestTenantSpec:
    def test_requires_workload_name(self):
        with pytest.raises(ValueError, match="workload name"):
            TenantSpec(workload="")

    def test_rate_must_be_a_probability(self):
        with pytest.raises(ValueError, match=r"rate must be within \[0, 1\]"):
            TenantSpec(workload="Data Serving", rate=1.5)

    def test_round_trips_through_dict(self):
        spec = TenantSpec("Data Serving", arrival="bursty", rate=0.1, matrix="hotspot")
        assert TenantSpec.from_dict(spec.to_dict()) == spec


class TestWorkloadMap:
    def test_rejects_overlapping_ranges(self):
        with pytest.raises(ValueError, match="overlaps"):
            WorkloadMap("bad", ((0, 8, 0), (4, 16, 0)), (TenantSpec("A"),))

    def test_rejects_unsorted_ranges(self):
        with pytest.raises(ValueError, match="sorted"):
            WorkloadMap("bad", ((8, 16, 0), (0, 8, 0)), (TenantSpec("A"),))

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError, match="half-open"):
            WorkloadMap("bad", ((4, 4, 0),), (TenantSpec("A"),))

    def test_rejects_dangling_tenant_index(self):
        with pytest.raises(ValueError, match="only 1 tenant"):
            WorkloadMap("bad", ((0, 8, 1),), (TenantSpec("A"),))

    def test_rejects_coreless_tenant(self):
        with pytest.raises(ValueError, match="own no core range"):
            WorkloadMap("bad", ((0, 8, 0),), (TenantSpec("A"), TenantSpec("B")))

    def test_geometry_queries(self):
        wmap = split_pair()
        assert wmap.num_cores_required == 16
        assert wmap.tenant_cores(0) == list(range(8))
        assert wmap.tenant_cores(1) == list(range(8, 16))
        assert wmap.core_tenant(3) == 0
        assert wmap.core_tenant(12) == 1
        assert wmap.core_tenant(99) is None
        wmap.validate_for(16)
        with pytest.raises(ValueError, match="needs 16 cores"):
            wmap.validate_for(8)

    def test_duplicate_workloads_get_distinct_labels(self):
        wmap = build_placement("split_half", 8, ["Data Serving", "Data Serving"])
        assert wmap.tenant_labels() == ["Data Serving", "Data Serving#1"]

    def test_describe_names_placement_and_tenants(self):
        assert split_pair().describe() == "split_half[Data Serving+MapReduce-C]"

    def test_round_trips_through_dict(self):
        wmap = split_pair()
        payload = wmap.to_dict()
        assert is_workload_map_dict(payload)
        assert not is_workload_map_dict({"placement": "x"})
        assert WorkloadMap.from_dict(payload) == wmap
        assert json.loads(json.dumps(payload)) == payload

    def test_from_dict_rejects_other_kinds(self):
        with pytest.raises(ValueError, match="__kind__"):
            WorkloadMap.from_dict({"__kind__": "something_else"})

    def test_content_hash_tracks_content(self):
        assert split_pair().content_hash() == split_pair().content_hash()
        assert split_pair().content_hash() != split_pair(rate=0.09).content_hash()


class TestPlacements:
    def test_builtins_registered(self):
        names = placement_names()
        for name in ("homogeneous", "split_half", "checkerboard"):
            assert name in names

    def test_homogeneous_gives_first_tenant_every_core(self):
        wmap = build_placement("homogeneous", 16, list(PAIR))
        assert wmap.entries == ((0, 16, 0),)
        assert [t.workload for t in wmap.tenants] == ["Data Serving"]

    def test_checkerboard_alternates_cores(self):
        wmap = build_placement("checkerboard", 6, list(PAIR))
        assert wmap.tenant_cores(0) == [0, 2, 4]
        assert wmap.tenant_cores(1) == [1, 3, 5]

    def test_split_half_needs_two_tenants(self):
        with pytest.raises(ValueError, match="two tenants"):
            build_placement("split_half", 16, ["Data Serving"])

    def test_shared_traffic_knobs_apply_to_named_tenants(self):
        wmap = build_placement(
            "split_half", 16, list(PAIR), arrival="diurnal", rate=0.2, matrix="hotspot"
        )
        assert all(t.arrival == "diurnal" for t in wmap.tenants)
        assert all(t.rate == 0.2 for t in wmap.tenants)
        assert all(t.matrix == "hotspot" for t in wmap.tenants)

    def test_explicit_tenant_specs_pass_through(self):
        specs = [TenantSpec("Data Serving", rate=0.1), TenantSpec("Web Search", rate=0.3)]
        wmap = build_placement("split_half", 16, specs)
        assert wmap.tenants == tuple(specs)


# ----------------------------------------------------------------------- #
# Arrival processes and traffic matrices
# ----------------------------------------------------------------------- #
class _ForbiddenRng:
    """Deterministic arrival processes must never touch the RNG."""

    def __getattr__(self, name):  # pragma: no cover - failure path
        raise AssertionError(f"deterministic arrival drew rng.{name}")


class TestArrivals:
    def test_builtins_registered(self):
        for name in ("poisson", "bursty", "diurnal"):
            assert name in arrival_names()

    def test_rate_must_be_a_probability(self):
        with pytest.raises(ValueError, match=r"within \[0, 1\]"):
            make_arrival("poisson", 1.2)

    def test_poisson_is_constant_and_deterministic(self):
        process = make_arrival("poisson", 0.25)
        assert process.rate(0, _ForbiddenRng()) == 0.25
        assert process.rate(10_000, _ForbiddenRng()) == 0.25

    def test_diurnal_swings_around_base_without_rng(self):
        process = make_arrival("diurnal", 0.5)
        rates = [process.rate(c, _ForbiddenRng()) for c in range(process.period)]
        assert max(rates) == pytest.approx(0.5 * 1.8)
        assert min(rates) == pytest.approx(0.5 * 0.2)
        assert rates[0] == pytest.approx(0.5)
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_bursty_is_mean_preserving(self):
        import random

        process = make_arrival("bursty", 0.1)
        rng = random.Random(17)
        cycles = 200_000
        mean = sum(process.rate(c, rng) for c in range(cycles)) / cycles
        assert mean == pytest.approx(0.1, rel=0.1)
        assert process.on_rate == pytest.approx(0.4)
        assert process.on_rate > 0.1 > process.off_rate

    def test_bursty_parameter_validation(self):
        from repro.tenancy.arrivals import BurstyArrival

        with pytest.raises(ValueError, match="burst_factor"):
            BurstyArrival(0.1, burst_factor=0.5)
        with pytest.raises(ValueError, match="p_enter"):
            BurstyArrival(0.1, p_enter=0.0)


class TestMatrices:
    def test_builtins_registered(self):
        for name in ("uniform", "hotspot", "partitioned"):
            assert name in matrix_names()

    def test_context_validation(self):
        with pytest.raises(ValueError, match="at least one destination"):
            MatrixContext(destinations=())
        with pytest.raises(ValueError, match="tenant slot"):
            MatrixContext(destinations=(1, 2), tenant_index=2, num_tenants=2)

    def _draws(self, picker, n=2000, seed=5):
        import random

        rng = random.Random(seed)
        return [picker(0, rng) for _ in range(n)]

    def test_uniform_covers_every_destination(self):
        picker = make_matrix("uniform", MatrixContext(tuple(range(8))))
        assert set(self._draws(picker)) == set(range(8))

    def test_hotspot_concentrates_on_the_tenant_hot_node(self):
        context = MatrixContext(tuple(range(4)), tenant_index=1, num_tenants=2)
        draws = self._draws(make_matrix("hotspot", context))
        assert draws.count(1) / len(draws) > 0.5

    def test_partitioned_stripes_are_disjoint(self):
        destinations = tuple(range(8))
        stripes = [
            set(
                self._draws(
                    make_matrix(
                        "partitioned",
                        MatrixContext(destinations, tenant_index=i, num_tenants=2),
                    )
                )
            )
            for i in range(2)
        ]
        assert stripes[0] == {0, 2, 4, 6}
        assert stripes[1] == {1, 3, 5, 7}

    def test_partitioned_empty_stripe_falls_back_to_full_set(self):
        context = MatrixContext((10, 11), tenant_index=2, num_tenants=3)
        assert set(self._draws(make_matrix("partitioned", context))) == {10, 11}


# ----------------------------------------------------------------------- #
# Traffic-generator validation (satellite: reject broken configurations)
# ----------------------------------------------------------------------- #
class TestTrafficValidation:
    def _network(self):
        sim = Simulator(seed=3)
        config = small_system(Topology.MESH)
        coords = {i: (i % 4, i // 4) for i in range(16)}
        return sim, MeshNetwork(sim, config, coords)

    def test_injection_rate_error_names_the_generator(self):
        sim, network = self._network()
        with pytest.raises(ValueError, match=r"gen_a: injection_rate"):
            _TrafficGenerator(
                sim, "gen_a", network, [0, 1], 1.5, lambda s, rng: 0,
                register_endpoints=False,
            )

    def test_request_fraction_error_names_the_generator(self):
        sim, network = self._network()
        with pytest.raises(ValueError, match=r"gen_b: request_fraction"):
            _TrafficGenerator(
                sim, "gen_b", network, [0, 1], 0.1, lambda s, rng: 0,
                request_fraction=-0.2, register_endpoints=False,
            )

    def test_duplicate_sources_rejected(self):
        sim, network = self._network()
        with pytest.raises(ValueError, match=r"gen_c: duplicate source node\(s\) \[1\]"):
            _TrafficGenerator(
                sim, "gen_c", network, [0, 1, 1, 2], 0.1, lambda s, rng: 0,
                register_endpoints=False,
            )


# ----------------------------------------------------------------------- #
# Reservoir histograms (satellite: bounded-memory percentiles)
# ----------------------------------------------------------------------- #
class TestReservoirHistogram:
    def test_caps_retained_samples_but_keeps_exact_moments(self):
        hist = Histogram("latency", reservoir=16)
        for value in range(1000):
            hist.add(value)
        assert hist.count == 1000
        assert hist.mean == pytest.approx(499.5)
        assert hist.min == 0 and hist.max == 999
        assert hist.retained_samples == 16
        assert 0 <= hist.percentile(50) <= 999

    def test_retained_set_is_deterministic_per_name(self):
        def fill(name):
            hist = Histogram(name, reservoir=8)
            for value in range(500):
                hist.add(value)
            return list(hist._samples)

        assert fill("latency") == fill("latency")

    def test_reset_reseeds_the_reservoir(self):
        hist = Histogram("latency", reservoir=8)
        for value in range(500):
            hist.add(value)
        first = list(hist._samples)
        hist.reset()
        assert hist.count == 0 and hist.retained_samples == 0
        for value in range(500):
            hist.add(value)
        assert list(hist._samples) == first

    def test_below_cap_keeps_everything_in_order(self):
        hist = Histogram("latency", reservoir=64)
        for value in (5, 3, 9):
            hist.add(value)
        assert list(hist._samples) == [5.0, 3.0, 9.0]

    def test_reservoir_requires_kept_samples(self):
        with pytest.raises(StatError):
            Histogram("latency", keep_samples=False, reservoir=8)

    def test_reservoir_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("latency", reservoir=0)

    def test_stat_group_passes_reservoir_through(self):
        group = StatGroup("g")
        hist = group.histogram("h", reservoir=4)
        for value in range(100):
            hist.add(value)
        assert hist.retained_samples == 4

    def test_default_reservoir_is_a_fixed_constant(self):
        assert DEFAULT_RESERVOIR == 8192


# ----------------------------------------------------------------------- #
# Config + cache-key compatibility
# ----------------------------------------------------------------------- #
class TestConfigIntegration:
    def test_config_validates_map_against_core_count(self):
        config = small_system(Topology.MESH, num_cores=8)
        with pytest.raises(ValueError, match="needs 16 cores"):
            config.with_workload_map(split_pair(num_cores=16))

    def test_none_map_is_canonically_omitted(self):
        point = ExperimentPoint(
            config=small_system(Topology.MESH).with_workload(small_workload()),
            settings=TINY_SETTINGS,
        )
        assert "workload_map" not in point.canonical_dict()["config"]

    def test_map_changes_the_cache_key(self):
        base = small_system(Topology.MESH).with_workload(small_workload())
        plain = ExperimentPoint(config=base, settings=TINY_SETTINGS)
        mapped = ExperimentPoint(
            config=base.with_workload_map(split_pair()), settings=TINY_SETTINGS
        )
        assert "workload_map" in mapped.canonical_dict()["config"]
        assert plain.content_hash() != mapped.content_hash()

    def test_pre_tenancy_spec_hashes_are_byte_identical(self, monkeypatch):
        """Golden gate: every pre-existing sweep keeps its cache keys."""
        from repro.store.specs import figure_spec

        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
        golden = json.loads(GOLDEN_HASHES.read_text())
        assert len(golden) == 9 and sum(len(v) for v in golden.values()) == 146
        for name, hashes in golden.items():
            current = [p.content_hash() for p in figure_spec(name).expand()]
            assert current == hashes, f"cache keys changed for spec {name!r}"

    def test_pre_chiplet_scale_out_hashes_survive(self, monkeypatch):
        """The pre-chiplet scale-out points keep their exact cache keys.

        PR 9 widened the scale-out grid (chiplet fabric, 1024/2048 cores);
        the original 24-point sub-sweep must still hash to the same keys it
        always had, all of which live inside the extended golden list.
        """
        from repro.experiments.scale_out import scale_out_spec

        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
        golden = set(json.loads(GOLDEN_HASHES.read_text())["scale_out"])
        legacy = scale_out_spec(
            core_counts=(64, 128, 256, 512), fabrics=("mesh", "cmesh", "noc_out")
        )
        hashes = [p.content_hash() for p in legacy.expand()]
        assert len(hashes) == 24
        assert set(hashes) <= golden


# ----------------------------------------------------------------------- #
# Scenario coordinates
# ----------------------------------------------------------------------- #
class TestSpecCoordinates:
    def test_placement_coordinates_build_a_workload_map(self):
        from repro.scenarios.spec import point_for_coords

        point = point_for_coords(
            {
                "placement": "split_half",
                "tenants": PAIR,
                "arrival": "bursty",
                "load": 0.08,
                "num_cores": 16,
            },
            TINY_SETTINGS,
        )
        wmap = point.config.workload_map
        assert wmap.placement == "split_half"
        assert [t.workload for t in wmap.tenants] == list(PAIR)
        assert all(t.arrival == "bursty" and t.rate == 0.08 for t in wmap.tenants)
        assert point.config.workload.name == "Data Serving"

    def test_placement_requires_tenants(self):
        from repro.scenarios.spec import point_for_coords

        with pytest.raises(ValueError, match="'tenants'"):
            point_for_coords({"placement": "split_half"}, TINY_SETTINGS)

    def test_map_and_placement_are_mutually_exclusive(self):
        from repro.scenarios.spec import point_for_coords

        with pytest.raises(ValueError, match="one or the other"):
            point_for_coords(
                {
                    "workload_map": split_pair(),
                    "placement": "split_half",
                    "tenants": PAIR,
                },
                TINY_SETTINGS,
            )

    def test_tenancy_knobs_require_a_placement(self):
        from repro.scenarios.spec import point_for_coords

        with pytest.raises(ValueError, match="require a 'placement'"):
            point_for_coords(
                {"workload": "Data Serving", "arrival": "bursty"}, TINY_SETTINGS
            )

    def test_workload_map_axis_survives_json_and_sharding(self):
        maps = (split_pair(rate=0.05), build_placement("checkerboard", 16, list(PAIR)))
        spec = SweepSpec(
            axes={"workload_map": maps},
            fixed={"topology": "mesh", "num_cores": 16},
            settings=TINY_SETTINGS,
        )
        hashes = [p.content_hash() for p in spec.expand()]
        assert len(set(hashes)) == 2

        revived = SweepSpec.from_json(spec.to_json())
        assert [p.content_hash() for p in revived.expand()] == hashes

        union = set()
        for index in range(3):
            union |= {p.content_hash() for p in spec.shard(index, 3).expand()}
        assert union == set(hashes)

    def test_colocation_spec_expands_the_full_grid(self):
        from repro.experiments.colocation import colocation_spec

        spec = colocation_spec(settings=TINY_SETTINGS)
        points = spec.expand()
        assert len(points) == 27
        assert len({p.content_hash() for p in points}) == 27

    def test_colocation_registered_but_outside_report_set(self):
        from repro.store.specs import figure_spec, report_points, spec_names

        assert "colocation" in spec_names()
        colocation = {
            p.content_hash()
            for p in figure_spec("colocation", TINY_SETTINGS).expand()
        }
        default = {p.content_hash() for p in report_points(TINY_SETTINGS)}
        assert not colocation & default


# ----------------------------------------------------------------------- #
# Chip integration: per-tenant tails (the acceptance property)
# ----------------------------------------------------------------------- #
def run_tenancy_chip(wmap, num_cores=16):
    config = small_system(Topology.MESH, num_cores=num_cores).with_workload_map(wmap)
    chip = Chip(config)
    results = chip.run_experiment(
        warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
    )
    return chip, results


class TestChipTenancy:
    def test_split_half_separates_per_tenant_tails(self):
        chip, results = run_tenancy_chip(split_pair(rate=0.08))
        assert results.placement == "split_half"
        assert results.workload == "split_half[Data Serving+MapReduce-C]"
        assert sorted(results.per_tenant_latency) == sorted(PAIR)
        tails = {}
        for tenant, summary in results.per_tenant_latency.items():
            assert summary["count"] > 0
            for key in ("mean", "p50", "p95", "p99"):
                assert key in summary
            tails[tenant] = summary["p99"]
        # The acceptance property: co-located tenants report *distinct*
        # latency distributions, not one blended chip-wide number.
        assert tails[PAIR[0]] != tails[PAIR[1]]
        for generator in chip.tenant_traffic.values():
            assert generator.probes_sent.value > 0
            assert generator.probes_echoed.value > 0

    def test_plain_chip_reports_no_tenancy(self):
        config = small_system(Topology.MESH).with_workload(small_workload())
        results = Chip(config).run_experiment(
            warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
        )
        assert results.placement == ""
        assert results.per_tenant_latency == {}

    def test_zero_rate_tenants_skip_the_overlay(self):
        chip, results = run_tenancy_chip(split_pair(rate=0.0))
        assert chip.tenant_traffic == {}
        # Tenant attribution still works off coherence traffic alone.
        assert sorted(results.per_tenant_latency) == sorted(PAIR)
        assert all(s["count"] > 0 for s in results.per_tenant_latency.values())

    def test_results_round_trip_preserves_tenancy_fields(self):
        _chip, results = run_tenancy_chip(split_pair(rate=0.08))
        revived = type(results).from_dict(results.to_dict())
        assert revived.placement == results.placement
        assert revived.per_tenant_latency == results.per_tenant_latency

    def test_sweep_records_round_trip_with_full_results(self):
        from repro.experiments.colocation import colocation_spec

        spec = colocation_spec(
            placements=("split_half",),
            arrivals=("bursty",),
            loads=(0.08,),
            num_cores=16,
            settings=TINY_SETTINGS,
        )
        results = run_sweep(spec, keep_results=True)
        assert len(results) == 1
        record = results[0]
        tails = record.full_result().per_tenant_latency
        assert sorted(tails) == sorted(PAIR)

        revived = ResultSet.from_json(results.to_json(include_results=True))
        assert revived[0].coords == record.coords
        assert revived[0].full_result().per_tenant_latency == tails


# ----------------------------------------------------------------------- #
# Determinism: kernels and process restarts (satellite)
# ----------------------------------------------------------------------- #
def _run_open_loop(kernel_cls, arrival: str, matrix: str) -> dict:
    from repro.tenancy.traffic import OpenLoopTrafficGenerator

    sim = kernel_cls(seed=3)
    config = small_system(Topology.MESH)
    coords = {i: (i % 4, i // 4) for i in range(16)}
    network = MeshNetwork(sim, config, coords)
    generator = OpenLoopTrafficGenerator(
        sim,
        network,
        list(coords),
        arrival=make_arrival(arrival, 0.2),
        pick_destination=make_matrix(matrix, MatrixContext(tuple(range(16)))),
        seed=11,
    )
    generator.start()
    sim.run(2500)
    return {
        "kernel": kernel_cls.__name__,
        "events": sim.events_processed,
        "network": network.stats.to_dict(),
        "generator": generator.stats.to_dict(),
    }


class TestTenancyDeterminism:
    @pytest.mark.parametrize("matrix", ("uniform", "hotspot", "partitioned"))
    @pytest.mark.parametrize("arrival", ("poisson", "bursty", "diurnal"))
    def test_kernels_agree_under_open_loop_traffic(self, arrival, matrix):
        calendar = _run_open_loop(Simulator, arrival, matrix)
        heap = _run_open_loop(HeapSimulator, arrival, matrix)
        assert calendar["events"] == heap["events"]
        assert calendar["network"] == heap["network"]
        assert calendar["generator"] == heap["generator"]

    def test_kernels_agree_on_a_tenanted_chip(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        _chip, calendar = run_tenancy_chip(split_pair(rate=0.08))
        monkeypatch.setenv("REPRO_KERNEL", "heap")
        _chip, heap = run_tenancy_chip(split_pair(rate=0.08))
        assert calendar.to_dict() == heap.to_dict()

    def test_tenanted_run_is_stable_across_process_restarts(self):
        script = (
            "import hashlib, json\n"
            "from repro.chip.chip import Chip\n"
            "from repro.config.noc import NocConfig, Topology\n"
            "from repro.config.system import SystemConfig\n"
            "from repro.tenancy import build_placement\n"
            "wmap = build_placement('split_half', 16,"
            " ['Data Serving', 'MapReduce-C'], arrival='bursty', rate=0.08)\n"
            "config = SystemConfig(num_cores=16,"
            " noc=NocConfig(topology=Topology.MESH), seed=3)\n"
            "chip = Chip(config.with_workload_map(wmap))\n"
            "results = chip.run_experiment(warmup_references=300,"
            " detailed_warmup_cycles=200, measure_cycles=600)\n"
            "blob = json.dumps(results.to_dict(), sort_keys=True, default=str)\n"
            "print(hashlib.sha256(blob.encode('utf-8')).hexdigest())\n"
        )
        digests = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            env["PYTHONHASHSEED"] = hash_seed
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(completed.stdout.strip())
        assert digests[0] == digests[1]
