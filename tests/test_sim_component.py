"""Unit tests for the Component wake/tick idiom."""

from repro.sim.component import Component
from repro.sim.kernel import Simulator


class TickRecorder(Component):
    def __init__(self, sim):
        super().__init__(sim, "recorder")
        self.ticks = []

    def _tick(self):
        self.ticks.append(self.sim.cycle)


def test_wake_schedules_tick():
    sim = Simulator()
    component = TickRecorder(sim)
    component.wake(3)
    sim.run(10)
    assert component.ticks == [3]


def test_duplicate_wakes_for_same_cycle_coalesce():
    sim = Simulator()
    component = TickRecorder(sim)
    component.wake(2)
    component.wake(2)
    component.wake(2)
    sim.run(5)
    assert component.ticks == [2]


def test_component_can_rewake_itself():
    sim = Simulator()

    class SelfWaking(TickRecorder):
        def _tick(self):
            super()._tick()
            if len(self.ticks) < 3:
                self.wake(1)

    component = SelfWaking(sim)
    component.wake(0)
    sim.run(10)
    assert component.ticks == [0, 1, 2]


def test_earlier_wake_supersedes_later_pending_wake():
    """Regression: wake(5) then wake(0) must tick once, at cycle 0 only.

    The seed implementation left the later callback live in the kernel
    queue with stale ``_next_wake`` bookkeeping, so the component ticked a
    second time at cycle 5 without ever being asked to.
    """
    sim = Simulator()
    component = TickRecorder(sim)
    component.wake(5)
    component.wake(0)
    sim.run(20)
    assert component.ticks == [0]


def test_stale_wake_patterns_never_double_tick():
    """Count ticks per cycle under adversarial wake(n)-then-wake(0) mixes."""
    from collections import Counter

    sim = Simulator()
    component = TickRecorder(sim)
    component.wake(5)
    component.wake(2)
    component.wake(0)
    sim.run(10)  # the wake(5) and wake(2) entries are stale: single tick at 0
    component.wake(12)  # pending at cycle 22
    component.wake(5)   # supersedes: tick at cycle 15, entry at 22 goes stale
    sim.run(30)
    per_cycle = Counter(component.ticks)
    assert max(per_cycle.values()) == 1
    assert component.ticks == [0, 15]


def test_rewake_on_superseded_cycle_ticks_exactly_once():
    sim = Simulator()
    component = TickRecorder(sim)
    component.wake(5)   # pending at 5
    component.wake(0)   # supersedes; stale entry remains queued for cycle 5
    sim.run(2)          # tick at 0 consumed; clock now at 2
    component.wake(3)   # a *live* wake for cycle 5 again
    sim.run(10)
    assert component.ticks == [0, 5]


def test_wake_during_tick_at_stale_cycle_is_honoured():
    sim = Simulator()

    class RewakeAtFive(TickRecorder):
        def _tick(self):
            super()._tick()
            if self.sim.cycle == 0:
                self.wake(5)

    component = RewakeAtFive(sim)
    component.wake(5)
    component.wake(0)
    sim.run(20)
    assert component.ticks == [0, 5]


def test_now_property_tracks_clock():
    sim = Simulator()
    component = TickRecorder(sim)
    sim.run(5)
    assert component.now == 5


def test_component_has_stats_group():
    sim = Simulator()
    component = TickRecorder(sim)
    component.stats.counter("events").add()
    assert component.stats.counter("events").value == 1
