"""Unit tests for the Component wake/tick idiom."""

from repro.sim.component import Component
from repro.sim.kernel import Simulator


class TickRecorder(Component):
    def __init__(self, sim):
        super().__init__(sim, "recorder")
        self.ticks = []

    def _tick(self):
        self.ticks.append(self.sim.cycle)


def test_wake_schedules_tick():
    sim = Simulator()
    component = TickRecorder(sim)
    component.wake(3)
    sim.run(10)
    assert component.ticks == [3]


def test_duplicate_wakes_for_same_cycle_coalesce():
    sim = Simulator()
    component = TickRecorder(sim)
    component.wake(2)
    component.wake(2)
    component.wake(2)
    sim.run(5)
    assert component.ticks == [2]


def test_component_can_rewake_itself():
    sim = Simulator()

    class SelfWaking(TickRecorder):
        def _tick(self):
            super()._tick()
            if len(self.ticks) < 3:
                self.wake(1)

    component = SelfWaking(sim)
    component.wake(0)
    sim.run(10)
    assert component.ticks == [0, 1, 2]


def test_now_property_tracks_clock():
    sim = Simulator()
    component = TickRecorder(sim)
    sim.run(5)
    assert component.now == 5


def test_component_has_stats_group():
    sim = Simulator()
    component = TickRecorder(sim)
    component.stats.counter("events").add()
    assert component.stats.counter("events").value == 1
