"""Unit tests for address mapping, cache arrays, MSHRs and L1 caches."""

import pytest

from repro.cache.address import AddressMapper
from repro.cache.l1 import L1Cache
from repro.cache.llc import LLCBank
from repro.cache.mshr import MshrFile
from repro.cache.set_assoc import CacheLineState, SetAssociativeCache
from repro.config.cache import CacheConfig


class TestAddressMapper:
    def test_block_alignment(self):
        mapper = AddressMapper(block_size=64)
        assert mapper.block_address(0x1234) == 0x1200
        assert mapper.block_address(0x1200) == 0x1200

    def test_block_number(self):
        assert AddressMapper(64).block_number(0x1000) == 0x40

    def test_home_bank_interleaves_consecutive_blocks(self):
        mapper = AddressMapper(64, num_llc_banks=16)
        homes = [mapper.home_bank(block * 64) for block in range(16)]
        assert homes == list(range(16))

    def test_home_bank_is_stable_within_a_block(self):
        mapper = AddressMapper(64, num_llc_banks=16)
        assert mapper.home_bank(0x1000) == mapper.home_bank(0x103F)

    def test_memory_channel_interleaves_pages(self):
        mapper = AddressMapper(64, num_memory_channels=4)
        assert mapper.memory_channel(0x0000) == 0
        assert mapper.memory_channel(0x1000) == 1
        assert mapper.memory_channel(0x4000) == 0

    def test_same_block(self):
        mapper = AddressMapper(64)
        assert mapper.same_block(0x100, 0x13F)
        assert not mapper.same_block(0x100, 0x140)

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(block_size=48)


def small_cache(size=1024, assoc=2, block=64):
    return SetAssociativeCache(CacheConfig(size, assoc, block), name="test")


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000, CacheLineState.SHARED)
        assert cache.lookup(0x1000) == CacheLineState.SHARED

    def test_capacity_is_bounded(self):
        cache = small_cache()
        for i in range(100):
            cache.insert(i * 64)
        assert cache.occupancy <= cache.capacity_blocks

    def test_lru_eviction_order(self):
        cache = small_cache(size=2 * 64, assoc=2, block=64)  # one set, two ways
        cache.insert(0 * 64)
        cache.insert(1 * 64)
        cache.lookup(0)  # touch block 0, making block 1 the LRU victim
        victim = cache.insert(2 * 64)
        assert victim is not None
        assert victim[0] == 1 * 64

    def test_insert_existing_updates_state_without_eviction(self):
        cache = small_cache()
        cache.insert(0x40, CacheLineState.SHARED)
        victim = cache.insert(0x40, CacheLineState.MODIFIED)
        assert victim is None
        assert cache.probe(0x40) == CacheLineState.MODIFIED

    def test_victim_address_is_reconstructed_exactly(self):
        cache = SetAssociativeCache(CacheConfig(2 * 64, 2, 64), "banked", index_divisor=16)
        base = 0x1_0000_0000
        addresses = [base + i * 64 * 16 for i in range(3)]  # same bank, same set
        cache.insert(addresses[0])
        cache.insert(addresses[1])
        victim = cache.insert(addresses[2])
        assert victim is not None
        assert victim[0] == addresses[0]

    def test_index_divisor_spreads_interleaved_blocks(self):
        # Blocks striped across 16 banks: bank 0 sees blocks 0, 16, 32, ...
        config = CacheConfig(64 * 64, 2, 64)  # 32 sets
        aliased = SetAssociativeCache(config, "aliased")
        spread = SetAssociativeCache(config, "spread", index_divisor=16)
        for i in range(64):
            addr = i * 16 * 64
            aliased.insert(addr)
            spread.insert(addr)
        assert spread.occupancy > aliased.occupancy

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(0x80, CacheLineState.MODIFIED)
        assert cache.invalidate(0x80) == CacheLineState.MODIFIED
        assert cache.probe(0x80) is None
        assert cache.invalidate(0x80) is None

    def test_update_state(self):
        cache = small_cache()
        cache.insert(0x80, CacheLineState.SHARED)
        cache.update_state(0x80, CacheLineState.MODIFIED)
        assert cache.probe(0x80) == CacheLineState.MODIFIED
        cache.update_state(0x80, CacheLineState.INVALID)
        assert cache.probe(0x80) is None

    def test_cannot_insert_invalid_state(self):
        with pytest.raises(ValueError):
            small_cache().insert(0x80, CacheLineState.INVALID)

    def test_statistics(self):
        cache = small_cache()
        cache.lookup(0)
        cache.insert(0)
        cache.lookup(0)
        assert cache.misses == 1
        assert cache.hits == 1
        assert 0 < cache.miss_rate < 1

    def test_resident_blocks_roundtrip(self):
        cache = small_cache()
        cache.insert(0x100, CacheLineState.SHARED)
        cache.insert(0x2000, CacheLineState.MODIFIED)
        resident = cache.resident_blocks()
        assert resident[0x100] == CacheLineState.SHARED
        assert resident[0x2000] == CacheLineState.MODIFIED


class TestMshrFile:
    def test_allocate_and_release(self):
        mshr = MshrFile(4)
        entry = mshr.allocate(0x100, is_instruction=True, wants_exclusive=False, issue_cycle=5)
        assert mshr.lookup(0x100) is entry
        assert mshr.outstanding == 1
        released = mshr.release(0x100)
        assert released is entry
        assert mshr.outstanding == 0

    def test_merge_accumulates(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, False, False, 0)
        entry = mshr.merge(0x100, wants_exclusive=True)
        assert entry.merged_accesses == 2
        assert entry.wants_exclusive

    def test_duplicate_allocation_rejected(self):
        mshr = MshrFile(4)
        mshr.allocate(0x100, False, False, 0)
        with pytest.raises(RuntimeError):
            mshr.allocate(0x100, False, False, 0)

    def test_full_file_rejects_new_allocations(self):
        mshr = MshrFile(1)
        mshr.allocate(0x100, False, False, 0)
        assert mshr.full
        with pytest.raises(RuntimeError):
            mshr.allocate(0x200, False, False, 0)

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            MshrFile(2).release(0x500)


def make_l1(is_instruction=False):
    return L1Cache(CacheConfig(32 * 1024, 4, 64), "l1", is_instruction=is_instruction)


class TestL1Cache:
    def test_read_miss_then_fill_then_hit(self):
        l1 = make_l1()
        assert not l1.read(0x1000)
        l1.fill(0x1000, writable=False)
        assert l1.read(0x1000)
        assert l1.read_misses == 1
        assert l1.read_hits == 1

    def test_write_to_shared_line_needs_upgrade(self):
        l1 = make_l1()
        l1.fill(0x1000, writable=False)
        hit, needs_upgrade = l1.write(0x1000)
        assert not hit
        assert needs_upgrade
        assert l1.upgrade_misses == 1

    def test_write_to_writable_line_hits(self):
        l1 = make_l1()
        l1.fill(0x1000, writable=True)
        hit, needs_upgrade = l1.write(0x1000)
        assert hit
        assert not needs_upgrade

    def test_instruction_cache_rejects_writes(self):
        with pytest.raises(RuntimeError):
            make_l1(is_instruction=True).write(0x1000)

    def test_instruction_fills_are_never_writable(self):
        l1 = make_l1(is_instruction=True)
        l1.fill(0x1000, writable=True)
        assert l1.array.probe(0x1000) == CacheLineState.SHARED

    def test_snoop_invalidate(self):
        l1 = make_l1()
        l1.fill(0x1000, writable=True)
        previous = l1.snoop_invalidate(0x1000)
        assert previous == CacheLineState.MODIFIED
        assert not l1.read(0x1000)
        assert l1.snoop_invalidations == 1

    def test_snoop_downgrade(self):
        l1 = make_l1()
        l1.fill(0x1000, writable=True)
        l1.snoop_downgrade(0x1000)
        assert l1.array.probe(0x1000) == CacheLineState.SHARED
        hit, needs_upgrade = l1.write(0x1000)
        assert not hit and needs_upgrade

    def test_snoop_to_absent_line_is_harmless(self):
        l1 = make_l1()
        assert l1.snoop_invalidate(0x4000) is None
        assert l1.snoop_downgrade(0x4000) is None

    def test_miss_rate(self):
        l1 = make_l1()
        l1.read(0x0)
        l1.fill(0x0, writable=False)
        l1.read(0x0)
        assert l1.miss_rate == pytest.approx(0.5)


class TestLLCBank:
    def test_fill_then_contains(self):
        bank = LLCBank(CacheConfig(512 * 1024, 16, 64), "bank")
        assert not bank.contains(0x1000)
        bank.fill(0x1000)
        assert bank.contains(0x1000)
        assert bank.hits == 1
        assert bank.misses == 1

    def test_bank_occupancy_serializes_accesses(self):
        bank = LLCBank(CacheConfig(512 * 1024, 16, 64, hit_latency=8), "bank")
        first_done = bank.schedule_access(now=0)
        second_done = bank.schedule_access(now=0)
        assert first_done == 8
        assert second_done == 16
        assert bank.busy_conflicts == 1

    def test_idle_bank_has_no_conflicts(self):
        bank = LLCBank(CacheConfig(512 * 1024, 16, 64, hit_latency=8), "bank")
        bank.schedule_access(now=0)
        bank.schedule_access(now=100)
        assert bank.busy_conflicts == 0

    def test_writeback_installs_block(self):
        bank = LLCBank(CacheConfig(512 * 1024, 16, 64), "bank")
        bank.writeback(0x2000)
        assert bank.probe(0x2000)
