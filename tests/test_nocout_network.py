"""Tests for the NOC-Out organization: floorplan, trees and the LLC network."""

import pytest

from repro.chip.system_map import NocOutSystemMap
from repro.config.noc import Topology
from repro.core.floorplan import NocOutFloorplan, describe_nocout
from repro.core.nocout import NocOutNetwork
from repro.noc.message import Message, MessageClass, control_message_bits, data_message_bits
from repro.sim.kernel import Simulator

from tests._fixtures import small_system


def build_nocout(num_cores=16, **noc_kwargs):
    sim = Simulator(seed=2)
    config = small_system(Topology.NOC_OUT, num_cores=num_cores, **noc_kwargs)
    system_map = NocOutSystemMap(config)
    network = NocOutNetwork(
        sim,
        config,
        core_nodes=system_map.core_positions(),
        llc_nodes=system_map.llc_columns(),
        mc_nodes=system_map.mc_columns(),
    )
    received = {}
    for node in network.node_ids:
        network.register_endpoint(node, lambda msg, n=node: received.setdefault(n, []).append(msg))
    return sim, config, system_map, network, received


def send(network, src, dst, msg_class=MessageClass.REQUEST, data=False):
    bits = data_message_bits() if data else control_message_bits()
    message = Message(src=src, dst=dst, msg_class=msg_class, size_bits=bits)
    network.send(message)
    return message


class TestFloorplan:
    def test_64_core_layout(self):
        plan = NocOutFloorplan(small_system(Topology.NOC_OUT, num_cores=64))
        assert plan.columns == 8
        assert plan.core_rows == 8
        assert plan.rows_per_side == 4
        assert len(plan.tree_groups()) == 16  # two trees per column

    def test_tree_groups_cover_every_core_once(self):
        plan = NocOutFloorplan(small_system(Topology.NOC_OUT, num_cores=64))
        covered = [
            (group.column, row) for group in plan.tree_groups() for row in group.core_rows
        ]
        assert len(covered) == 64
        assert len(set(covered)) == 64

    def test_reduction_order_is_farthest_first(self):
        plan = NocOutFloorplan(small_system(Topology.NOC_OUT, num_cores=64))
        top = next(g for g in plan.tree_groups() if g.side == "top")
        bottom = next(g for g in plan.tree_groups() if g.side == "bottom")
        assert list(top.core_rows) == [0, 1, 2, 3]
        assert list(bottom.core_rows) == [7, 6, 5, 4]

    def test_side_of_row(self):
        plan = NocOutFloorplan(small_system(Topology.NOC_OUT, num_cores=64))
        assert plan.side_of_row(0) == "top"
        assert plan.side_of_row(7) == "bottom"
        with pytest.raises(ValueError):
            plan.side_of_row(8)

    def test_llc_row_sits_between_core_rows(self):
        plan = NocOutFloorplan(small_system(Topology.NOC_OUT, num_cores=64))
        top_y = plan.core_center_mm((0, 3))[1]
        llc_y = plan.llc_center_mm(0)[1]
        bottom_y = plan.core_center_mm((0, 4))[1]
        assert top_y < llc_y < bottom_y

    def test_odd_core_split_rejected(self):
        with pytest.raises(ValueError):
            NocOutFloorplan(small_system(Topology.NOC_OUT, num_cores=8))

    def test_descriptor_counts_tree_nodes_and_llc_routers(self):
        config = small_system(Topology.NOC_OUT, num_cores=64)
        descriptor = describe_nocout(config)
        labels = {spec.label: spec for spec in descriptor.routers}
        assert labels["reduction tree node"].count == 64
        assert labels["dispersion tree node"].count == 64
        assert labels["LLC network router"].count == 8
        assert labels["reduction tree node"].ports == 2


class TestNocOutNetwork:
    def test_core_to_llc_and_back(self):
        sim, _config, system_map, network, received = build_nocout()
        core_node = system_map.core_node(0)
        llc_node = system_map.llc_node(5)
        request = send(network, core_node, llc_node)
        sim.run(100)
        assert received[llc_node] == [request]
        response = send(network, llc_node, core_node, MessageClass.RESPONSE, data=True)
        sim.run(100)
        assert received[core_node] == [response]

    def test_all_cores_reach_all_llc_tiles(self):
        sim, _config, system_map, network, received = build_nocout()
        count = 0
        for core in range(16):
            for tile in range(8):
                send(network, system_map.core_node(core), system_map.llc_node(tile))
                count += 1
        sim.run(1000)
        delivered = sum(len(v) for v in received.values())
        assert delivered == count
        assert network.drained()

    def test_llc_reaches_every_core_through_dispersion_trees(self):
        sim, _config, system_map, network, received = build_nocout()
        for core in range(16):
            send(network, system_map.llc_node(0), system_map.core_node(core), MessageClass.SNOOP)
        sim.run(500)
        assert all(received[system_map.core_node(core)] for core in range(16))

    def test_memory_controllers_reachable_from_llc(self):
        sim, _config, system_map, network, received = build_nocout()
        mc = system_map.mc_node(0)
        send(network, system_map.llc_node(3), mc)
        sim.run(200)
        assert received[mc]

    def test_core_to_core_traffic_flows_through_llc_region(self):
        sim, _config, system_map, network, received = build_nocout()
        src = system_map.core_node(0)
        dst = system_map.core_node(8)  # other side of the LLC row
        message = send(network, src, dst, MessageClass.RESPONSE, data=True)
        sim.run(200)
        assert received[dst] == [message]

    def test_lower_latency_than_mesh_distance(self):
        sim, _config, system_map, network, _ = build_nocout()
        send(network, system_map.core_node(0), system_map.llc_node(7))
        sim.run(200)
        # Worst-case corner core to far LLC tile stays well under mesh costs.
        assert network.mean_latency() < 18

    def test_tree_node_counts(self):
        _sim, _config, _map, network, _ = build_nocout()
        # 16 cores with one core per half-column: 16 reduction + 16 dispersion nodes.
        assert network.num_tree_nodes == 32

    def test_concentration_halves_tree_nodes(self):
        _sim, _config, _map, baseline, _ = build_nocout(num_cores=32)
        _sim2, _config2, _map2, concentrated, _ = build_nocout(num_cores=32, tree_concentration=2)
        assert baseline.num_tree_nodes == 64
        assert concentrated.num_tree_nodes == 32

    def test_express_links_still_deliver(self):
        sim, _config, system_map, network, received = build_nocout(
            num_cores=64, tree_express_links=True
        )
        target = system_map.llc_node(0)
        message = send(network, system_map.core_node(0), target)
        sim.run(200)
        assert received[target] == [message]
        core = system_map.core_node(0)
        back = send(network, target, core, MessageClass.RESPONSE, data=True)
        sim.run(200)
        assert received[core] == [back]

    def test_round_robin_tree_arbitration_still_works(self):
        sim, _config, system_map, network, received = build_nocout(
            tree_arbitration="round_robin"
        )
        message = send(network, system_map.core_node(3), system_map.llc_node(1))
        sim.run(200)
        assert received[system_map.llc_node(1)] == [message]
