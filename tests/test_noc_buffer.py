"""Unit tests for virtual-channel buffers and input ports."""

import pytest

from repro.noc.buffer import InputPort, VirtualChannelBuffer, unbounded_input_port
from repro.noc.message import Message, MessageClass, Packet


def make_packet(flits=1, msg_class=MessageClass.REQUEST):
    return Packet(
        Message(src=0, dst=1, msg_class=msg_class, size_bits=flits * 128), link_width_bits=128
    )


class TestVirtualChannelBuffer:
    def test_reserve_then_push_then_pop(self):
        vc = VirtualChannelBuffer(capacity_flits=5)
        packet = make_packet(3)
        assert vc.can_reserve(3)
        vc.reserve(3)
        vc.push(packet)
        assert vc.occupancy_flits == 3
        assert vc.peek() is packet
        assert vc.pop() is packet
        assert vc.occupancy_flits == 0
        assert vc.reserved_flits == 0

    def test_cannot_overflow_capacity(self):
        vc = VirtualChannelBuffer(capacity_flits=5)
        vc.reserve(4)
        assert not vc.can_reserve(2)
        with pytest.raises(RuntimeError):
            vc.reserve(2)

    def test_oversized_packet_allowed_only_when_empty(self):
        vc = VirtualChannelBuffer(capacity_flits=3)
        assert vc.can_reserve(5)  # empty VC admits an oversized packet
        vc.reserve(5)
        assert not vc.can_reserve(1)

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            VirtualChannelBuffer(3).pop()

    def test_fifo_order(self):
        vc = VirtualChannelBuffer(capacity_flits=10)
        first, second = make_packet(1), make_packet(1)
        vc.reserve(1)
        vc.push(first)
        vc.reserve(1)
        vc.push(second)
        assert vc.pop() is first
        assert vc.pop() is second

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            VirtualChannelBuffer(0)

    def test_reserve_accounts_before_arrival(self):
        vc = VirtualChannelBuffer(capacity_flits=5)
        vc.reserve(5)
        assert vc.empty  # reserved but nothing buffered yet
        assert not vc.can_reserve(1)


class TestSpaceWaiters:
    def _full_vc(self, flits=5):
        vc = VirtualChannelBuffer(capacity_flits=flits)
        packet = make_packet(flits)
        vc.reserve(flits)
        vc.push(packet)
        return vc

    def test_waiter_fires_once_on_pop(self):
        vc = self._full_vc()
        fired = []
        vc.wait_for_space(lambda: fired.append(1))
        assert fired == []
        vc.pop()
        assert fired == [1]

    def test_waiter_is_one_shot(self):
        vc = VirtualChannelBuffer(capacity_flits=10)
        for _ in range(2):
            vc.reserve(5)
            vc.push(make_packet(5))
        fired = []
        vc.wait_for_space(lambda: fired.append(1))
        vc.pop()
        vc.pop()
        assert fired == [1]  # the second pop has no registered waiter left

    def test_waiters_are_deduplicated(self):
        vc = self._full_vc()
        fired = []

        def waiter():
            fired.append(1)

        vc.wait_for_space(waiter)
        vc.wait_for_space(waiter)
        vc.pop()
        assert fired == [1]

    def test_multiple_distinct_waiters_fire_in_registration_order(self):
        vc = self._full_vc()
        fired = []
        vc.wait_for_space(lambda: fired.append("a"))
        vc.wait_for_space(lambda: fired.append("b"))
        vc.pop()
        assert fired == ["a", "b"]

    def test_waiter_may_rearm_during_notification(self):
        vc = VirtualChannelBuffer(capacity_flits=10)
        for _ in range(2):
            vc.reserve(5)
            vc.push(make_packet(5))
        fired = []

        def waiter():
            fired.append(len(fired))
            vc.wait_for_space(waiter)  # still blocked: re-register

        vc.wait_for_space(waiter)
        vc.pop()
        vc.pop()
        assert fired == [0, 1]

    def test_pop_clears_cached_head_route(self):
        vc = self._full_vc()
        vc.head_route = ("sentinel",)
        vc.pop()
        assert vc.head_route is None


class TestInputPort:
    def test_default_vc_map_assigns_one_vc_per_class(self):
        port = InputPort(num_vcs=3, vc_depth_flits=5)
        assert port.vc_index_for(MessageClass.REQUEST) == 0
        assert port.vc_index_for(MessageClass.SNOOP) == 1
        assert port.vc_index_for(MessageClass.RESPONSE) == 2

    def test_two_vc_port_shares_a_vc(self):
        port = InputPort(
            num_vcs=2,
            vc_depth_flits=3,
            vc_map={MessageClass.REQUEST: 0, MessageClass.SNOOP: 0, MessageClass.RESPONSE: 1},
        )
        assert port.vc_index_for(MessageClass.REQUEST) == port.vc_index_for(MessageClass.SNOOP)
        assert port.vc_index_for(MessageClass.RESPONSE) == 1

    def test_vc_for_returns_matching_buffer(self):
        port = InputPort(num_vcs=3, vc_depth_flits=5)
        assert port.vc_for(MessageClass.RESPONSE) is port.vcs[2]

    def test_occupancy_and_empty(self):
        port = InputPort(num_vcs=2, vc_depth_flits=5)
        assert port.empty
        packet = make_packet(2)
        vc = port.vc_for(MessageClass.REQUEST)
        vc.reserve(2)
        vc.push(packet)
        assert not port.empty
        assert port.occupancy_flits == 2

    def test_invalid_vc_map_rejected(self):
        with pytest.raises(ValueError):
            InputPort(num_vcs=2, vc_depth_flits=3, vc_map={MessageClass.REQUEST: 5})

    def test_invalid_num_vcs_rejected(self):
        with pytest.raises(ValueError):
            InputPort(num_vcs=0, vc_depth_flits=3)

    def test_unbounded_port_never_backpressures(self):
        port = unbounded_input_port()
        vc = port.vc_for(MessageClass.RESPONSE)
        assert vc.can_reserve(10_000)
