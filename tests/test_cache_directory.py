"""Unit tests for the directory controller and coherence protocol."""

import pytest

from repro.cache.address import AddressMapper
from repro.cache.coherence import (
    CacheRequest,
    CoherenceRequestType,
    DirectoryEntry,
    DirectoryState,
    MemoryRequest,
    Response,
    ResponseType,
    SnoopRequest,
    SnoopType,
)
from repro.cache.directory import DirectoryController
from repro.config.cache import CacheConfig
from repro.noc.message import MessageClass
from repro.sim.kernel import Simulator

HOME_NODE = 100
MC_NODE = 200


class Harness:
    """A directory wired to a message recorder instead of a network."""

    def __init__(self, banks=1):
        self.sim = Simulator(seed=0)
        self.sent = []
        mapper = AddressMapper(block_size=64, num_llc_banks=16, num_memory_channels=4)
        self.directory = DirectoryController(
            self.sim,
            "dir",
            node_id=HOME_NODE,
            bank_configs=[CacheConfig(256 * 1024, 16, 64, hit_latency=4)] * banks,
            mapper=mapper,
            send=self.record,
            core_node_for=lambda core: core,  # node id == core id in this harness
            mc_node_for=lambda addr: MC_NODE,
        )

    def record(self, dst, msg_class, payload, carries_data):
        self.sent.append((dst, msg_class, payload, carries_data))

    def gets(self, addr, core, is_instruction=False):
        self.directory.handle_request(
            CacheRequest(CoherenceRequestType.GETS, addr, core, core, is_instruction)
        )

    def getx(self, addr, core):
        self.directory.handle_request(CacheRequest(CoherenceRequestType.GETX, addr, core, core))

    def putm(self, addr, core):
        self.directory.handle_request(CacheRequest(CoherenceRequestType.PUTM, addr, core, core))

    def run(self, cycles=50):
        self.sim.run(cycles)

    def sent_of_type(self, resp_type):
        return [p for _d, _c, p, _dd in self.sent if isinstance(p, Response) and p.resp_type == resp_type]

    def snoops(self):
        return [p for _d, _c, p, _dd in self.sent if isinstance(p, SnoopRequest)]

    def memory_requests(self):
        return [p for _d, _c, p, _dd in self.sent if isinstance(p, MemoryRequest)]


def test_gets_hit_returns_data_and_adds_sharer():
    harness = Harness()
    harness.directory.warm_fill(0x1000)
    harness.gets(0x1000, core=1)
    harness.run()
    data = harness.sent_of_type(ResponseType.DATA)
    assert len(data) == 1
    assert not data[0].grants_exclusive
    entry = harness.directory.entries[0x1000]
    assert entry.state == DirectoryState.SHARED
    assert entry.sharers == {1}


def test_gets_miss_fetches_from_memory():
    harness = Harness()
    harness.gets(0x2000, core=2)
    harness.run()
    assert len(harness.memory_requests()) == 1
    assert not harness.sent_of_type(ResponseType.DATA)
    # Memory responds; the directory then answers the core.
    harness.directory.handle_response(Response(ResponseType.MEM_DATA, 0x2000))
    harness.run()
    assert len(harness.sent_of_type(ResponseType.DATA)) == 1
    assert harness.directory.bank_for(0x2000).probe(0x2000)


def test_getx_grants_exclusive_ownership():
    harness = Harness()
    harness.directory.warm_fill(0x3000)
    harness.getx(0x3000, core=3)
    harness.run()
    data = harness.sent_of_type(ResponseType.DATA)
    assert data and data[0].grants_exclusive
    entry = harness.directory.entries[0x3000]
    assert entry.state == DirectoryState.MODIFIED
    assert entry.owner == 3


def test_getx_invalidates_other_sharers_and_waits_for_acks():
    harness = Harness()
    harness.directory.warm_fill(0x4000, sharer=1)
    harness.directory.warm_fill(0x4000, sharer=2)
    harness.getx(0x4000, core=3)
    harness.run()
    snoops = harness.snoops()
    assert {s.target_core for s in snoops} == {1, 2}
    assert all(s.snoop_type == SnoopType.INVALIDATE for s in snoops)
    assert not harness.sent_of_type(ResponseType.DATA)  # waiting for acks
    harness.directory.handle_response(Response(ResponseType.INV_ACK, 0x4000, target_core=1))
    harness.directory.handle_response(Response(ResponseType.INV_ACK, 0x4000, target_core=2))
    harness.run()
    assert len(harness.sent_of_type(ResponseType.DATA)) == 1
    assert harness.directory.entries[0x4000].owner == 3


def test_gets_to_modified_block_forwards_from_owner():
    harness = Harness()
    harness.directory.warm_fill(0x5000, sharer=7, writable=True)
    harness.gets(0x5000, core=1)
    harness.run()
    snoops = harness.snoops()
    assert len(snoops) == 1
    assert snoops[0].snoop_type == SnoopType.FORWARD
    assert snoops[0].target_core == 7
    harness.directory.handle_response(Response(ResponseType.FWD_DATA, 0x5000, target_core=7))
    harness.run()
    data = harness.sent_of_type(ResponseType.DATA)
    assert len(data) == 1
    entry = harness.directory.entries[0x5000]
    assert entry.state == DirectoryState.SHARED
    assert entry.sharers == {1, 7}


def test_getx_to_modified_block_forward_invalidates_owner():
    harness = Harness()
    harness.directory.warm_fill(0x6000, sharer=7, writable=True)
    harness.getx(0x6000, core=1)
    harness.run()
    snoops = harness.snoops()
    assert snoops[0].snoop_type == SnoopType.FORWARD_INV
    harness.directory.handle_response(Response(ResponseType.FWD_DATA, 0x6000, target_core=7))
    harness.run()
    entry = harness.directory.entries[0x6000]
    assert entry.state == DirectoryState.MODIFIED
    assert entry.owner == 1


def test_owner_rereading_its_own_block_does_not_snoop():
    harness = Harness()
    harness.directory.warm_fill(0x7000, sharer=4, writable=True)
    harness.gets(0x7000, core=4)
    harness.run()
    assert not harness.snoops()
    assert len(harness.sent_of_type(ResponseType.DATA)) == 1


def test_writeback_clears_ownership():
    harness = Harness()
    harness.directory.warm_fill(0x8000, sharer=5, writable=True)
    harness.putm(0x8000, core=5)
    harness.run()
    entry = harness.directory.entries[0x8000]
    assert entry.state == DirectoryState.INVALID
    assert entry.owner is None
    assert harness.directory.writebacks.value == 1


def test_requests_to_same_block_serialize():
    harness = Harness()
    harness.gets(0x9000, core=1)
    harness.gets(0x9000, core=2)
    harness.run()
    # Both are waiting on the same memory fetch; only one was issued.
    assert len(harness.memory_requests()) == 1
    harness.directory.handle_response(Response(ResponseType.MEM_DATA, 0x9000))
    harness.run()
    # First requester answered; the second transaction now proceeds (hit).
    assert len(harness.sent_of_type(ResponseType.DATA)) == 2


def test_snoop_rate_statistic():
    harness = Harness()
    harness.directory.warm_fill(0xA000, sharer=1)
    harness.directory.warm_fill(0xB000)
    harness.getx(0xA000, core=2)  # triggers an invalidation
    harness.gets(0xB000, core=2)  # plain hit
    harness.run()
    harness.directory.handle_response(Response(ResponseType.INV_ACK, 0xA000, target_core=1))
    harness.run()
    assert harness.directory.llc_accesses.value == 2
    assert harness.directory.snoop_triggering_accesses.value == 1
    assert harness.directory.snoop_rate == pytest.approx(0.5)


def test_bank_selection_by_address():
    harness = Harness(banks=2)
    assert harness.directory.bank_for(0 * 64) is harness.directory.banks[0]
    assert harness.directory.bank_for(1 * 64) is harness.directory.banks[1]
    assert harness.directory.bank_for(2 * 64) is harness.directory.banks[0]


def test_stale_response_is_ignored():
    harness = Harness()
    harness.directory.handle_response(Response(ResponseType.INV_ACK, 0xC000, target_core=1))
    assert not harness.sent
    assert 0xC000 not in harness.directory.transactions


def test_reset_statistics_preserves_contents():
    harness = Harness()
    harness.directory.warm_fill(0xD000)
    harness.gets(0xD000, core=1)
    harness.run()
    harness.directory.reset_statistics()
    assert harness.directory.llc_accesses.value == 0
    assert harness.directory.bank_for(0xD000).probe(0xD000)


def test_directory_entry_invariants():
    entry = DirectoryEntry(state=DirectoryState.MODIFIED, sharers={1}, owner=1)
    entry.check_invariants()
    bad = DirectoryEntry(state=DirectoryState.MODIFIED, sharers={1, 2}, owner=1)
    with pytest.raises(AssertionError):
        bad.check_invariants()
    empty_m = DirectoryEntry(state=DirectoryState.MODIFIED)
    with pytest.raises(AssertionError):
        empty_m.check_invariants()


def test_request_latency_recorded():
    harness = Harness()
    harness.directory.warm_fill(0xE000)
    harness.gets(0xE000, core=1)
    harness.run()
    assert harness.directory.request_latency.count == 1
    assert harness.directory.request_latency.mean >= 4  # at least the bank latency
