"""Cross-transport determinism battery for the vectorized NoC engine.

``REPRO_TRANSPORT=vector`` swaps the per-router scalar ticks for the
batched :class:`repro.noc.vector.VectorTransportEngine` and must be
*bit-identical* to the scalar reference — same event counts, same stats
trees, no ``MODEL_VERSION`` bump.  This module proves that across the
mesh-family fabrics (mesh, cmesh, chiplet), under both kernels (calendar
and heap), on a tenanted open-loop chip, and across process restarts with
different hash seeds; plus the selection plumbing — env validation,
numpy-less fallback, and the non-mesh-fabric fallback warning.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chip.builder import build_chip, build_network
from repro.chip.chip import Chip
from repro.chip.system_map import build_system_map
from repro.config.noc import NocConfig, Topology
from repro.config.system import SystemConfig
from repro.fabrics import ChipletNetwork, ChipletSystemMap, chiplet_system, cmesh_system
from repro.noc.interface import NetworkInterface
from repro.noc.mesh import MeshNetwork
from repro.noc.vector import (
    TRANSPORT_ENV_VAR,
    VectorNetworkInterface,
    VectorRouter,
    VectorTransportEngine,
    resolve_transport,
    transport_mode,
)
from repro.sim.kernel import HeapSimulator, Simulator
from repro.sim.soa import HAVE_NUMPY
from repro.tenancy import build_placement
from repro.workloads.traffic import UniformRandomTrafficGenerator

from tests._fixtures import small_system

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Tests that need REPRO_TRANSPORT=vector to actually engage (without
#: numpy it falls back to scalar, which its own test covers).
needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable: vector falls back to scalar"
)

#: Injection rate for the determinism runs: heavy enough (with 64-bit
#: links) that credit blocking, busy-port wakes, multi-candidate
#: arbitration and the engine's late/fallback paths all exercise.
RATE = 0.2


def stats_blob(sim, network, generator) -> str:
    tree = {
        "events": sim.events_processed,
        "network": network.stats.to_dict(),
        "generator": generator.stats.to_dict(),
        "interfaces": {
            node: (ni.messages_injected, ni.messages_delivered, ni.flits_injected)
            for node, ni in network.interfaces.items()
        },
    }
    return json.dumps(tree, sort_keys=True, default=str)


def run_mesh(kernel_cls):
    sim = kernel_cls(seed=3)
    config = small_system(Topology.MESH, num_cores=16, link_width_bits=64)
    coords = {i: (i % 4, i // 4) for i in range(16)}
    network = MeshNetwork(sim, config, coords)
    generator = UniformRandomTrafficGenerator(sim, network, list(coords), RATE, seed=5)
    generator.start()
    sim.run(2_000)
    return stats_blob(sim, network, generator)


def run_cmesh(kernel_cls):
    sim = kernel_cls(seed=3)
    config = cmesh_system(num_cores=64, link_width_bits=64)
    system_map = build_system_map(config)
    network = build_network(sim, config, system_map)
    nodes = list(range(64))
    generator = UniformRandomTrafficGenerator(sim, network, nodes, RATE, seed=5)
    generator.start()
    sim.run(2_000)
    return stats_blob(sim, network, generator)


def run_chiplet(kernel_cls):
    sim = kernel_cls(seed=3)
    config = chiplet_system(num_cores=64)
    network = ChipletNetwork(sim, config, ChipletSystemMap(config))
    generator = UniformRandomTrafficGenerator(
        sim, network, list(range(64)), 0.05, seed=7
    )
    generator.start()
    sim.run(2_000)
    return stats_blob(sim, network, generator)


SCENARIOS = {"mesh": run_mesh, "cmesh": run_cmesh, "chiplet": run_chiplet}


# ----------------------------------------------------------------------- #
# Selection plumbing
# ----------------------------------------------------------------------- #
class TestTransportSelection:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
        assert transport_mode() == "scalar"
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "scalar")
        assert transport_mode() == "scalar"

    def test_vector_is_recognized(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "  Vector ")
        assert transport_mode() == "vector"

    def test_unknown_transport_rejected(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "simd")
        with pytest.raises(ValueError, match="REPRO_TRANSPORT"):
            transport_mode()

    def test_vector_without_numpy_falls_back_with_warning(self, monkeypatch):
        import repro.noc.vector as vector_module

        monkeypatch.setenv(TRANSPORT_ENV_VAR, "vector")
        monkeypatch.setattr(vector_module, "HAVE_NUMPY", False)
        with pytest.warns(RuntimeWarning, match="requires numpy"):
            assert resolve_transport() == "scalar"

    def test_non_mesh_fabric_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "vector")
        config = small_system(Topology.IDEAL)
        sim = Simulator(seed=1)
        with pytest.warns(RuntimeWarning, match="no .*vectorized transport"):
            network = build_network(sim, config, build_system_map(config))
        assert getattr(network, "transport", "scalar") == "scalar"

    @needs_numpy
    def test_vector_mesh_swaps_router_and_interface_classes(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "vector")
        config = small_system(Topology.MESH, num_cores=16)
        coords = {i: (i % 4, i // 4) for i in range(16)}
        network = MeshNetwork(Simulator(seed=1), config, coords)
        assert network.transport == "vector"
        assert all(type(r) is VectorRouter for r in network.routers)
        assert all(
            type(ni) is VectorNetworkInterface for ni in network.interfaces.values()
        )

    def test_scalar_mesh_keeps_plain_classes(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
        config = small_system(Topology.MESH, num_cores=16)
        coords = {i: (i % 4, i // 4) for i in range(16)}
        network = MeshNetwork(Simulator(seed=1), config, coords)
        assert network.transport == "scalar"
        assert all(type(r) is not VectorRouter for r in network.routers)
        assert all(
            type(ni) is NetworkInterface for ni in network.interfaces.values()
        )

    @needs_numpy
    def test_engine_finalize_is_single_shot(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "vector")
        config = small_system(Topology.MESH, num_cores=16)
        coords = {i: (i % 4, i // 4) for i in range(16)}
        network = MeshNetwork(Simulator(seed=1), config, coords)
        engine = network._transport_engine
        assert isinstance(engine, VectorTransportEngine)
        with pytest.raises(RuntimeError, match="finalize called twice"):
            engine.finalize(network.routers)


# ----------------------------------------------------------------------- #
# Bit-identity: fabrics x kernels
# ----------------------------------------------------------------------- #
@needs_numpy
class TestCrossTransportDeterminism:
    @pytest.mark.parametrize("fabric", sorted(SCENARIOS))
    @pytest.mark.parametrize(
        "kernel_cls", [Simulator, HeapSimulator], ids=["calendar", "heap"]
    )
    def test_vector_matches_scalar(self, fabric, kernel_cls, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
        scalar = SCENARIOS[fabric](kernel_cls)
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "vector")
        vector = SCENARIOS[fabric](kernel_cls)
        assert scalar == vector

    def test_vector_matches_scalar_on_tenanted_open_loop_chip(self, monkeypatch):
        def run_chip():
            wmap = build_placement(
                "split_half",
                16,
                ["Data Serving", "MapReduce-C"],
                arrival="bursty",
                rate=0.08,
            )
            config = small_system(Topology.MESH, num_cores=16).with_workload_map(wmap)
            results = Chip(config).run_experiment(
                warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
            )
            return json.dumps(results.to_dict(), sort_keys=True, default=str)

        monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
        scalar = run_chip()
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "vector")
        vector = run_chip()
        assert scalar == vector

    def test_vector_chip_is_stable_across_process_restarts(self):
        script = (
            "import hashlib, json\n"
            "from repro.chip.builder import build_chip\n"
            "from repro.config import presets\n"
            "from tests._fixtures import small_system\n"
            "from repro.config.noc import Topology\n"
            "config = small_system(Topology.MESH, num_cores=16).with_workload("
            "presets.workload('MapReduce-W'))\n"
            "results = build_chip(config).run_experiment(warmup_references=300,"
            " detailed_warmup_cycles=200, measure_cycles=600)\n"
            "blob = json.dumps(results.to_dict(), sort_keys=True, default=str)\n"
            "print(hashlib.sha256(blob.encode('utf-8')).hexdigest())\n"
        )
        digests = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(REPO_ROOT / "src"), str(REPO_ROOT)]
            )
            env["PYTHONHASHSEED"] = hash_seed
            env[TRANSPORT_ENV_VAR] = "vector"
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(completed.stdout.strip())
        assert digests[0] == digests[1]
