"""Event-driven wake machinery under backpressure.

The kernel's contract is that idle components cost nothing per cycle.
These tests pin down the strongest form of that promise: a router (or a
whole congested mesh) whose head packets are all blocked on downstream
credit schedules *zero* kernel events until credit returns, and the credit
return itself (a ``VirtualChannelBuffer.pop``) is what restarts switching.
"""

import pytest

from repro.chip.chip import SimulationResults
from repro.config.noc import Topology
from repro.experiments.engine import ExperimentPoint, SweepExecutor
from repro.noc.buffer import InputPort
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message, MessageClass, Packet
from repro.noc.router import PacketSink, Router
from repro.sim.kernel import Simulator

from tests._fixtures import TINY_SETTINGS, small_system, small_workload


def make_packet(dst=5, flits=1, msg_class=MessageClass.REQUEST):
    return Packet(
        Message(src=0, dst=dst, msg_class=msg_class, size_bits=flits * 128), 128
    )


def inject(router, packet, in_port=0):
    vc_index = router.input_ports[in_port].vc_index_for(packet.msg_class)
    vc = router.input_ports[in_port].vcs[vc_index]
    vc.reserve(packet.num_flits)
    router.receive_packet(packet, in_port, vc_index)


class BlockingSink(PacketSink):
    """A downstream port whose VCs can be plugged and unplugged at will."""

    def __init__(self):
        self.input_ports = [InputPort(3, vc_depth_flits=5)]
        self.received = []
        self._plugs = {}

    def plug(self):
        """Fill every VC with a dummy packet so nothing can reserve space."""
        for index, vc in enumerate(self.input_ports[0].vcs):
            dummy = make_packet(flits=vc.capacity_flits)
            vc.reserve(dummy.num_flits)
            vc.push(dummy)
            self._plugs[index] = dummy

    def unplug(self):
        """Drain the dummies; their pops return credit to any waiters."""
        for index in list(self._plugs):
            self.input_ports[0].vcs[index].pop()
            del self._plugs[index]

    def receive_packet(self, packet, in_port, vc_index):
        self.input_ports[in_port].vcs[vc_index].push(packet)
        self.received.append(packet)


class TestSingleRouterBackpressure:
    def test_credit_blocked_router_schedules_zero_events(self):
        sim = Simulator()
        router = Router(sim, "r0", pipeline_latency=2)
        sink = BlockingSink()
        sink.plug()
        router.add_input_port(InputPort(3, 20))
        router.set_route(5, router.add_output_port("out", sink, 0, link_latency=1))

        for _ in range(3):
            inject(router, make_packet(flits=5, msg_class=MessageClass.RESPONSE))
        sim.run_to_completion(max_cycles=50)

        # Fully blocked: packets are buffered, but the event queue is empty
        # and a long idle window processes not a single kernel event.
        assert router.buffered_packets == 3
        assert sim.pending_events == 0
        assert sim.run(1_000) == 0

        # Credit return restarts switching without any polling help.
        sink.unplug()
        sim.run_to_completion(max_cycles=100)
        assert len(sink.received) == 1  # one 5-flit packet fits the freed VC
        assert router.buffered_packets == 2

    def test_busy_port_wakes_router_exactly_at_expiry(self):
        sim = Simulator()
        router = Router(sim, "r0", pipeline_latency=1)
        sink = BlockingSink()  # unplugged: always room for one 5-flit packet
        router.add_input_port(InputPort(3, 20))
        router.set_route(5, router.add_output_port("out", sink, 0, link_latency=1))

        first = make_packet(flits=5, msg_class=MessageClass.RESPONSE)
        inject(router, first)
        sim.run(1)
        # Forwarded at cycle 0: the output port serialises 5 flits.
        assert router.output_ports[0].busy_until == 5

        second = make_packet(flits=1, msg_class=MessageClass.REQUEST)
        inject(router, second)
        drained = sim.run(1)  # the arrival tick sees the busy port...
        assert drained > 0
        assert sim.pending_events == 1  # ...and leaves exactly one wake, at expiry
        assert sim.next_event_cycle == 5
        sim.run(10)
        assert router.packets_switched == 2


class TestCongestedMeshBackpressure:
    def _build_congested_mesh(self):
        """A 4x4 mesh with every input VC of the hotspot router plugged."""
        config = small_system(Topology.MESH)
        sim = Simulator(seed=3)
        coords = {i: (i % 4, i // 4) for i in range(16)}
        network = MeshNetwork(sim, config, coords)
        network.register_endpoint(15, lambda message: None)
        for node in range(15):
            network.register_endpoint(node, lambda message: None)

        hotspot = network.router_at((3, 3))
        plugs = []
        for port in hotspot.input_ports:
            for vc in port.vcs:
                dummy = make_packet(flits=vc.capacity_flits)
                vc.reserve(dummy.num_flits)
                vc.push(dummy)
                plugs.append((hotspot, vc))
        return sim, network, hotspot, plugs

    def test_fully_blocked_mesh_processes_zero_events(self):
        sim, network, hotspot, plugs = self._build_congested_mesh()
        # Every node floods the plugged corner with data packets.
        for node in range(15):
            for _ in range(3):
                network.send(
                    Message(
                        src=node, dst=15, msg_class=MessageClass.RESPONSE, size_bits=640
                    )
                )
        sim.run_to_completion(max_cycles=2_000)

        buffered = sum(router.buffered_packets for router in network.routers)
        assert buffered > 0  # congestion built up behind the plugged router
        assert not network.drained()
        # The key property: a blocked mesh is *silent* — no polling events.
        assert sim.pending_events == 0
        assert sim.run(10_000) == 0

        # Returning credit at the hotspot un-dams the whole backlog.
        for router, vc in plugs:
            vc.pop()
        sim.run_to_completion(max_cycles=50_000)
        assert network.drained()
        assert int(network.messages_delivered.value) == 45

    def test_blocked_then_released_mesh_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            sim, network, hotspot, plugs = self._build_congested_mesh()
            for node in range(15):
                network.send(
                    Message(
                        src=node, dst=15, msg_class=MessageClass.RESPONSE, size_bits=640
                    )
                )
            sim.run_to_completion(max_cycles=2_000)
            for router, vc in plugs:
                vc.pop()
            sim.run_to_completion(max_cycles=50_000)
            outcomes.append(
                (
                    sim.cycle,
                    sim.events_processed,
                    network.mean_latency(),
                    [router.packets_switched for router in network.routers],
                )
            )
        assert outcomes[0] == outcomes[1]


class TestWakeMachineryDeterminism:
    """Serial vs. parallel sweeps agree on a congested 4x4 mesh."""

    def _congested_points(self):
        # 32-bit links turn every data message into a 20-flit packet, which
        # saturates the 5-flit VCs and keeps the mesh credit-blocked for
        # most of the run — exactly the regime the event-driven wake-ups
        # must not perturb.
        workload = small_workload()
        points = []
        for link_width in (32, 64):
            config = small_system(
                Topology.MESH, link_width_bits=link_width
            ).with_workload(workload)
            points.append(ExperimentPoint(config=config, settings=TINY_SETTINGS))
        return points

    def test_parallel_results_match_serial(self, tmp_path):
        points = self._congested_points()
        serial = SweepExecutor(jobs=1, use_cache=False).run(points)
        parallel = SweepExecutor(jobs=2, use_cache=False).run(points)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]
        assert all(isinstance(r, SimulationResults) for r in parallel)
        assert all(r.total_instructions > 0 for r in serial)
