"""Unit tests for the configuration objects (Table 1 parameters)."""

import pytest

from repro.config.cache import CacheConfig, CacheHierarchyConfig
from repro.config.core import CoreConfig
from repro.config.noc import NocConfig, Topology
from repro.config.system import SystemConfig, default_mesh_dimensions
from repro.config.technology import TechnologyConfig
from repro.config.workload import WorkloadConfig


class TestTechnology:
    def test_defaults_match_paper(self):
        tech = TechnologyConfig()
        assert tech.node_nm == 32
        assert tech.frequency_ghz == 2.0
        assert tech.wire_latency_ps_per_mm == 125.0
        assert tech.cache_area_mm2_per_mb == pytest.approx(3.2)
        assert tech.core_area_mm2 == pytest.approx(2.9)

    def test_cycle_time(self):
        assert TechnologyConfig().cycle_time_ps == pytest.approx(500.0)

    def test_wire_cycles_zero_distance(self):
        assert TechnologyConfig().wire_cycles(0.0) == 0

    def test_wire_cycles_short_distance_is_one_cycle(self):
        # 2 mm at 125 ps/mm = 250 ps < one 500 ps cycle.
        assert TechnologyConfig().wire_cycles(2.0) == 1

    def test_wire_cycles_long_distance(self):
        # 12 mm = 1500 ps = 3 cycles.
        assert TechnologyConfig().wire_cycles(12.0) == 3

    def test_wire_reach_per_cycle(self):
        assert TechnologyConfig().wire_reach_mm_per_cycle() == pytest.approx(4.0)

    def test_link_energy_scales_with_bits_and_distance(self):
        tech = TechnologyConfig()
        single = tech.link_energy_joules(1, 1.0)
        assert single == pytest.approx(50e-15)
        assert tech.link_energy_joules(128, 2.0) == pytest.approx(single * 256)


class TestCoreConfig:
    def test_defaults_match_paper(self):
        core = CoreConfig()
        assert core.issue_width == 3
        assert core.rob_entries == 64
        assert core.lsq_entries == 16

    def test_invalid_issue_width_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)

    def test_invalid_mlp_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(max_outstanding_data_misses=0)


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(32 * 1024, 4, 64)
        assert config.num_blocks == 512
        assert config.num_sets == 128

    def test_block_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 2, 48)

    def test_size_must_divide_evenly(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64)

    def test_llc_bank_split(self):
        hierarchy = CacheHierarchyConfig()
        bank = hierarchy.llc_bank_config(16)
        assert bank.size_bytes == 512 * 1024
        assert bank.associativity == 16

    def test_llc_bank_split_must_divide(self):
        with pytest.raises(ValueError):
            CacheHierarchyConfig().llc_bank_config(3)

    def test_default_hierarchy_matches_table1(self):
        hierarchy = CacheHierarchyConfig()
        assert hierarchy.llc_total_bytes == 8 * 1024 * 1024
        assert hierarchy.l1i.size_bytes == 32 * 1024
        assert hierarchy.dram_channels == 4


class TestNocConfig:
    def test_default_topology_is_mesh(self):
        assert NocConfig().topology == Topology.MESH

    def test_llc_banks(self):
        assert NocConfig().llc_banks == 16

    def test_with_link_width(self):
        narrow = NocConfig().with_link_width(32)
        assert narrow.link_width_bits == 32
        assert NocConfig().link_width_bits == 128  # original untouched

    def test_with_topology(self):
        assert NocConfig().with_topology(Topology.NOC_OUT).topology == Topology.NOC_OUT

    def test_invalid_link_width_rejected(self):
        with pytest.raises(ValueError):
            NocConfig(link_width_bits=4)

    def test_invalid_arbitration_rejected(self):
        with pytest.raises(ValueError):
            NocConfig(tree_arbitration="lottery")

    def test_invalid_concentration_rejected(self):
        with pytest.raises(ValueError):
            NocConfig(tree_concentration=0)


class TestWorkloadConfig:
    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="bad", data_reuse_fraction=1.5)

    def test_scaled_cores(self):
        workload = WorkloadConfig(name="w", max_cores=16)
        assert workload.scaled_cores(64) == 16
        assert workload.scaled_cores(8) == 8

    def test_positive_sizes_enforced(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="bad", dataset_bytes=0)


class TestSystemConfig:
    def test_default_is_64_core_table1_chip(self):
        config = SystemConfig()
        assert config.num_cores == 64
        assert config.mesh_dimensions == (8, 8)
        assert config.num_memory_controllers == 4

    def test_known_grid_sizes(self):
        assert default_mesh_dimensions(16) == (4, 4)
        assert default_mesh_dimensions(2) == (2, 1)

    def test_untabulated_counts_factorise_near_square(self):
        assert default_mesh_dimensions(24) == (6, 4)
        assert default_mesh_dimensions(96) == (12, 8)

    def test_degenerate_grid_rejected_with_guidance(self):
        with pytest.raises(ValueError, match=r"17x1.*max_aspect_ratio=None"):
            default_mesh_dimensions(17)
        with pytest.raises(ValueError, match="positive"):
            default_mesh_dimensions(0)
        # The escape hatch accepts the skewed grid explicitly.
        assert default_mesh_dimensions(17, max_aspect_ratio=None) == (17, 1)

    def test_with_helpers_produce_copies(self):
        config = SystemConfig()
        other = config.with_cores(16).with_topology(Topology.NOC_OUT)
        assert other.num_cores == 16
        assert other.noc.topology == Topology.NOC_OUT
        assert config.num_cores == 64

    def test_active_cores_follows_workload_limit(self):
        workload = WorkloadConfig(name="w", max_cores=16)
        config = SystemConfig().with_workload(workload)
        assert config.active_cores == 16

    def test_tile_width_is_positive(self):
        assert SystemConfig().tile_width_mm > 1.0
