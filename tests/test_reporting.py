"""Tests for the paper-vs-measured reporting layer (repro.reporting)."""

import pytest

from repro.reporting import (
    BASELINES,
    Baseline,
    FigureReport,
    baseline,
    baseline_names,
    build_report,
    compare,
    render_figure,
    render_report,
    report_names,
    status_table,
)
from repro.reporting.baselines import KEY_SEPARATOR
from repro.reporting.cli import CountingExecutor, generate, main
from repro.reporting.compare import (
    STATUS_FAIL,
    STATUS_NO_DATA,
    STATUS_PARTIAL,
    STATUS_PASS,
)
from repro.reporting.render import ascii_bar_chart, delta_table
from repro.reporting.tables import markdown_table
from repro.scenarios import ResultSet

from tests._fixtures import TINY_SETTINGS

TEST_BASELINE = Baseline(
    figure="test",
    title="Test figure",
    quantity="a quantity",
    unit="x",
    values={"a": 1.0, "b": 2.0},
    rel_tolerance=0.10,
    abs_tolerance=0.0,
    source="Figure T",
)


# --------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------- #
class TestBaselines:
    def test_every_baseline_has_a_reporter(self):
        assert baseline_names() == report_names()

    def test_baselines_are_well_formed(self):
        for name in baseline_names():
            table = baseline(name)
            assert table.values, name
            assert table.unit, name
            assert table.source, name
            assert table.rel_tolerance > 0 or table.abs_tolerance > 0, name

    def test_unknown_baseline_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            baseline("fig999")

    def test_missing_point_key_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            TEST_BASELINE.value("zzz")

    def test_nested_splits_two_part_keys(self):
        nested = BASELINES["fig7"].nested()
        assert nested["Web Search"]["noc_out"] == pytest.approx(1.10)
        assert all(KEY_SEPARATOR not in outer for outer in nested)

    def test_baseline_requires_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            Baseline(
                figure="bad",
                title="t",
                quantity="q",
                unit="x",
                values={"a": 1.0},
            )


# --------------------------------------------------------------------- #
# Comparison
# --------------------------------------------------------------------- #
class TestCompare:
    def test_pass_when_all_points_inside_band(self):
        comparison = compare(TEST_BASELINE, {"a": 1.05, "b": 2.1})
        assert comparison.status == STATUS_PASS
        assert comparison.n_within == comparison.n_measured == 2

    def test_fail_when_any_point_outside_band(self):
        comparison = compare(TEST_BASELINE, {"a": 1.5, "b": 2.0})
        assert comparison.status == STATUS_FAIL
        assert comparison.n_within == 1

    def test_partial_when_baseline_key_unmeasured(self):
        """A measured mapping missing a baseline key reads as partial."""
        comparison = compare(TEST_BASELINE, {"a": 1.0})
        assert comparison.status == STATUS_PARTIAL
        assert comparison.n_measured == 1
        missing = [d for d in comparison.deltas if d.measured is None]
        assert [d.key for d in missing] == ["b"]
        assert missing[0].abs_error is None
        assert missing[0].rel_error is None
        assert comparison.verdict(missing[0]) is None

    def test_no_data_when_nothing_measured(self):
        comparison = compare(TEST_BASELINE, {})
        assert comparison.status == STATUS_NO_DATA
        assert comparison.max_rel_error is None

    def test_extra_measured_keys_ignored(self):
        comparison = compare(TEST_BASELINE, {"a": 1.0, "b": 2.0, "zzz": 9.0})
        assert comparison.n_points == 2
        assert comparison.status == STATUS_PASS

    def test_tolerance_boundary_counts_as_within(self):
        """Exactly rel_tolerance away is inside the band (<=, not <)."""
        comparison = compare(TEST_BASELINE, {"a": 1.10, "b": 2.0})
        assert comparison.status == STATUS_PASS
        # ...and epsilon past it is outside.
        comparison = compare(TEST_BASELINE, {"a": 1.1001, "b": 2.0})
        assert comparison.status == STATUS_FAIL

    def test_abs_tolerance_boundary(self):
        table = Baseline(
            figure="abs",
            title="t",
            quantity="q",
            unit="W",
            values={"a": 2.0},
            abs_tolerance=0.5,
        )
        assert compare(table, {"a": 2.5}).status == STATUS_PASS
        assert compare(table, {"a": 2.51}).status == STATUS_FAIL

    def test_zero_paper_value_uses_abs_tolerance(self):
        table = Baseline(
            figure="zero",
            title="t",
            quantity="q",
            unit="x",
            values={"a": 0.0},
            rel_tolerance=0.1,
            abs_tolerance=0.2,
        )
        comparison = compare(table, {"a": 0.1})
        assert comparison.deltas[0].rel_error is None
        assert comparison.status == STATUS_PASS
        assert compare(table, {"a": 0.3}).status == STATUS_FAIL

    def test_errors_computed(self):
        comparison = compare(TEST_BASELINE, {"a": 1.2, "b": 2.0})
        delta = comparison.deltas[0]
        assert delta.abs_error == pytest.approx(0.2)
        assert delta.rel_error == pytest.approx(0.2)
        assert comparison.max_rel_error == pytest.approx(0.2)
        assert comparison.mean_rel_error == pytest.approx(0.1)


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #
class TestRender:
    def test_markdown_table_shape(self):
        text = markdown_table(("A", "B"), [("x", 1.0)])
        lines = text.splitlines()
        assert lines[0] == "| A | B |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| x | 1.000 |"
        with pytest.raises(ValueError):
            markdown_table(("A",), [("x", "y")])

    def test_delta_table_marks_missing_and_failing(self):
        comparison = compare(TEST_BASELINE, {"a": 1.5})
        text = delta_table(comparison)
        assert "NO" in text  # a is out of tolerance
        assert "n/a" in text  # b is unmeasured

    def test_ascii_chart_scales_and_handles_missing(self):
        comparison = compare(TEST_BASELINE, {"a": 1.0})
        chart = ascii_bar_chart(comparison, width=10)
        lines = chart.splitlines()
        assert len(lines) == 4  # two points x (paper, measured)
        assert "(no data)" in chart
        # b's paper bar (value 2.0) is the maximum: fully filled.
        assert "#" * 10 in lines[2]

    def test_empty_comparison_renders(self):
        comparison = compare(TEST_BASELINE, {})
        section = render_figure(FigureReport(comparison=comparison))
        assert "no-data" in section
        assert "Test figure" in section

    def test_full_report_contains_status_table_and_sections(self):
        reports = [FigureReport(comparison=compare(TEST_BASELINE, {"a": 1.0, "b": 2.0}))]
        text = render_report(reports, {"figures": "test"})
        assert "## Status by figure" in text
        assert "`test`" in text
        assert "## Test figure" in text
        assert status_table(reports) in text


# --------------------------------------------------------------------- #
# Reporting on real (tiny) sweeps
# --------------------------------------------------------------------- #
class TestFigureReports:
    def test_fig8_report_is_analytic_and_complete(self):
        report = build_report("fig8")
        assert report.comparison.n_measured == 3
        assert report.measured_table

    def test_fig4_report_partial_on_reduced_workloads(self):
        report = build_report(
            "fig4", settings=TINY_SETTINGS, workload_names=["Web Search"]
        )
        measured = {d.key for d in report.comparison.deltas if d.measured is not None}
        assert measured == {"Web Search"}
        assert report.comparison.status in (STATUS_PARTIAL, STATUS_FAIL)
        assert "Mean not compared" in report.notes

    def test_fig1_report_without_64_cores_reads_no_data(self):
        report = build_report(
            "fig1",
            settings=TINY_SETTINGS,
            workload_names=["Web Search"],
            core_counts=(4, 8),
        )
        assert report.comparison.status == STATUS_NO_DATA
        assert report.measured_table  # curves still rendered

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError, match="available"):
            build_report("fig999")


# --------------------------------------------------------------------- #
# CLI / generate
# --------------------------------------------------------------------- #
class TestCli:
    def test_cold_cache_generates_report_and_counts_misses(self, tmp_path):
        outcome = generate(
            figures=["fig4"],
            out_dir=str(tmp_path / "reports"),
            settings=TINY_SETTINGS,
            workload_names=["Web Search"],
        )
        assert outcome["path"].exists()
        assert "Figure 4" in outcome["text"]
        stats = outcome["stats"]
        assert stats.simulations_run == 1
        assert stats.cache_hits == 0

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        """Acceptance: a warm-cache report is pure post-processing."""
        kwargs = dict(
            figures=["fig1"],
            settings=TINY_SETTINGS,
            workload_names=["Web Search"],
            core_counts=(4, 8),
        )
        cold = generate(out_dir=str(tmp_path / "r1"), **kwargs)
        assert cold["stats"].simulations_run == 4  # 2 fabrics x 2 core counts
        warm = generate(out_dir=str(tmp_path / "r2"), **kwargs)
        assert warm["stats"].simulations_run == 0
        assert warm["stats"].cache_misses == 0
        assert warm["stats"].cache_hits == 4

    def test_report_is_byte_stable_across_runs_from_same_cache(self, tmp_path):
        kwargs = dict(
            figures=["fig1", "fig8"],
            settings=TINY_SETTINGS,
            workload_names=["Web Search"],
            core_counts=(4, 8),
        )
        first = generate(out_dir=str(tmp_path / "r1"), **kwargs)
        second = generate(out_dir=str(tmp_path / "r2"), **kwargs)
        assert first["path"].read_bytes() == second["path"].read_bytes()

    def test_main_cold_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "0.01")
        code = main(
            [
                "--figure",
                "fig4",
                "--workloads",
                "Web Search",
                "--out",
                str(tmp_path / "reports"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "REPRODUCTION.md" in captured
        assert "simulations run: 1" in captured
        assert (tmp_path / "reports" / "REPRODUCTION.md").exists()

    def test_main_rejects_unknown_figure(self, tmp_path, capsys):
        code = main(["--figure", "fig999", "--out", str(tmp_path)])
        assert code == 2
        assert "available" in capsys.readouterr().err

    def test_main_rejects_non_positive_scale(self, tmp_path, capsys):
        code = main(["--scale", "0", "--out", str(tmp_path)])
        assert code == 2

    def test_main_list(self, capsys):
        assert main(["--list"]) == 0
        printed = capsys.readouterr().out.split()
        assert printed == report_names()

    def test_fig1_penalty_not_compared_on_reduced_workloads(self):
        """A partial workload set must not score against the full-figure value."""
        report = build_report(
            "fig1",
            settings=TINY_SETTINGS,
            workload_names=["Web Search"],
            core_counts=(4, 64),
        )
        assert report.comparison.status == STATUS_NO_DATA
        assert "Penalty not compared" in report.notes

    def test_counting_executor_counts_abandoned_streams(self, tmp_path):
        from repro.experiments.engine import ResultCache
        from repro.experiments.fig4_snoops import figure4_spec
        from repro.scenarios import iter_results

        executor = CountingExecutor(cache=ResultCache(tmp_path))
        spec = figure4_spec(
            ["Web Search", "Data Serving"], num_cores=16, settings=TINY_SETTINGS
        )
        for _ in iter_results(spec, executor=executor):
            break  # abandon the stream after the first record
        assert executor.total_stats.simulations_run >= 1

    def test_counting_executor_accumulates_across_sweeps(self, tmp_path):
        from repro.experiments.engine import ResultCache
        from repro.experiments.fig4_snoops import figure4_spec
        from repro.scenarios import run_sweep

        executor = CountingExecutor(cache=ResultCache(tmp_path))
        spec = figure4_spec(["Web Search"], num_cores=16, settings=TINY_SETTINGS)
        run_sweep(spec, executor=executor)
        run_sweep(spec, executor=executor)
        assert executor.total_stats.simulations_run == 1
        assert executor.total_stats.cache_hits == 1

    def test_empty_result_set_report_degrades_to_no_data(self):
        """An empty ResultSet pivots to nothing measured, not a crash."""
        empty = ResultSet([])
        assert empty.summary("throughput_ipc")["count"] == 0
        comparison = compare(TEST_BASELINE, {})
        assert comparison.status == STATUS_NO_DATA
