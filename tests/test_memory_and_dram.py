"""Unit tests for the DRAM channel model and memory controller."""

import pytest

from repro.cache.coherence import MemoryRequest, Response, ResponseType
from repro.cache.dram import DramChannel
from repro.cache.memory_controller import MemoryController
from repro.config.cache import CacheHierarchyConfig
from repro.noc.message import MessageClass
from repro.sim.kernel import Simulator


class TestDramChannel:
    def test_single_access_latency(self):
        channel = DramChannel(latency_cycles=120, occupancy_cycles=8)
        assert channel.schedule(now=0) == 120

    def test_back_to_back_accesses_queue_on_bandwidth(self):
        channel = DramChannel(latency_cycles=120, occupancy_cycles=8)
        first = channel.schedule(0)
        second = channel.schedule(0)
        assert second == first + 8
        assert channel.mean_queue_delay == pytest.approx(4.0)

    def test_idle_gaps_do_not_queue(self):
        channel = DramChannel(latency_cycles=100, occupancy_cycles=8)
        channel.schedule(0)
        completion = channel.schedule(1000)
        assert completion == 1100
        assert channel.total_queue_cycles == 0

    def test_request_count(self):
        channel = DramChannel(latency_cycles=10, occupancy_cycles=2)
        for _ in range(5):
            channel.schedule(0)
        assert channel.requests == 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DramChannel(0, 8)
        with pytest.raises(ValueError):
            DramChannel(10, 0)


class TestMemoryController:
    def build(self):
        sim = Simulator()
        sent = []
        controller = MemoryController(
            sim,
            "mc0",
            node_id=70,
            config=CacheHierarchyConfig(),
            send=lambda dst, cls, payload, data: sent.append((dst, cls, payload, data)),
        )
        return sim, controller, sent

    def test_fill_request_produces_mem_data_response(self):
        sim, controller, sent = self.build()
        controller.handle_memory_request(MemoryRequest(addr=0x1000, home_node=12))
        sim.run(500)
        assert len(sent) == 1
        dst, msg_class, payload, carries_data = sent[0]
        assert dst == 12
        assert msg_class == MessageClass.RESPONSE
        assert payload.resp_type == ResponseType.MEM_DATA
        assert payload.addr == 0x1000
        assert carries_data

    def test_latency_matches_dram_model(self):
        sim, controller, sent = self.build()
        controller.handle_memory_request(MemoryRequest(addr=0x1000, home_node=12))
        sim.run(CacheHierarchyConfig().dram_latency_cycles - 1)
        assert not sent
        sim.run(5)
        assert sent

    def test_statistics(self):
        sim, controller, _ = self.build()
        for i in range(3):
            controller.handle_memory_request(MemoryRequest(addr=0x1000 + i * 64, home_node=1))
        sim.run(1000)
        assert controller.requests_serviced.value == 3
        assert controller.read_latency.count == 3
        assert controller.read_latency.mean >= CacheHierarchyConfig().dram_latency_cycles
