"""Tests for the fabric-plugin layer and arbitrary-size grids.

Covers the plugin registry dispatch for the built-ins, the unknown-topology
error path, third-party plugin registration from a test-local module (this
one), grid factorisation properties, and system-map invariants at the
256/512-core scale-out sizes.
"""

import pytest

from repro.chip.builder import build_network
from repro.chip.system_map import NocOutSystemMap, TiledSystemMap, build_system_map
from repro.config.noc import NocConfig, Topology, topology_key
from repro.config.system import (
    KNOWN_GRIDS,
    SystemConfig,
    default_mesh_dimensions,
)
from repro.fabrics import ConcentratedSystemMap, cmesh_system
from repro.fabrics.base import SystemFactoryFabric
from repro.noc.flattened_butterfly import FlattenedButterflyNetwork
from repro.noc.ideal import IdealNetwork
from repro.noc.mesh import MeshNetwork
from repro.noc.topology import describe_topology
from repro.scenarios import build_system, fabric_for, register_topology, topologies
from repro.sim.kernel import Simulator
from tests._fixtures import small_system, small_workload


# --------------------------------------------------------------------- #
# Registry dispatch for the built-ins
# --------------------------------------------------------------------- #
class TestBuiltinDispatch:
    @pytest.mark.parametrize(
        "topology, map_cls, network_cls",
        [
            (Topology.MESH, TiledSystemMap, MeshNetwork),
            (Topology.FLATTENED_BUTTERFLY, TiledSystemMap, FlattenedButterflyNetwork),
            (Topology.IDEAL, TiledSystemMap, IdealNetwork),
            (Topology.NOC_OUT, NocOutSystemMap, None),
        ],
    )
    def test_map_network_and_describe_dispatch(self, topology, map_cls, network_cls):
        config = small_system(topology)
        system_map = build_system_map(config)
        assert type(system_map) is map_cls
        network = build_network(Simulator(1), config, system_map)
        if network_cls is not None:
            assert isinstance(network, network_cls)
        assert describe_topology(config).name == topology.value

    def test_fabric_for_accepts_config_noc_and_bare_identifier(self):
        config = small_system(Topology.MESH)
        assert fabric_for(config).name == "mesh"
        assert fabric_for(config.noc).name == "mesh"
        assert fabric_for(Topology.MESH).name == "mesh"
        assert fabric_for("mesh").name == "mesh"

    def test_mismatched_system_map_rejected(self):
        mesh_config = small_system(Topology.MESH)
        nocout_map = build_system_map(small_system(Topology.NOC_OUT))
        with pytest.raises(TypeError, match="TiledSystemMap"):
            build_network(Simulator(1), mesh_config, nocout_map)

    def test_unknown_topology_lists_available(self):
        config = small_system(Topology.MESH).with_topology("torus")
        with pytest.raises(KeyError, match="mesh"):
            build_system_map(config)
        with pytest.raises(KeyError, match="torus"):
            describe_topology(config)


# --------------------------------------------------------------------- #
# Third-party plugin registration (from this test-local module)
# --------------------------------------------------------------------- #
class _HalfWidthMeshFabric:
    """A full plugin defined outside ``repro.fabrics``: a narrow-link mesh."""

    name = "__half_width_mesh__"

    def build_system(self, num_cores=16, link_width_bits=128, seed=3):
        noc = NocConfig(topology=self.name, link_width_bits=link_width_bits // 2)
        return SystemConfig(num_cores=num_cores, noc=noc, seed=seed)

    def build_system_map(self, config):
        return TiledSystemMap(config)

    def build_network(self, sim, config, system_map):
        return MeshNetwork(sim, config, system_map.node_coords(), name=self.name)

    def describe(self, config):
        from repro.noc.topology import describe_mesh

        descriptor = describe_mesh(config)
        descriptor.name = self.name
        return descriptor


class TestThirdPartyPlugin:
    def test_registration_alone_wires_build_and_describe(self):
        register_topology("__half_width_mesh__", _HalfWidthMeshFabric)
        try:
            config = build_system("__half_width_mesh__", num_cores=16)
            assert config.noc.link_width_bits == 64
            assert topology_key(config.noc.topology) == "__half_width_mesh__"
            # Dispatch sites were not edited, yet the chip builds end to end.
            system_map = build_system_map(config)
            assert isinstance(system_map, TiledSystemMap)
            network = build_network(Simulator(1), config, system_map)
            assert isinstance(network, MeshNetwork)
            assert describe_topology(config).name == "__half_width_mesh__"

            from repro.chip.builder import build_chip

            chip = build_chip(config.with_workload(small_workload()))
            chip.run_experiment(
                warmup_references=200, detailed_warmup_cycles=100, measure_cycles=200
            )
        finally:
            topologies.unregister("__half_width_mesh__")

    def test_bare_factory_still_registers_but_cannot_build_chips(self):
        register_topology(
            "__bare_factory__", lambda num_cores=16, **kw: small_system(Topology.MESH)
        )
        try:
            plugin = topologies.get("__bare_factory__")
            assert isinstance(plugin, SystemFactoryFabric)
            # The factory seeds sweeps (its config owns a real topology)...
            assert build_system("__bare_factory__").noc.topology == Topology.MESH
            # ...but the adapter itself cannot build chips.
            with pytest.raises(NotImplementedError, match="FabricPlugin"):
                plugin.build_system_map(small_system(Topology.MESH))
        finally:
            topologies.unregister("__bare_factory__")

    def test_non_plugin_registration_rejected(self):
        with pytest.raises(TypeError, match="FabricPlugin"):
            register_topology("__not_a_plugin__", object())


# --------------------------------------------------------------------- #
# Grid factorisation
# --------------------------------------------------------------------- #
class TestGridFactorisation:
    def test_table_values_preserved(self):
        for num_cores, expected in KNOWN_GRIDS.items():
            assert default_mesh_dimensions(num_cores) == expected

    @pytest.mark.parametrize("num_cores", [6, 12, 24, 48, 96, 192, 384, 1024, 2048])
    def test_factorisation_properties(self, num_cores):
        cols, rows = default_mesh_dimensions(num_cores)
        assert cols * rows == num_cores
        assert cols >= rows >= 1
        # Near-square: no divisor pair is closer to square than the one
        # returned (rows is the largest divisor not above sqrt(n)).
        assert rows * rows <= num_cores <= cols * cols

    def test_scale_out_sizes(self):
        assert default_mesh_dimensions(256) == (16, 16)
        assert default_mesh_dimensions(512) == (32, 16)

    def test_config_validation_uses_factorised_grids(self):
        config = small_system(Topology.MESH, num_cores=24)
        assert config.mesh_dimensions == (6, 4)
        with pytest.raises(ValueError, match="near-square"):
            small_system(Topology.MESH, num_cores=26)  # 13x2 is degenerate


# --------------------------------------------------------------------- #
# Scale-out system-map invariants (256/512 cores)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("num_cores", [256, 512])
class TestScaleOutSystemMaps:
    def test_tiled_map_invariants(self, num_cores):
        config = small_system(Topology.MESH, num_cores=num_cores)
        system_map = build_system_map(config)
        cols, rows = config.mesh_dimensions
        assert cols * rows == num_cores
        coords = system_map.node_coords()
        # Every core tile has a distinct in-grid coordinate; MCs sit on edges.
        core_coords = [coords[n] for n in range(num_cores)]
        assert len(set(core_coords)) == num_cores
        for col, row in core_coords:
            assert 0 <= col < cols and 0 <= row < rows
        for index in range(config.num_memory_controllers):
            col, row = coords[system_map.mc_node(index)]
            assert col in (0, cols - 1, cols // 2) or row in (0, rows - 1, rows // 2)
        # Addresses map onto valid home/MC nodes.
        for addr in (0, 4096, 123456789):
            assert system_map.home_node(addr) in range(num_cores)
            assert system_map.mc_node_for(addr) in system_map.mc_node_ids

    def test_nocout_map_invariants(self, num_cores):
        config = build_system("noc_out", num_cores=num_cores)
        assert config.noc.llc_tiles == 16  # widened row beyond 128 cores
        system_map = build_system_map(config)
        assert isinstance(system_map, NocOutSystemMap)
        assert system_map.core_rows * system_map.columns == num_cores
        assert system_map.core_rows % 2 == 0
        # Node ids partition: cores, then LLC tiles, then MCs.
        assert system_map.llc_node_ids == list(
            range(num_cores, num_cores + config.noc.llc_tiles)
        )
        for addr in (0, 4096, 987654321):
            assert system_map.home_node(addr) in system_map.llc_node_ids

    def test_cmesh_map_invariants(self, num_cores):
        config = cmesh_system(num_cores=num_cores)
        system_map = build_system_map(config)
        assert isinstance(system_map, ConcentratedSystemMap)
        routers = num_cores // config.noc.tree_concentration
        assert system_map.cols * system_map.rows == routers
        coords = system_map.node_coords()
        # Exactly `concentration` cores share each router coordinate.
        core_coords = [coords[n] for n in range(num_cores)]
        assert len(set(core_coords)) == routers
        counts = {}
        for coord in core_coords:
            counts[coord] = counts.get(coord, 0) + 1
        assert set(counts.values()) == {config.noc.tree_concentration}

    def test_active_core_selection_is_centre_packed(self, num_cores):
        config = small_system(Topology.MESH, num_cores=num_cores)
        system_map = build_system_map(config)
        active = system_map.active_core_ids(64)
        assert len(active) == 64
        assert active == sorted(active)
        cols, rows = config.mesh_dimensions
        centre = ((cols - 1) / 2.0, (rows - 1) / 2.0)

        def distance(core):
            col, row = system_map.tile_coord(core)
            return abs(col - centre[0]) + abs(row - centre[1])

        worst_active = max(distance(core) for core in active)
        inactive = set(range(num_cores)) - set(active)
        assert all(distance(core) >= worst_active - 1e-9 for core in inactive)


# --------------------------------------------------------------------- #
# Concentrated mesh end to end
# --------------------------------------------------------------------- #
class TestConcentratedMesh:
    def test_validation(self):
        with pytest.raises(ValueError, match="divide evenly"):
            cmesh_system(num_cores=30)  # 30 % 4 != 0
        assert cmesh_system(num_cores=64).noc.tree_concentration == 4

    def test_describe_inventory(self):
        config = cmesh_system(num_cores=64)
        descriptor = describe_topology(config)
        assert descriptor.name == "cmesh"
        assert descriptor.num_routers == 16
        (router_spec,) = descriptor.routers
        assert router_spec.ports == 8  # N/S/E/W + 4 local
        # Fewer routers than the mesh, higher radix each.
        mesh_descriptor = describe_topology(small_system(Topology.MESH, num_cores=64))
        assert descriptor.num_routers < mesh_descriptor.num_routers

    def test_area_model_wires_through_registry(self):
        from repro.power.area_model import NocAreaModel

        breakdown = NocAreaModel().breakdown(cmesh_system(num_cores=64))
        assert breakdown.total_mm2 > 0

    def test_simulates_end_to_end(self):
        from repro.chip.builder import build_chip

        config = cmesh_system(num_cores=16).with_workload(small_workload())
        chip = build_chip(config)
        results = chip.run_experiment(
            warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
        )
        assert results.topology == "cmesh"
        assert results.total_instructions > 0
        assert results.messages_delivered > 0


# --------------------------------------------------------------------- #
# Scale-out sweep (reduced; CI runs the full 64-512 version)
# --------------------------------------------------------------------- #
class TestScaleOutSweep:
    def test_spec_covers_the_grid(self):
        from repro.experiments.scale_out import scale_out_spec
        from tests._fixtures import TINY_SETTINGS

        spec = scale_out_spec(settings=TINY_SETTINGS)
        points = spec.expand()
        assert len(points) == 2 * 4 * 6  # workloads x fabrics x core counts
        seen = {
            (p.coords["topology"], p.coords["num_cores"]) for p in points
        }
        assert ("cmesh", 512) in seen and ("noc_out", 256) in seen
        assert ("chiplet", 1024) in seen and ("chiplet", 2048) in seen

    def test_runs_and_pivots(self, tmp_path, monkeypatch):
        from repro.experiments.scale_out import (
            render_scale_out,
            run_scale_out,
            scale_out_pivot,
        )
        from tests._fixtures import TINY_SETTINGS

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        results = run_scale_out(
            workload_names=("MapReduce-W",),
            core_counts=(64, 256),
            settings=TINY_SETTINGS,
            jobs=1,
        )
        pivot = scale_out_pivot(results)
        assert set(pivot["MapReduce-W"]) == {"mesh", "cmesh", "noc_out", "chiplet"}
        for by_count in pivot["MapReduce-W"].values():
            assert all(value > 0 for value in by_count.values())
        rendered = render_scale_out(results).render()
        assert "cmesh" in rendered and "256 cores" in rendered
