"""Unit tests for the synthetic workload streams and traffic generators."""

import pytest

from repro.config import presets
from repro.config.workload import WorkloadConfig
from repro.workloads.base import (
    INSTRUCTION_BASE,
    SHARED_DATA_BASE,
    FetchBlock,
    SyntheticWorkloadStream,
)
from repro.workloads.cloudsuite import make_stream, workload_streams


def small_workload(**overrides):
    params = dict(
        name="w",
        instruction_footprint_bytes=256 * 1024,
        dataset_bytes=64 * 1024 * 1024,
        shared_region_bytes=16 * 1024,
        shared_fraction=0.05,
        data_reuse_fraction=0.8,
        loads_per_instruction=0.3,
    )
    params.update(overrides)
    return WorkloadConfig(**params)


class TestFetchBlock:
    def test_requires_at_least_one_instruction(self):
        with pytest.raises(ValueError):
            FetchBlock(iaddr=0x1000, n_instructions=0)


class TestSyntheticWorkloadStream:
    def test_deterministic_for_same_seed(self):
        a = SyntheticWorkloadStream(small_workload(), 0, 4, seed=9)
        b = SyntheticWorkloadStream(small_workload(), 0, 4, seed=9)
        for _ in range(50):
            block_a, block_b = a.next_block(), b.next_block()
            assert block_a.iaddr == block_b.iaddr
            assert block_a.data_accesses == block_b.data_accesses

    def test_different_cores_produce_different_streams(self):
        a = SyntheticWorkloadStream(small_workload(), 0, 4, seed=9)
        b = SyntheticWorkloadStream(small_workload(), 1, 4, seed=9)
        assert [blk.iaddr for blk in (a.next_block() for _ in range(20))] != [
            blk.iaddr for blk in (b.next_block() for _ in range(20))
        ]

    def test_instruction_addresses_stay_in_footprint(self):
        stream = SyntheticWorkloadStream(small_workload(), 0, 4, seed=1)
        base, size = stream.instruction_region
        for _ in range(500):
            block = stream.next_block()
            assert base <= block.iaddr < base + size

    def test_data_addresses_stay_in_declared_regions(self):
        stream = SyntheticWorkloadStream(small_workload(), 2, 4, seed=1)
        private_base, private_size = stream.private_region
        shared_base, shared_size = stream.shared_region
        for _ in range(500):
            for addr, _write in stream.next_block().data_accesses:
                in_private = private_base <= addr < private_base + private_size
                in_shared = shared_base <= addr < shared_base + shared_size
                assert in_private or in_shared

    def test_private_regions_do_not_overlap_between_cores(self):
        streams = [SyntheticWorkloadStream(small_workload(), c, 4, seed=1) for c in range(4)]
        regions = [s.private_region for s in streams]
        for i, (base_i, size_i) in enumerate(regions):
            for j, (base_j, _size_j) in enumerate(regions):
                if i < j:
                    assert base_i + size_i <= base_j or base_j >= base_i + size_i

    def test_block_sizes_are_positive_and_bounded(self):
        stream = SyntheticWorkloadStream(small_workload(), 0, 4, seed=3)
        for _ in range(300):
            block = stream.next_block()
            assert 1 <= block.n_instructions <= 4 * small_workload().mean_block_instructions

    def test_mean_data_accesses_matches_load_rate(self):
        stream = SyntheticWorkloadStream(small_workload(), 0, 4, seed=3)
        instructions = 0
        accesses = 0
        for _ in range(2000):
            block = stream.next_block()
            instructions += block.n_instructions
            accesses += len(block.data_accesses)
        assert accesses / instructions == pytest.approx(0.3, rel=0.15)

    def test_write_fraction_roughly_respected(self):
        stream = SyntheticWorkloadStream(small_workload(write_fraction=0.5), 0, 4, seed=3)
        writes = total = 0
        for _ in range(2000):
            for _addr, is_write in stream.next_block().data_accesses:
                total += 1
                writes += is_write
        assert writes / total == pytest.approx(0.5, abs=0.05)

    def test_functional_references_cover_instruction_and_data(self):
        stream = SyntheticWorkloadStream(small_workload(), 0, 4, seed=3)
        refs = list(stream.functional_references(200))
        assert len(refs) >= 200
        assert any(is_instr for _a, is_instr, _w in refs)
        assert any(not is_instr for _a, is_instr, _w in refs)
        assert all(a >= INSTRUCTION_BASE for a, is_instr, _w in refs if is_instr)

    def test_shared_region_is_chip_wide(self):
        a = SyntheticWorkloadStream(small_workload(), 0, 4, seed=1)
        b = SyntheticWorkloadStream(small_workload(), 3, 4, seed=1)
        assert a.shared_region == b.shared_region
        assert a.shared_region[0] == SHARED_DATA_BASE

    def test_invalid_core_id_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadStream(small_workload(), 5, 4)


class TestCloudsuiteStreams:
    def test_make_stream_uses_preset(self):
        stream = make_stream(presets.workload("Web Search"), 0, 16)
        assert stream.config.name == "Web Search"

    def test_workload_streams_respects_scalability_limit(self):
        streams = workload_streams(presets.workload("Web Search"), 64)
        assert len(streams) == 16
        streams = workload_streams(presets.workload("Data Serving"), 64)
        assert len(streams) == 64
