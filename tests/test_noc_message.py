"""Unit tests for messages, packets and flit accounting."""

import pytest

from repro.noc.message import (
    Message,
    MessageClass,
    Packet,
    control_message_bits,
    data_message_bits,
)


def make_message(size_bits=128, msg_class=MessageClass.REQUEST):
    return Message(src=0, dst=1, msg_class=msg_class, size_bits=size_bits)


def test_message_sizes():
    assert control_message_bits() == 128
    assert data_message_bits(64) == 128 + 512


def test_control_message_does_not_carry_data():
    assert not make_message(control_message_bits()).carries_data
    assert make_message(data_message_bits()).carries_data


def test_message_ids_are_unique():
    assert make_message().message_id != make_message().message_id


def test_message_size_must_be_positive():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, msg_class=MessageClass.REQUEST, size_bits=0)


def test_single_flit_control_packet():
    packet = Packet(make_message(128), link_width_bits=128)
    assert packet.num_flits == 1


def test_data_packet_flit_count_at_128_bits():
    packet = Packet(make_message(data_message_bits()), link_width_bits=128)
    assert packet.num_flits == 5  # 640 bits / 128 bits per flit


def test_narrow_links_increase_flit_count():
    wide = Packet(make_message(data_message_bits()), link_width_bits=128)
    narrow = Packet(make_message(data_message_bits()), link_width_bits=32)
    assert narrow.num_flits == 4 * wide.num_flits


def test_flit_count_rounds_up():
    packet = Packet(make_message(129), link_width_bits=128)
    assert packet.num_flits == 2


def test_packet_exposes_message_fields():
    message = make_message(msg_class=MessageClass.RESPONSE)
    packet = Packet(message, 128)
    assert packet.src == 0
    assert packet.dst == 1
    assert packet.msg_class == MessageClass.RESPONSE


def test_packet_latency():
    message = make_message()
    message.created_cycle = 10
    packet = Packet(message, 128)
    assert packet.latency(35) == 25


def test_invalid_link_width_rejected():
    with pytest.raises(ValueError):
        Packet(make_message(), link_width_bits=0)


def test_message_class_values_cover_paper_classes():
    assert {c.name for c in MessageClass} == {"REQUEST", "SNOOP", "RESPONSE"}
