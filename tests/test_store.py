"""Tests for the columnar result store, the lease farm and the query path.

Covers the full result-path refactor: segment format round-trips,
compaction canonicalisation, the ``REPRO_STORE`` backend dispatch in
:class:`ResultCache`, the JSON-cache importer, the lease protocol (no
double simulation, crash recovery), zero-copy :class:`ResultSet`
construction and the never-simulates query CLI.
"""

import json
import threading
import time

import pytest

from repro.chip.chip import SimulationResults
from repro.config.noc import Topology
from repro.experiments.engine import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    SweepExecutor,
    resolve_store_backend,
)
from repro.experiments.harness import RunSettings
from repro.scenarios import METRIC_NAMES, ResultSet, SweepSpec, run_sweep
from repro.store import ColumnarStore, StoreError
from repro.store import farm, migrate, query, specs
from repro.store.cache import ColumnarResultCache
from repro.store.farm import LeaseQueue, run_worker

from tests._fixtures import TINY_SETTINGS
from tests.test_engine import tiny_point


def fake_result(seed: int = 0) -> SimulationResults:
    """A deterministic synthetic result (store tests never need real sims)."""
    return SimulationResults(
        workload="Web Search",
        topology="mesh",
        num_cores=16,
        active_cores=16,
        cycles=600 + seed,
        total_instructions=9000 + 7 * seed,
        per_core_instructions={0: 500 + seed, 1: 400},
        network_mean_latency=12.5 + seed,
        llc_accesses=1000 + seed,
        llc_hit_rate=0.5,
        snoop_rate=0.1,
        l1i_mpki=20.0,
        memory_reads=300,
        network_activity={"link_traversals": 10.0 + seed},
    )


def tiny_spec(**axes) -> SweepSpec:
    defaults = {
        "workload": ("Web Search", "Data Serving"),
        "topology": ("mesh", "noc_out"),
    }
    defaults.update(axes)
    return SweepSpec(axes=defaults, settings=TINY_SETTINGS, fixed={"num_cores": 16})


class TestColumnarStore:
    def test_append_get_round_trip(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        rows = [(f"{i:064x}", fake_result(i)) for i in range(3)]
        path = store.append_results(rows)
        assert path is not None and path.exists()
        for digest, result in rows:
            assert digest in store
            assert store.get(digest) == result
        assert store.get("f" * 64) is None
        assert len(store) == 3

    def test_append_empty_is_a_no_op(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        assert store.append_results([]) is None
        assert store.segment_paths() == []

    def test_refresh_sees_sibling_appends(self, tmp_path):
        """A second store instance over the same directory sees new rows."""
        writer = ColumnarStore(tmp_path / "store")
        reader = ColumnarStore(tmp_path / "store")
        assert reader.get("0" * 64) is None
        writer.append_results([("0" * 64, fake_result())])
        # The reader refreshes lazily on the miss and finds the new segment.
        assert reader.get("0" * 64) == fake_result()

    def test_load_table_preserves_request_order(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        rows = [(f"{i:064x}", fake_result(i)) for i in range(4)]
        store.append_results(rows[:2])
        store.append_results(rows[2:])
        want = [rows[3][0], rows[0][0], rows[2][0]]
        table = store.load_table(want)
        assert list(table.hashes) == want
        assert table.result(0) == fake_result(3)
        assert table.result(1) == fake_result(0)
        assert len(table) == 3

    def test_load_table_missing_rows_raise_key_error(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        store.append_results([("0" * 64, fake_result())])
        with pytest.raises(KeyError, match="1 of 2"):
            store.load_table(["0" * 64, "f" * 64])

    def test_first_write_wins_on_duplicate_hashes(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        store.append_results([("0" * 64, fake_result(1))])
        store.append_results([("0" * 64, fake_result(2))])
        assert store.get("0" * 64) == fake_result(1)
        stats = store.compact()
        assert stats.duplicates_dropped == 1
        assert store.get("0" * 64) == fake_result(1)

    def test_compact_folds_to_one_canonical_segment(self, tmp_path):
        """Same rows, different arrival orders -> byte-identical segment."""
        rows = [(f"{i:064x}", fake_result(i)) for i in range(5)]

        def fill(root, order):
            store = ColumnarStore(root)
            for index in order:
                store.append_results([rows[index]])
            store.compact()
            (segment,) = store.segment_paths()
            return segment.read_bytes()

        bytes_a = fill(tmp_path / "a", [0, 1, 2, 3, 4])
        bytes_b = fill(tmp_path / "b", [4, 2, 0, 3, 1])
        assert bytes_a == bytes_b

    def test_compact_is_idempotent(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        store.append_results([(f"{i:064x}", fake_result(i)) for i in range(3)])
        store.compact()
        (segment,) = store.segment_paths()
        before = segment.read_bytes()
        stats = store.compact()
        assert stats.duplicates_dropped == 0
        (segment,) = store.segment_paths()
        assert segment.read_bytes() == before

    def test_malformed_segment_raises_store_error(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        store.append_results([("0" * 64, fake_result())])
        (segment,) = store.segment_paths()
        segment.write_text("{ not json")
        with pytest.raises(StoreError, match="unreadable segment"):
            ColumnarStore(tmp_path / "store").refresh()

    def test_future_manifest_schema_refuses_loudly(self, tmp_path):
        store = ColumnarStore(tmp_path / "store")
        store.append_results([("0" * 64, fake_result())])
        manifest = json.loads(store.manifest_path.read_text())
        manifest["schema"] = 99
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="manifest schema"):
            ColumnarStore(tmp_path / "store").refresh()


class TestBackendDispatch:
    def test_default_is_json_backend(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert type(cache) is ResultCache

    def test_backend_argument_selects_columnar(self, tmp_path):
        cache = ResultCache(tmp_path, backend="columnar")
        assert isinstance(cache, ColumnarResultCache)
        assert cache.root == tmp_path

    def test_env_var_selects_columnar(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "columnar")
        assert isinstance(ResultCache(tmp_path), ColumnarResultCache)
        # An explicit argument still beats the environment.
        assert type(ResultCache(tmp_path, backend="json")) is ResultCache

    def test_unknown_backend_is_an_error(self, monkeypatch):
        with pytest.raises(ValueError, match="bogus"):
            resolve_store_backend("bogus")
        monkeypatch.setenv("REPRO_STORE", "bogus")
        with pytest.raises(ValueError, match="REPRO_STORE"):
            ResultCache()

    def test_columnar_cache_has_no_per_point_path(self, tmp_path):
        cache = ResultCache(tmp_path, backend="columnar")
        with pytest.raises(NotImplementedError):
            cache.path_for(tiny_point())

    def test_executor_round_trip_on_columnar_backend(self, tmp_path):
        """Simulate through the columnar cache; rerun serves purely from it."""
        cache = ResultCache(tmp_path / "store", backend="columnar")
        points = [
            tiny_point(topology=Topology.MESH),
            tiny_point(topology=Topology.NOC_OUT),
        ]
        executor = SweepExecutor(jobs=1, cache=cache)
        first = executor.run(points)
        assert executor.last_stats.simulations_run == 2

        fresh = SweepExecutor(
            jobs=1, cache=ResultCache(tmp_path / "store", backend="columnar")
        )
        second = fresh.run(points)
        assert fresh.last_stats.simulations_run == 0
        assert fresh.last_stats.cache_hits == 2
        assert second == first


class TestMigrate:
    def test_import_json_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = [
            tiny_point(topology=Topology.MESH),
            tiny_point(topology=Topology.NOC_OUT),
        ]
        executor = SweepExecutor(jobs=1, cache=cache)
        results = executor.run(points)

        store = ColumnarStore(tmp_path / "store")
        stats = migrate.migrate_cache(cache.root, store)
        assert stats.imported == 2
        assert stats.skipped_invalid == 0
        assert len(store.segment_paths()) == 1  # compacted
        for point, result in zip(points, results):
            assert store.get(point.content_hash()) == result

    def test_import_skips_invalid_and_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = tiny_point()
        SweepExecutor(jobs=1, cache=cache).run([point])
        (tmp_path / "cache" / ("a" * 64 + ".json")).write_text("{ truncated")
        (tmp_path / "cache" / ("b" * 64 + ".json")).write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION + 1, "result": {}})
        )
        (tmp_path / "cache" / "README.txt").write_text("not a result")

        store = ColumnarStore(tmp_path / "store")
        stats = migrate.migrate_cache(cache.root, store)
        assert stats.imported == 1
        assert stats.skipped_invalid == 2
        assert stats.ignored_files == 1
        assert len(store) == 1

    def test_reimport_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepExecutor(jobs=1, cache=cache).run([tiny_point()])
        store = ColumnarStore(tmp_path / "store")
        migrate.migrate_cache(cache.root, store)
        stats = migrate.migrate_cache(cache.root, store)
        assert stats.imported == 0
        assert stats.already_stored == 1

    def test_migrated_store_reproduces_report_byte_identically(self, tmp_path):
        """JSON-backend report -> migrate -> columnar report: same bytes, 0 sims."""
        from repro.reporting.cli import CountingExecutor, generate

        kwargs = dict(
            figures=["fig1"],
            settings=TINY_SETTINGS,
            workload_names=["Web Search"],
            core_counts=(2, 4),
        )
        json_cache = ResultCache(tmp_path / "cache")
        baseline = generate(
            out_dir=str(tmp_path / "report-json"),
            executor=CountingExecutor(jobs=1, cache=json_cache),
            **kwargs,
        )
        assert baseline["stats"].simulations_run > 0

        store = ColumnarStore(tmp_path / "store")
        migrate.migrate_cache(json_cache.root, store)

        replay = generate(
            out_dir=str(tmp_path / "report-columnar"),
            executor=CountingExecutor(
                jobs=1, cache=ResultCache(tmp_path / "store", backend="columnar")
            ),
            **kwargs,
        )
        assert replay["stats"].simulations_run == 0
        assert replay["stats"].cache_misses == 0
        assert replay["text"] == baseline["text"]


class TestLeaseQueue:
    def test_claim_is_exclusive(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        assert queue.try_claim("0" * 64, "w0")
        assert not queue.try_claim("0" * 64, "w1")
        assert queue.held() == ["0" * 64]

    def test_release_allows_reclaim(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        assert queue.try_claim("0" * 64, "w0")
        queue.release("0" * 64)
        assert queue.held() == []
        assert queue.try_claim("0" * 64, "w1")

    def test_expired_lease_is_stolen(self, tmp_path):
        crashed = LeaseQueue(tmp_path, ttl=0.05)
        assert crashed.try_claim("0" * 64, "crashed")
        time.sleep(0.1)
        # The "crashed" worker never released; a live worker takes over.
        assert LeaseQueue(tmp_path, ttl=0.05).try_claim("0" * 64, "w1")

    def test_live_lease_is_not_stolen(self, tmp_path):
        queue = LeaseQueue(tmp_path, ttl=3600)
        assert queue.try_claim("0" * 64, "w0")
        assert not LeaseQueue(tmp_path, ttl=3600).try_claim("0" * 64, "w1")

    def test_torn_lease_file_expires_by_mtime(self, tmp_path):
        import os

        queue = LeaseQueue(tmp_path, ttl=0.05)
        queue.root.mkdir(parents=True, exist_ok=True)
        path = queue.path_for("0" * 64)
        path.write_text("{ torn write")  # crashed mid-json.dump
        past = time.time() - 10
        os.utime(path, (past, past))
        assert queue.try_claim("0" * 64, "w1")


class TestFarm:
    def test_concurrent_workers_never_double_simulate(self, tmp_path):
        """Two racing workers: disjoint simulated sets whose union is the spec."""
        spec = tiny_spec()
        all_hashes = {sp.content_hash() for sp in spec.expand()}

        def execute(point):
            time.sleep(0.01)  # widen the race window
            return fake_result()

        stats = {}

        def work(worker_id):
            store = ColumnarStore(tmp_path / "store")  # private instance, shared dir
            stats[worker_id] = run_worker(
                spec, store, worker_id=worker_id, flush=1, execute=execute
            )

        threads = [
            threading.Thread(target=work, args=(name,)) for name in ("w0", "w1")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        simulated_a = set(stats["w0"].simulated_hashes)
        simulated_b = set(stats["w1"].simulated_hashes)
        assert simulated_a.isdisjoint(simulated_b)
        assert simulated_a | simulated_b == all_hashes
        assert set(ColumnarStore(tmp_path / "store").hashes()) == all_hashes
        assert LeaseQueue(tmp_path / "store").held() == []

    def test_crashed_worker_lease_is_reclaimed(self, tmp_path):
        """Leases from a dead worker expire; a live worker finishes the spec."""
        spec = tiny_spec()
        sweep_points = spec.expand()
        crashed = LeaseQueue(tmp_path / "store", ttl=0.05)
        for sweep_point in sweep_points[:2]:  # crashed mid-flight, never released
            assert crashed.try_claim(sweep_point.content_hash(), "crashed")
        time.sleep(0.1)

        store = ColumnarStore(tmp_path / "store")
        stats = run_worker(
            spec, store, worker_id="w1", ttl=0.05,
            execute=lambda point: fake_result(),
        )
        assert stats.simulated == len(sweep_points)
        assert len(store) == len(sweep_points)

    def test_worker_skips_already_stored_points(self, tmp_path):
        spec = tiny_spec()
        store = ColumnarStore(tmp_path / "store")
        run_worker(spec, store, worker_id="w0", execute=lambda point: fake_result())
        stats = run_worker(
            spec, store, worker_id="w1", execute=lambda point: fake_result()
        )
        assert stats.simulated == 0
        assert stats.already_stored == spec.size()

    def test_farm_fill_compacts_to_serial_bytes(self, tmp_path):
        """Compacted farm store == compacted serial store, byte for byte."""

        def execute(point):
            return fake_result(point.config.num_cores)

        spec = tiny_spec()
        farm_store = ColumnarStore(tmp_path / "farm")
        for worker_id in ("w0", "w1"):  # interleaved flushes (flush=1)
            run_worker(spec, farm_store, worker_id=worker_id, flush=1, execute=execute)
        farm_store.compact()

        serial_store = ColumnarStore(tmp_path / "serial")
        run_worker(spec, serial_store, worker_id="serial", execute=execute)
        serial_store.compact()

        (farm_segment,) = farm_store.segment_paths()
        (serial_segment,) = serial_store.segment_paths()
        assert farm_segment.read_bytes() == serial_segment.read_bytes()

    def test_cli_spawns_workers_and_compacts(self, tmp_path):
        """End-to-end through main(): real simulations at tiny settings."""
        spec = tiny_spec(workload=("Web Search",), topology=("mesh",))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        summary_path = tmp_path / "stats.json"
        status = farm.main(
            [
                "--store", str(tmp_path / "store"),
                "--spec", str(spec_path),
                "--worker-id", "w0",
                "--compact",
                "--summary", str(summary_path),
            ]
        )
        assert status == 0
        summary = json.loads(summary_path.read_text())
        assert summary["simulated"] == 1
        store = ColumnarStore(tmp_path / "store")
        assert len(store) == 1
        assert len(store.segment_paths()) == 1


class TestResultSetFromStore:
    def fill(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path / "store", backend="columnar")
        executor = SweepExecutor(jobs=1, cache=cache)
        eager = run_sweep(spec, executor=executor)
        return spec, cache.store_backend, eager

    def test_zero_copy_equals_eager_records(self, tmp_path):
        spec, store, eager = self.fill(tmp_path)
        sweep_points = spec.expand()
        table = store.load_table([sp.content_hash() for sp in sweep_points])
        lazy = ResultSet.from_store_table(sweep_points, table, spec=spec)
        assert len(lazy) == len(eager)
        for lazy_record, eager_record in zip(lazy, eager):
            assert lazy_record.coords == eager_record.coords
            assert lazy_record.point_hash == eager_record.point_hash
            for name in METRIC_NAMES:
                assert lazy_record.metrics[name] == eager_record.metrics[name]

    def test_pivot_matches_eager_path(self, tmp_path):
        spec, store, eager = self.fill(tmp_path)
        sweep_points = spec.expand()
        table = store.load_table([sp.content_hash() for sp in sweep_points])
        lazy = ResultSet.from_store_table(sweep_points, table, spec=spec)
        assert lazy.pivot("workload", "topology") == eager.pivot(
            "workload", "topology"
        )

    def test_metrics_reject_unknown_names(self, tmp_path):
        spec, store, _ = self.fill(tmp_path)
        sweep_points = spec.expand()
        table = store.load_table([sp.content_hash() for sp in sweep_points])
        record = ResultSet.from_store_table(sweep_points, table)[0]
        with pytest.raises(KeyError):
            record.metrics["not_a_metric"]
        assert set(record.metrics) == set(METRIC_NAMES)

    def test_alignment_mismatch_is_an_error(self, tmp_path):
        spec, store, _ = self.fill(tmp_path)
        sweep_points = spec.expand()
        table = store.load_table([sp.content_hash() for sp in sweep_points])
        with pytest.raises(ValueError):
            ResultSet.from_store_table(sweep_points[:-1], table)
        reversed_table = store.load_table(
            [sp.content_hash() for sp in reversed(sweep_points)]
        )
        with pytest.raises(ValueError):
            ResultSet.from_store_table(sweep_points, reversed_table)

    def test_iter_values_streams_selected_metric(self, tmp_path):
        spec, store, eager = self.fill(tmp_path)
        sweep_points = spec.expand()
        table = store.load_table([sp.content_hash() for sp in sweep_points])
        lazy = ResultSet.from_store_table(sweep_points, table, spec=spec)
        streamed = list(lazy.iter_values("throughput_ipc", topology="mesh"))
        assert len(streamed) == 2
        for coords, value in streamed:
            assert coords["topology"] == "mesh"
            assert value == eager.value(
                "throughput_ipc",
                workload=coords["workload"],
                topology="mesh",
            )


class TestQueryCLI:
    SCALE = "0.02"

    def fill_fig1(self, tmp_path):
        """Farm-fill the fig1 sweep with synthetic results (no real sims)."""
        spec = specs.figure_spec("fig1", RunSettings().scaled(float(self.SCALE)))
        store = ColumnarStore(tmp_path / "store")
        run_worker(
            spec,
            store,
            worker_id="w0",
            execute=lambda point: fake_result(point.config.num_cores),
        )
        return store

    def test_stats_reports_rows_and_segments(self, tmp_path, capsys):
        store = self.fill_fig1(tmp_path)
        assert query.main(["--store", str(store.root), "stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == len(store)
        assert payload["segments"] == len(store.segment_paths())

    def test_figure_served_from_warm_store(self, tmp_path, capsys):
        store = self.fill_fig1(tmp_path)
        status = query.main(
            ["--store", str(store.root), "--scale", self.SCALE, "figure", "fig1"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "0 simulations" in out
        assert "Figure 1" in out

    def test_pivot_served_from_warm_store(self, tmp_path, capsys):
        store = self.fill_fig1(tmp_path)
        status = query.main(
            [
                "--store", str(store.root), "--scale", self.SCALE,
                "pivot", "fig1",
                "--index", "num_cores", "--columns", "topology",
                "--metric", "per_core_ipc",
                "--where", "workload=Data Serving",
            ]
        )
        assert status == 0
        table = json.loads(capsys.readouterr().out)
        assert "mesh" in next(iter(table.values()))

    def test_cold_store_is_exit_code_3_not_a_simulation(self, tmp_path, capsys):
        store = ColumnarStore(tmp_path / "empty")
        status = query.main(
            ["--store", str(store.root), "--scale", self.SCALE, "figure", "fig1"]
        )
        assert status == 3
        assert "cold store" in capsys.readouterr().err
        assert len(store) == 0  # nothing was simulated to paper over the miss

    def test_unknown_names_are_exit_code_2(self, tmp_path, capsys):
        store = ColumnarStore(tmp_path / "empty")
        assert query.main(["--store", str(store.root), "figure", "nope"]) == 2
        status = query.main(
            [
                "--store", str(store.root), "pivot", "nope",
                "--index", "a", "--columns", "b",
            ]
        )
        assert status == 2


class TestSpecRegistry:
    def test_every_reportable_figure_is_registered(self):
        from repro.reporting.figures import report_names

        missing = [
            name
            for name in report_names()
            if name != "fig8" and name not in specs.spec_names()
        ]
        assert missing == []

    def test_power_reuses_fig7_sweep(self):
        settings = TINY_SETTINGS
        power = {sp.content_hash() for sp in specs.figure_spec("power", settings).expand()}
        fig7 = {sp.content_hash() for sp in specs.figure_spec("fig7", settings).expand()}
        assert power == fig7

    def test_report_points_deduplicates(self):
        points = specs.report_points(TINY_SETTINGS)
        hashes = [sp.content_hash() for sp in points]
        assert len(hashes) == len(set(hashes))
        assert len(hashes) > 0

    def test_unknown_spec_name_lists_options(self):
        with pytest.raises(KeyError, match="fig1"):
            specs.figure_spec("nope")
