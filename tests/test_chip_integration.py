"""End-to-end chip tests: cores + caches + directory + NoC + DRAM together."""

import pytest

from repro.cache.coherence import DirectoryState
from repro.chip.builder import build_chip
from repro.chip.chip import Chip
from repro.chip.tile import Tile
from repro.config.noc import Topology
from repro.noc.message import Message, MessageClass

from tests._fixtures import small_system


def run_small_chip(config, measure=1200):
    chip = build_chip(config)
    results = chip.run_experiment(
        warmup_references=800, detailed_warmup_cycles=400, measure_cycles=measure
    )
    return chip, results


class TestTileDispatch:
    def test_tile_requires_a_component(self):
        with pytest.raises(ValueError):
            Tile(node_id=0)

    def test_unknown_payload_rejected(self):
        tile = Tile(node_id=0, memory_controller=object())
        message = Message(src=0, dst=0, msg_class=MessageClass.REQUEST, size_bits=128, payload="junk")
        with pytest.raises(TypeError):
            tile.receive_message(message)


class TestChipConstruction:
    def test_mesh_chip_builds_all_components(self, mesh_config):
        chip = Chip(mesh_config)
        assert len(chip.core_nodes) == 16
        assert len(chip.directories) == 16
        assert len(chip.memory_controllers) == 4

    def test_nocout_chip_builds_segregated_llc(self, nocout_config):
        chip = Chip(nocout_config)
        assert len(chip.core_nodes) == 16
        assert len(chip.directories) == 8
        assert all(len(d.banks) == 2 for d in chip.directories.values())

    def test_chip_requires_workload(self):
        with pytest.raises(ValueError):
            Chip(small_system(Topology.MESH))

    def test_scalability_limit_restricts_active_cores(self, small_workload):
        import dataclasses

        limited = dataclasses.replace(small_workload, max_cores=4)
        chip = Chip(small_system(Topology.MESH).with_workload(limited))
        assert len(chip.active_core_ids) == 4

    def test_warmup_fills_llc_with_instruction_footprint(self, mesh_config):
        chip = Chip(mesh_config)
        chip.warmup(references_per_core=200)
        resident = sum(
            bank.array.occupancy for d in chip.directories.values() for bank in d.banks
        )
        footprint_blocks = mesh_config.workload.instruction_footprint_bytes // 64
        assert resident >= footprint_blocks


class TestChipExecution:
    @pytest.mark.parametrize(
        "topology",
        [Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT, Topology.IDEAL],
    )
    def test_every_topology_makes_forward_progress(self, small_workload, topology):
        config = small_system(topology).with_workload(small_workload)
        _chip, results = run_small_chip(config)
        assert results.total_instructions > 1000
        assert results.llc_accesses > 0
        assert results.throughput_ipc > 0

    def test_results_are_reproducible_for_same_seed(self, mesh_config):
        _chip_a, results_a = run_small_chip(mesh_config)
        _chip_b, results_b = run_small_chip(mesh_config)
        assert results_a.total_instructions == results_b.total_instructions
        assert results_a.llc_accesses == results_b.llc_accesses

    def test_lower_latency_topologies_perform_at_least_as_well(self, small_workload):
        throughput = {}
        for topology in (Topology.MESH, Topology.NOC_OUT, Topology.IDEAL):
            config = small_system(topology).with_workload(small_workload)
            _chip, results = run_small_chip(config, measure=2000)
            throughput[topology] = results.throughput_ipc
        assert throughput[Topology.IDEAL] >= throughput[Topology.MESH]
        assert throughput[Topology.NOC_OUT] >= throughput[Topology.MESH] * 0.98

    def test_directory_invariants_hold_after_execution(self, mesh_config):
        chip, _results = run_small_chip(mesh_config)
        for directory in chip.directories.values():
            for entry in directory.entries.values():
                entry.check_invariants()

    def test_modified_lines_have_exactly_one_owner(self, mesh_config):
        chip, _results = run_small_chip(mesh_config)
        for directory in chip.directories.values():
            for addr, entry in directory.entries.items():
                if entry.state == DirectoryState.MODIFIED:
                    assert entry.owner is not None
                    assert entry.sharers <= {entry.owner}

    def test_network_statistics_populated(self, nocout_config):
        _chip, results = run_small_chip(nocout_config)
        assert results.network_mean_latency > 0
        assert results.network_mean_hops > 0
        assert results.messages_delivered > 0
        assert results.network_activity["flits_switched"] > 0

    def test_memory_traffic_reaches_all_controllers(self, mesh_config):
        chip, _results = run_small_chip(mesh_config)
        serviced = [mc.requests_serviced.value for mc in chip.memory_controllers.values()]
        assert sum(serviced) > 0

    def test_per_core_ipc_metric(self, mesh_config):
        _chip, results = run_small_chip(mesh_config)
        assert results.per_core_ipc == pytest.approx(
            results.throughput_ipc / results.active_cores
        )

    def test_snoop_rate_is_a_small_fraction(self, mesh_config):
        _chip, results = run_small_chip(mesh_config, measure=2000)
        assert 0.0 <= results.snoop_rate < 0.2

    def test_reset_statistics_zeroes_measurement(self, mesh_config):
        chip = Chip(mesh_config)
        chip.warmup(500)
        chip.start_cores()
        chip.run(500)
        chip.reset_statistics()
        assert all(
            node.core.instructions_committed.value == 0 for node in chip.core_nodes.values()
        )
        assert chip.network.messages_delivered.value == 0
