"""Tests for the experiment harnesses (run with tiny windows to stay fast)."""

import pytest

from repro.config import presets
from repro.config.noc import Topology
from repro.experiments import ablations, fig4_snoops, fig7_performance, fig8_area, fig9_area_normalized, table1
from repro.experiments.harness import RunSettings, system_for
from repro.scenarios import SweepSpec, run_sweep

TINY = RunSettings(warmup_references=500, detailed_warmup_cycles=200, measure_cycles=800)


class TestHarness:
    def test_system_for_applies_topology_and_workload(self):
        config = system_for(Topology.NOC_OUT, presets.workload("Web Search"), num_cores=64)
        assert config.noc.topology == Topology.NOC_OUT
        assert config.workload.name == "Web Search"

    def test_system_for_applies_noc_overrides(self):
        config = system_for(
            Topology.NOC_OUT,
            presets.workload("Web Search"),
            noc_overrides={"llc_banks_per_tile": 4},
        )
        assert config.noc.llc_banks_per_tile == 4

    def test_unknown_override_rejected(self):
        with pytest.raises(AttributeError):
            system_for(
                Topology.MESH, presets.workload("Web Search"), noc_overrides={"bogus": 1}
            )

    def test_run_settings_scaling(self):
        scaled = TINY.scaled(2.0)
        assert scaled.measure_cycles == 1600
        # All three windows scale together (warmup_references used to be
        # skipped — that was the bug fixed alongside the scenario API).
        assert scaled.warmup_references == TINY.warmup_references * 2

    def test_run_settings_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "0.5")
        settings = RunSettings.from_env(RunSettings(measure_cycles=6000))
        assert settings.measure_cycles == 3000
        assert settings.warmup_references == 1250

    def test_single_point_spec_produces_results(self):
        spec = SweepSpec(
            axes={"workload": ("Web Search",)},
            settings=TINY,
            fixed={"topology": "mesh", "num_cores": 16},
        )
        result = run_sweep(spec)[0].result
        assert result.total_instructions > 0
        assert result.topology == "mesh"

    def test_legacy_sweep_shims_are_gone(self):
        # Removed after their one-release deprecation window (PR 3 -> PR 4).
        import repro.experiments as experiments
        from repro.experiments import harness

        for name in ("run_single", "run_topology_sweep"):
            assert not hasattr(harness, name)
            assert not hasattr(experiments, name)


class TestFigureHarnesses:
    def test_table1_contains_all_rows(self):
        parameters = table1.run_table1()
        rendered = table1.render_table1(parameters).render()
        assert "NOC-Out" in rendered
        assert len(parameters) == 7

    def test_figure8_reports_three_topologies(self):
        breakdowns = fig8_area.run_figure8()
        assert set(breakdowns) == {"mesh", "flattened_butterfly", "noc_out"}
        rendered = fig8_area.render_figure8(breakdowns).render()
        assert "mesh" in rendered

    def test_figure9_link_width_selection(self):
        budget, widths = fig9_area_normalized.area_budget_link_widths()
        assert budget > 0
        assert widths[Topology.FLATTENED_BUTTERFLY] < widths[Topology.MESH] <= 128

    def test_figure7_single_workload_runs(self):
        normalised = fig7_performance.run_figure7(
            workload_names=["Web Search"], num_cores=16, settings=TINY
        )
        assert "Web Search" in normalised and "GMean" in normalised
        row = normalised["Web Search"]
        assert row["mesh"] == pytest.approx(1.0)
        assert row["noc_out"] > 0
        rendered = fig7_performance.render_figure7(normalised).render()
        assert "Web Search" in rendered

    def test_figure4_reports_percentages(self):
        rates = fig4_snoops.run_figure4(
            workload_names=["Web Search"], num_cores=16, settings=TINY
        )
        assert 0.0 <= rates["Web Search"] <= 100.0
        assert "Mean" in rates

    def test_ablation_render(self):
        table = ablations.render_ablation({"a": 1.0, "b": 1.1}, "t", "variant")
        assert "variant" in table.render()
