"""Unit tests for the analysis metrics and report tables."""

import pytest

from repro.analysis.metrics import geometric_mean, harmonic_mean, normalize, speedup
from repro.reporting.tables import ReportTable, format_float


class TestMetrics:
    def test_geometric_mean_of_constant(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_below_arithmetic_mean(self):
        values = [1.0, 2.0, 8.0]
        assert geometric_mean(values) <= sum(values) / len(values)

    def test_geometric_mean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_normalize(self):
        normalised = normalize({"mesh": 2.0, "nocout": 3.0}, "mesh")
        assert normalised == {"mesh": 1.0, "nocout": 1.5}

    def test_normalize_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "b")

    def test_normalize_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0, "b": 1.0}, "a")

    def test_speedup(self):
        assert speedup(3.0, 2.0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestReportTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ReportTable([])

    def test_row_length_checked(self):
        table = ReportTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_title_and_cells(self):
        table = ReportTable(["Workload", "Speedup"], title="Figure 7")
        table.add_row("Data Serving", 1.234)
        text = table.render()
        assert "Figure 7" in text
        assert "Data Serving" in text
        assert "1.234" in text

    def test_floats_formatted_consistently(self):
        assert format_float(1.23456) == "1.235"
        assert format_float(2.0, digits=1) == "2.0"

    def test_columns_are_aligned(self):
        table = ReportTable(["name", "value"])
        table.add_row("short", 1.0)
        table.add_row("a much longer name", 2.0)
        lines = table.render().splitlines()
        assert len({line.index("  ") for line in lines[2:]}) >= 1
