"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.cycle == 0
    assert sim.pending_events == 0
    assert sim.events_processed == 0


def test_schedule_and_run_executes_callback():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append(sim.cycle), delay=5)
    sim.run(10)
    assert fired == [5]
    assert sim.cycle == 10


def test_run_returns_number_of_events():
    sim = Simulator()
    for delay in range(3):
        sim.schedule(lambda: None, delay=delay)
    assert sim.run(5) == 3


def test_events_beyond_horizon_stay_queued():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append("late"), delay=100)
    sim.run(10)
    assert fired == []
    assert sim.pending_events == 1
    sim.run(100)
    assert fired == ["late"]


def test_same_cycle_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(lambda: order.append("a"), delay=2)
    sim.schedule(lambda: order.append("b"), delay=2)
    sim.schedule(lambda: order.append("c"), delay=2)
    sim.run(5)
    assert order == ["a", "b", "c"]


def test_event_can_schedule_followup_in_same_run():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.cycle))
        sim.schedule(lambda: seen.append(("second", sim.cycle)), delay=3)

    sim.schedule(first, delay=1)
    sim.run(10)
    assert seen == [("first", 1), ("second", 4)]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(lambda: None, delay=-1)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.run(10)
    with pytest.raises(SimulationError):
        sim.schedule_at(lambda: None, cycle=5)


def test_clock_advances_to_horizon_even_without_events():
    sim = Simulator()
    sim.run(42)
    assert sim.cycle == 42


def test_run_until_absolute_cycle():
    sim = Simulator()
    fired = []
    sim.schedule_at(lambda: fired.append(sim.cycle), 7)
    sim.run_until(7)
    assert fired == [7]
    assert sim.cycle == 7


def test_run_to_completion_drains_queue():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(lambda: chain(n + 1), delay=10)

    sim.schedule(lambda: chain(0), delay=0)
    sim.run_to_completion()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.pending_events == 0


def test_run_to_completion_respects_max_cycles():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append(1), delay=5)
    sim.schedule(lambda: fired.append(2), delay=500)
    sim.run_to_completion(max_cycles=100)
    assert fired == [1]
    assert sim.pending_events == 1


def test_run_to_completion_with_limit_advances_clock_to_limit():
    """Regression: bounded run_to_completion left the clock at the last event.

    ``run_until`` always advances the clock to the horizon; the bounded
    form must do the same so back-to-back calls observe a consistent clock
    (a second ``run_to_completion(max_cycles=N)`` call previously re-spanned
    part of the first call's window).
    """
    sim = Simulator()
    sim.schedule(lambda: None, delay=5)
    sim.schedule(lambda: None, delay=500)
    sim.run_to_completion(max_cycles=100)
    assert sim.cycle == 100
    sim.run_to_completion(max_cycles=100)
    assert sim.cycle == 200
    assert sim.pending_events == 1  # the cycle-500 event is still out there


def test_run_to_completion_with_limit_advances_clock_when_queue_drains():
    sim = Simulator()
    sim.schedule(lambda: None, delay=5)
    sim.run_to_completion(max_cycles=100)
    assert sim.cycle == 100


def test_run_to_completion_without_limit_rests_at_last_event():
    sim = Simulator()
    sim.schedule(lambda: None, delay=7)
    sim.run_to_completion()
    assert sim.cycle == 7


def test_schedule_call_passes_arguments():
    sim = Simulator()
    seen = []
    sim.schedule_call(lambda a, b: seen.append((a, b, sim.cycle)), ("x", 2), delay=4)
    sim.run(10)
    assert seen == [("x", 2, 4)]


def test_schedule_call_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_call(lambda: None, (), delay=-1)


def test_schedule_delivery_invokes_receive_packet():
    sim = Simulator()

    class Sink:
        def __init__(self):
            self.received = []

        def receive_packet(self, packet, in_port, vc_index):
            self.received.append((packet, in_port, vc_index, sim.cycle))

    sink = Sink()
    sim.schedule_delivery(sink, "pkt", 2, 1, delay=3)
    sim.run(5)
    assert sink.received == [("pkt", 2, 1, 3)]


def test_schedule_delivery_rejects_negative_delay():
    sim = Simulator()

    class Sink:
        def receive_packet(self, packet, in_port, vc_index):
            pass

    with pytest.raises(SimulationError):
        sim.schedule_delivery(Sink(), "pkt", 0, 0, delay=-2)


def test_mixed_event_kinds_preserve_schedule_order():
    sim = Simulator()
    order = []

    class Sink:
        def receive_packet(self, packet, in_port, vc_index):
            order.append("delivery")

    sim.schedule(lambda: order.append("plain"), delay=2)
    sim.schedule_delivery(Sink(), None, 0, 0, delay=2)
    sim.schedule_call(lambda tag: order.append(tag), ("call",), delay=2)
    sim.run(5)
    assert order == ["plain", "delivery", "call"]


def test_derived_rng_is_deterministic():
    sim_a = Simulator(seed=11)
    sim_b = Simulator(seed=11)
    assert sim_a.derived_rng(3).random() == sim_b.derived_rng(3).random()
    assert sim_a.derived_rng(3).random() != sim_a.derived_rng(4).random()


def test_events_processed_accumulates():
    sim = Simulator()
    for delay in (1, 2, 3):
        sim.schedule(lambda: None, delay=delay)
    sim.run(2)
    assert sim.events_processed == 2
    sim.run(2)
    assert sim.events_processed == 3
